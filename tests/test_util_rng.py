"""Tests for repro.util.rng."""

from repro.util.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_parents_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_nested_vs_flat_labels_differ(self):
        # ("ab",) must not collide with ("a", "b").
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_non_string_labels(self):
        assert derive_seed(1, 7, 9) == derive_seed(1, 7, 9)
        assert derive_seed(1, 7, 9) != derive_seed(1, 79)

    def test_result_is_64_bit_unsigned(self):
        for label in range(50):
            seed = derive_seed(123, label)
            assert 0 <= seed < 2 ** 64


class TestMakeRng:
    def test_same_labels_same_stream(self):
        first = make_rng(5, "x").random()
        second = make_rng(5, "x").random()
        assert first == second

    def test_different_labels_different_stream(self):
        assert make_rng(5, "x").random() != make_rng(5, "y").random()

    def test_no_labels_uses_seed_directly(self):
        import random
        assert make_rng(99).random() == random.Random(99).random()

    def test_streams_are_independent(self):
        # Consuming one stream must not affect the other.
        a = make_rng(5, "a")
        b = make_rng(5, "b")
        a_values = [a.random() for _ in range(10)]
        b_fresh = make_rng(5, "b")
        assert [b.random() for _ in range(3)] == \
            [b_fresh.random() for _ in range(3)]
        a_fresh = make_rng(5, "a")
        assert a_values == [a_fresh.random() for _ in range(10)]

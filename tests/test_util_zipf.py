"""Tests for repro.util.zipf."""

import random

import pytest

from repro.util.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        assert abs(sum(zipf_weights(100, 1.0)) - 1.0) < 1e-9

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(abs(w - 0.1) < 1e-12 for w in weights)

    def test_ratio_matches_power_law(self):
        weights = zipf_weights(10, 1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)
        assert weights[0] / weights[3] == pytest.approx(4.0)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(20, 1.0)
        rng = random.Random(0)
        for _ in range(500):
            assert 0 <= sampler.sample(rng) < 20

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(50, 1.0)
        rng = random.Random(1)
        counts = [0] * 50
        for _ in range(20000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[10]

    def test_empirical_matches_probability(self):
        sampler = ZipfSampler(10, 1.0)
        rng = random.Random(2)
        draws = 50000
        hits = sum(1 for _ in range(draws) if sampler.sample(rng) == 0)
        assert hits / draws == pytest.approx(sampler.probability(0),
                                             rel=0.05)

    def test_sample_many_length(self):
        sampler = ZipfSampler(5)
        assert len(sampler.sample_many(random.Random(0), 17)) == 17

    def test_sample_many_negative_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(5).sample_many(random.Random(0), -1)

    def test_sample_distinct_all_unique(self):
        sampler = ZipfSampler(30, 1.5)
        ranks = sampler.sample_distinct(random.Random(3), 20)
        assert len(ranks) == 20
        assert len(set(ranks)) == 20

    def test_sample_distinct_full_support(self):
        sampler = ZipfSampler(8, 2.0)
        ranks = sampler.sample_distinct(random.Random(4), 8)
        assert sorted(ranks) == list(range(8))

    def test_sample_distinct_too_many_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(3).sample_distinct(random.Random(0), 4)

    def test_stream_is_unbounded(self):
        sampler = ZipfSampler(5)
        stream = sampler.stream(random.Random(5))
        values = [next(stream) for _ in range(100)]
        assert len(values) == 100

    def test_expected_frequency(self):
        sampler = ZipfSampler(10, 1.0)
        assert sampler.expected_frequency(0, 1000) == pytest.approx(
            sampler.probability(0) * 1000)

    def test_fit_exponent_recovers_skew(self):
        sampler = ZipfSampler(200, 1.0)
        rng = random.Random(6)
        counts = [0] * 200
        for _ in range(100000):
            counts[sampler.sample(rng)] += 1
        fitted = ZipfSampler.fit_exponent(counts)
        assert 0.7 < fitted < 1.3

    def test_fit_exponent_needs_two_points(self):
        with pytest.raises(ValueError):
            ZipfSampler.fit_exponent([5])

"""Tests for finger construction, DHT nodes and ring lookups."""

import random

import pytest

from repro.dht.idspace import ID_SPACE, random_id
from repro.dht.node import DHTNode
from repro.dht.ring import DHTRing
from repro.dht.routing import (
    HopSpaceFingers,
    NaiveFingers,
    skewed_ids,
    uniform_ids,
)


def _build_ring(ids, strategy):
    ring = DHTRing(strategy)
    for node_id in ids:
        ring.add_node(node_id)
    ring.rebuild_tables()
    return ring


class TestIdGenerators:
    def test_uniform_count_and_distinct(self):
        ids = uniform_ids(random.Random(0), 100)
        assert len(ids) == 100
        assert len(set(ids)) == 100
        assert ids == sorted(ids)

    def test_uniform_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_ids(random.Random(0), 0)

    def test_skewed_cluster_present(self):
        ids = skewed_ids(random.Random(1), 200, cluster_fraction=0.9,
                         cluster_width=0.001)
        assert len(ids) == 200
        # Most ids must fall within a narrow arc: find the largest number
        # of ids inside any window of 0.2% of the ring.
        window = int(ID_SPACE * 0.002)
        best = 0
        for anchor in ids:
            inside = sum(1 for other in ids
                         if (other - anchor) % ID_SPACE < window)
            best = max(best, inside)
        assert best >= 150

    def test_skewed_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            skewed_ids(rng, 10, cluster_fraction=1.5)
        with pytest.raises(ValueError):
            skewed_ids(rng, 10, cluster_width=0.0)
        with pytest.raises(ValueError):
            skewed_ids(rng, 0)


class TestFingerConstruction:
    def test_naive_includes_successor(self):
        ids = uniform_ids(random.Random(2), 50)
        fingers = NaiveFingers().build(ids[0], ids)
        assert ids[1] in fingers

    def test_hopspace_table_size_is_log_n(self):
        ids = uniform_ids(random.Random(3), 128)
        fingers = HopSpaceFingers().build(ids[0], ids)
        assert len(fingers) == 7  # log2(128)

    def test_hopspace_exact_rank_offsets(self):
        rng = random.Random(4)
        ids = sorted({rng.getrandbits(64) for _ in range(16)})
        assert len(ids) == 16
        fingers = HopSpaceFingers().build(ids[3], ids)
        expected = [ids[(3 + offset) % 16] for offset in (1, 2, 4, 8)]
        assert fingers == expected

    def test_no_self_loops_or_duplicates(self):
        ids = uniform_ids(random.Random(5), 64)
        for strategy in (NaiveFingers(), HopSpaceFingers()):
            for node_id in ids[:10]:
                fingers = strategy.build(node_id, ids)
                assert node_id not in fingers
                assert len(fingers) == len(set(fingers))

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            NaiveFingers().build(1, [])
        with pytest.raises(ValueError):
            HopSpaceFingers().build(1, [])

    def test_hopspace_requires_membership(self):
        ids = uniform_ids(random.Random(6), 8)
        with pytest.raises(ValueError):
            HopSpaceFingers().build(12345, ids)  # not a member

    def test_singleton_ring(self):
        assert NaiveFingers().build(5, [5]) == []
        assert HopSpaceFingers().build(5, [5]) == []


class TestDHTNode:
    def test_owns_interval(self):
        node = DHTNode(100)
        assert node.owns(100, 50)
        assert node.owns(51, 50)
        assert not node.owns(50, 50)
        assert not node.owns(101, 50)

    def test_owns_singleton(self):
        node = DHTNode(100)
        assert node.owns(7, 100)  # own predecessor -> owns everything

    def test_next_hop_never_overshoots(self):
        rng = random.Random(7)
        ids = uniform_ids(rng, 64)
        strategy = NaiveFingers()
        node = DHTNode(ids[0])
        node.set_fingers(strategy.build(ids[0], ids))
        node.set_successors(ids[1:5])
        for _ in range(100):
            key = random_id(rng)
            hop = node.next_hop(key)
            if hop is None:
                continue
            from repro.dht.idspace import clockwise_distance
            assert clockwise_distance(ids[0], hop) <= \
                clockwise_distance(ids[0], key)

    def test_routing_table_size_dedupes(self):
        node = DHTNode(1)
        node.set_fingers([2, 3, 4])
        node.set_successors([2, 5])
        assert node.routing_table_size() == 4


class TestRingLookup:
    @pytest.mark.parametrize("strategy", [NaiveFingers(),
                                          HopSpaceFingers()])
    def test_lookup_finds_true_owner(self, strategy):
        ids = uniform_ids(random.Random(8), 100)
        ring = _build_ring(ids, strategy)
        rng = random.Random(9)
        for _ in range(200):
            key = random_id(rng)
            source = rng.choice(ids)
            result = ring.lookup(source, key)
            assert result.owner == ring.successor_of(key)

    def test_hopspace_hops_bounded_by_log_n(self):
        ids = uniform_ids(random.Random(10), 256)
        ring = _build_ring(ids, HopSpaceFingers())
        rng = random.Random(11)
        for _ in range(200):
            result = ring.lookup(rng.choice(ids), random_id(rng))
            assert result.hops <= 8  # ceil(log2 256)

    def test_hopspace_hops_bounded_under_skew(self):
        ids = skewed_ids(random.Random(12), 256, cluster_fraction=0.95,
                         cluster_width=1e-9)
        ring = _build_ring(ids, HopSpaceFingers())
        rng = random.Random(13)
        for _ in range(200):
            # Route to other peers' ids: the worst case under skew.
            result = ring.lookup(rng.choice(ids), rng.choice(ids))
            assert result.hops <= 8

    def test_lookup_from_owner_is_zero_hops(self):
        ids = uniform_ids(random.Random(14), 20)
        ring = _build_ring(ids, HopSpaceFingers())
        key = 12345
        owner = ring.successor_of(key)
        assert ring.lookup(owner, key).hops == 0

    def test_path_starts_at_source_ends_at_owner(self):
        ids = uniform_ids(random.Random(15), 50)
        ring = _build_ring(ids, HopSpaceFingers())
        result = ring.lookup(ids[0], 999)
        assert result.path[0] == ids[0]
        assert result.path[-1] == result.owner
        assert len(result.path) == result.hops + 1

    def test_singleton_ring_owns_everything(self):
        ring = _build_ring([42], HopSpaceFingers())
        result = ring.lookup(42, 7)
        assert result.owner == 42
        assert result.hops == 0

    def test_two_node_ring(self):
        ring = _build_ring([100, 2 ** 60], NaiveFingers())
        assert ring.lookup(100, 101).owner == 2 ** 60
        assert ring.lookup(2 ** 60, 50).owner == 100

    def test_unknown_source_rejected(self):
        ring = _build_ring([1, 2, 3], NaiveFingers())
        with pytest.raises(KeyError):
            ring.lookup(99, 5)


class TestRingMembership:
    def test_add_remove(self):
        ring = DHTRing()
        ring.add_node(10)
        ring.add_node(20)
        assert ring.size == 2
        ring.remove_node(10)
        assert ring.size == 1
        assert not ring.contains(10)

    def test_duplicate_add_rejected(self):
        ring = DHTRing()
        ring.add_node(1)
        with pytest.raises(ValueError):
            ring.add_node(1)

    def test_remove_missing_rejected(self):
        ring = DHTRing()
        with pytest.raises(KeyError):
            ring.remove_node(1)

    def test_successor_predecessor_oracle(self):
        ring = DHTRing()
        for node_id in (10, 20, 30):
            ring.add_node(node_id)
        assert ring.successor_of(15) == 20
        assert ring.successor_of(20) == 20
        assert ring.successor_of(31) == 10  # wraps
        assert ring.predecessor_of(10) == 30
        assert ring.predecessor_of(20) == 10

    def test_tables_auto_rebuild_on_lookup(self):
        ring = DHTRing(HopSpaceFingers())
        for node_id in uniform_ids(random.Random(16), 30):
            ring.add_node(node_id)
        # No explicit rebuild: ensure_tables must kick in.
        source = ring.member_ids[0]
        result = ring.lookup(source, 777)
        assert result.owner == ring.successor_of(777)

    def test_mean_routing_table_size_logarithmic(self):
        ids = uniform_ids(random.Random(17), 256)
        ring = _build_ring(ids, HopSpaceFingers())
        # log2(256) = 8 fingers plus up to 4 successors, minus overlap.
        assert 8 <= ring.mean_routing_table_size() <= 13


class TestHopByteModel:
    """The flat hop-delivery byte constants mirror real Message sizes.

    The fast hop path and the batched frontier walk skip Message
    construction and charge ``HOP_MESSAGE_BYTES`` /
    ``HOP_BATCH_BASE_BYTES + HOP_KEY_BYTES * len(batch)`` directly —
    these pins guarantee the shortcut charges exactly what the
    equivalent ``LookupHop`` Message would weigh, byte for byte.
    """

    def test_single_hop_message_bytes(self):
        from repro.dht.ring import HOP_MESSAGE_BYTES
        from repro.net.message import Message
        message = Message(src=1, dst=2, kind="LookupHop",
                          payload={"key_id": 2 ** 63})
        assert message.size_bytes() == HOP_MESSAGE_BYTES

    @pytest.mark.parametrize("batch_size", [0, 1, 3, 17, 256])
    def test_batch_hop_message_bytes(self, batch_size):
        from repro.dht.ring import HOP_BATCH_BASE_BYTES, HOP_KEY_BYTES
        from repro.net.message import Message
        key_ids = list(range(batch_size))
        message = Message(src=1, dst=2, kind="LookupHop",
                          payload={"key_ids": key_ids})
        assert message.size_bytes() == \
            HOP_BATCH_BASE_BYTES + HOP_KEY_BYTES * batch_size

    def test_key_bytes_is_one_id(self):
        from repro.dht.ring import HOP_KEY_BYTES
        from repro.net.message import encoded_size
        assert HOP_KEY_BYTES == encoded_size(2 ** 63)


class TestNextHopFastEquivalence:
    """next_hop_fast must choose exactly what the greedy scan chooses."""

    @pytest.mark.parametrize("strategy", [NaiveFingers(),
                                          HopSpaceFingers()])
    def test_equivalence_uniform(self, strategy):
        ids = uniform_ids(random.Random(18), 128)
        rng = random.Random(19)
        for node_id in rng.sample(ids, 16):
            node = DHTNode(node_id)
            node.set_fingers(strategy.build(node_id, ids))
            rank = ids.index(node_id)
            node.set_successors([ids[(rank + offset) % len(ids)]
                                 for offset in range(1, 5)])
            for _ in range(64):
                key = random_id(rng)
                assert node.next_hop_fast(key) == node.next_hop(key)

    def test_equivalence_under_skew(self):
        ids = skewed_ids(random.Random(20), 128, cluster_fraction=0.9,
                         cluster_width=1e-9)
        rng = random.Random(21)
        strategy = HopSpaceFingers()
        for node_id in rng.sample(ids, 12):
            node = DHTNode(node_id)
            node.set_fingers(strategy.build(node_id, ids))
            for _ in range(64):
                # Keys at other members are the skew worst case.
                key = rng.choice(ids)
                assert node.next_hop_fast(key) == node.next_hop(key)

    def test_equivalence_includes_boundary_keys(self):
        ids = uniform_ids(random.Random(22), 64)
        strategy = HopSpaceFingers()
        node = DHTNode(ids[0])
        node.set_fingers(strategy.build(ids[0], ids))
        node.set_successors(ids[1:5])
        # Exactly-at-neighbour keys exercise the bisect boundaries.
        for key in list(node.neighbours()) + [ids[0],
                                              (ids[0] + 1) % ID_SPACE]:
            assert node.next_hop_fast(key) == node.next_hop(key)


class TestBatchedLookupMatchesSingular:
    """lookup_many resolves every key to the owner lookup() finds."""

    @pytest.mark.parametrize("strategy", [NaiveFingers(),
                                          HopSpaceFingers()])
    def test_owners_and_hops_match(self, strategy):
        ids = uniform_ids(random.Random(23), 100)
        ring = _build_ring(ids, strategy)
        rng = random.Random(24)
        keys = [random_id(rng) for _ in range(50)]
        source = rng.choice(ids)
        batch = ring.lookup_many(source, keys)
        for key in keys:
            singular = ring.lookup(source, key)
            assert batch.owners[key] == singular.owner
            assert batch.per_key_hops[key] == singular.hops

    def test_batch_messages_never_exceed_singular(self):
        ids = uniform_ids(random.Random(25), 100)
        ring = _build_ring(ids, HopSpaceFingers())
        rng = random.Random(26)
        keys = [random_id(rng) for _ in range(50)]
        source = rng.choice(ids)
        batch = ring.lookup_many(source, keys)
        singular_messages = sum(ring.lookup(source, key).hops
                                for key in keys)
        assert batch.messages <= singular_messages

"""Golden wire-format tests for the UDP codec.

Every message kind on the query path round-trips through
``encode``/``decode``, and the encoded length is reconciled against the
repo's byte-size model (``Message.size_bytes``): the codec was designed
field-name-on-wire so the two agree *exactly*, and ``WIRE_SIZE_DELTA``
pins that contract at zero — any schema change that breaks size parity
fails here, not in a bandwidth experiment.
"""

import struct

import pytest

from repro.core import protocol
from repro.ir.postings import Posting, PostingList
from repro.net import wire
from repro.net.message import HEADER_BYTES, Message
from repro.net.wire import (
    MAX_DATAGRAM_BYTES,
    OversizedPayloadError,
    TruncatedDatagramError,
    UnknownKindError,
    UnsupportedKindError,
    WireError,
)

_POSTINGS = PostingList([Posting(11, 2.5), Posting(7, 1.25),
                         Posting(3, 0.5)], global_df=9)

#: One representative payload per wire-supported message kind (plus
#: payload variants where senders use different field subsets).
GOLDEN = [
    (protocol.LOOKUP_HOP, {"key_id": 2**63 + 17}),
    (protocol.LOOKUP_HOP, {"key_ids": [1, 2**64 - 1, 42]}),
    (protocol.DF_PUBLISH, {"dfs": {"alpha": 3, "beta": 1}}),
    (protocol.DF_GET, {"terms": ["alpha", "beta"]}),
    (protocol.DF_REPLY, {"dfs": {"alpha": 12}}),
    (protocol.COLLECTION_PUBLISH, {"peer": 2**60, "docs": 14,
                                   "terms": 220}),
    (protocol.COLLECTION_GET, {}),
    (protocol.COLLECTION_REPLY, {"docs": 240, "terms": 9000,
                                 "peers": 16}),
    (protocol.PROBE_KEY, {"key_terms": ["peer", "retrieval"]}),
    (protocol.PROBE_REPLY, {"found": True, "postings": _POSTINGS}),
    (protocol.PROBE_REPLY, {"found": False, "postings": None}),
    (protocol.PROBE_BATCH, {"keys": [["peer"], ["peer", "index"]]}),
    (protocol.PROBE_BATCH_REPLY,
     {"results": [{"found": True, "postings": _POSTINGS},
                  {"found": False, "postings": None}]}),
    (protocol.FEEDBACK, {"key_terms": ["peer"], "redundant": False}),
    (protocol.CONTRIBUTORS_GET, {"term": "peer"}),
    (protocol.CONTRIBUTORS_REPLY, {"contributors": {2**50: 4, 9: 1}}),
    (protocol.HARVEST_KEY, {"key_terms": ["peer", "index"], "k": 10}),
    (protocol.HARVEST_REPLY, {"postings": _POSTINGS, "local_df": 9}),
    (protocol.REFINE_QUERY, {"terms": ["peer", "index"],
                             "doc_ids": [3, 7, 11]}),
    (protocol.REFINE_REPLY, {"scores": {3: 1.5, 7: 0.25}}),
    (protocol.DOC_FETCH, {"doc_id": 7, "credentials": ["user", "pass"],
                          "terms": ["peer"]}),
    (protocol.DOC_FETCH, {"doc_id": 7, "credentials": None,
                          "terms": []}),
    (protocol.DOC_REPLY, {"ok": True, "title": "Two step retrieval",
                          "url": "builtin://sample/11",
                          "snippet": "…retrieval…"}),
    (protocol.DOC_REPLY, {"ok": False, "error": "unknown document"}),
    (protocol.RETRACT_DOC, {"key_terms": ["peer"], "doc_id": 3,
                            "contributor": 8, "new_local_df": 2}),
    (wire.ACK, {}),
    (wire.ERR, {"error": "unknown-peer"}),
    (wire.HELLO, {"host": 1, "port": 54321, "fingerprint": "ab" * 20}),
    (wire.WELCOME, {"ok": True, "error": ""}),
    (wire.BYE, {}),
]


def _normalize(value):
    """Comparable form of a payload value (PostingList has no __eq__)."""
    if isinstance(value, PostingList):
        return ("postings", value.global_df,
                tuple((posting.doc_id, posting.score)
                      for posting in value.entries))
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _normalize(item))
                            for key, item in value.items()))
    return value


def _messages_equal(original: Message, decoded: Message) -> None:
    assert decoded.src == original.src
    assert decoded.dst == original.dst
    assert decoded.kind == original.kind
    assert decoded.message_id == original.message_id
    assert decoded.reply_to == original.reply_to
    assert _normalize(dict(decoded.payload)) == \
        _normalize(dict(original.payload))


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("kind,payload", GOLDEN,
                             ids=[f"{kind}-{index}" for index, (kind, _)
                                  in enumerate(GOLDEN)])
    def test_round_trip(self, kind, payload):
        message = Message(src=2**64 - 3, dst=5, kind=kind,
                          payload=payload)
        decoded = wire.decode(wire.encode(message))
        _messages_equal(message, decoded)

    @pytest.mark.parametrize("kind,payload", GOLDEN,
                             ids=[f"{kind}-{index}" for index, (kind, _)
                                  in enumerate(GOLDEN)])
    def test_encoded_length_matches_size_model(self, kind, payload):
        message = Message(src=1, dst=2, kind=kind, payload=payload)
        assert len(wire.encode(message)) == \
            message.size_bytes() + wire.WIRE_SIZE_DELTA

    def test_delta_is_pinned_to_zero(self):
        # The codec writes field names on the wire precisely so the
        # encoded bytes equal the modelled bytes; a nonzero delta means
        # simulator bandwidth numbers no longer describe the real wire.
        assert wire.WIRE_SIZE_DELTA == 0

    def test_reply_correlation_round_trips(self):
        request = Message(src=1, dst=2, kind=protocol.PROBE_KEY,
                          payload={"key_terms": ["peer"]})
        reply = request.reply(protocol.PROBE_REPLY,
                              {"found": False, "postings": None})
        decoded = wire.decode(wire.encode(reply))
        assert decoded.reply_to == request.message_id

    def test_all_retrieval_kinds_covered(self):
        supported = set(wire.supported_kinds())
        for kind in protocol.RETRIEVAL_KINDS:
            assert kind in supported
        assert protocol.LOOKUP_HOP in supported


class TestCodecFailureModes:
    def _encoded(self):
        return wire.encode(Message(src=1, dst=2, kind=protocol.PROBE_KEY,
                                   payload={"key_terms": ["peer"]}))

    def test_truncated_header(self):
        with pytest.raises(TruncatedDatagramError):
            wire.decode(self._encoded()[:HEADER_BYTES - 1])

    def test_truncated_payload(self):
        with pytest.raises(TruncatedDatagramError):
            wire.decode(self._encoded()[:-3])

    def test_empty_datagram(self):
        with pytest.raises(TruncatedDatagramError):
            wire.decode(b"")

    def test_bad_magic(self):
        data = bytearray(self._encoded())
        data[0] ^= 0xFF
        with pytest.raises(WireError):
            wire.decode(bytes(data))

    def test_unknown_kind_tag(self):
        data = bytearray(self._encoded())
        struct.pack_into(">H", data, 3, 0xFFFF)  # kind tag field
        with pytest.raises(UnknownKindError):
            wire.decode(bytes(data))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireError):
            wire.decode(self._encoded() + b"\x00")

    def test_unsupported_kind_encode(self):
        with pytest.raises(UnsupportedKindError):
            wire.encode(Message(src=1, dst=2, kind="NoSuchKind",
                                payload={}))

    def test_unknown_field_rejected(self):
        with pytest.raises(WireError):
            wire.encode(Message(src=1, dst=2, kind=protocol.PROBE_KEY,
                                payload={"bogus": 1}))

    def test_oversized_payload_encode(self):
        doc_ids = list(range((MAX_DATAGRAM_BYTES // 8) + 64))
        with pytest.raises(OversizedPayloadError):
            wire.encode(Message(src=1, dst=2, kind=protocol.REFINE_QUERY,
                                payload={"terms": [],
                                         "doc_ids": doc_ids}))

    def test_failure_hierarchy(self):
        # One except-clause in the transport catches every codec error.
        for error in (TruncatedDatagramError, UnknownKindError,
                      OversizedPayloadError, UnsupportedKindError):
            assert issubclass(error, WireError)


class TestDecodeFuzz:
    """Seeded decoder fuzzing over every wire kind.

    The contract under test is the one :func:`wire.decode` documents:
    *any* malformed datagram raises a :class:`WireError` subclass — a
    corrupted packet must never leak a bare ``struct.error``,
    ``UnicodeDecodeError``, ``KeyError`` or similar past the codec,
    because the UDP backend's single except-clause would miss it and
    take the transport down.  Deterministic (fixed seeds), so failures
    reproduce.
    """

    @staticmethod
    def _corpus():
        return [wire.encode(Message(src=2**64 - 3, dst=5, kind=kind,
                                    payload=payload))
                for kind, payload in GOLDEN]

    @staticmethod
    def _decode_or_wire_error(data):
        """Decode must either succeed or raise a WireError subclass."""
        try:
            decoded = wire.decode(data)
        except WireError:
            return None
        assert isinstance(decoded, Message)
        return decoded

    def test_every_strict_prefix_raises_wire_error(self):
        # A datagram cut anywhere — mid-header, mid-field-name,
        # mid-value — must raise, never return a partial message.
        for encoded in self._corpus():
            for cut in range(len(encoded)):
                with pytest.raises(WireError):
                    wire.decode(encoded[:cut])

    def test_trailing_bytes_raise_wire_error(self):
        import random
        rng = random.Random(0xA1B5)
        for encoded in self._corpus():
            for extra in (1, 7, 64):
                tail = bytes(rng.randrange(256) for _ in range(extra))
                with pytest.raises(WireError):
                    wire.decode(encoded + tail)

    def test_single_bit_flips_never_leak_foreign_errors(self):
        # Flip one bit at seeded positions in every golden datagram.
        # The result is allowed to decode (many flips only change a
        # value) but a failure must be a WireError.
        import random
        rng = random.Random(1234)
        for encoded in self._corpus():
            positions = rng.sample(range(len(encoded)),
                                   min(48, len(encoded)))
            for position in positions:
                data = bytearray(encoded)
                data[position] ^= 1 << rng.randrange(8)
                self._decode_or_wire_error(bytes(data))

    def test_multi_byte_corruption_never_leaks_foreign_errors(self):
        # Overwrite a seeded random slice with random bytes (hits
        # length prefixes, counts and string bodies much harder than
        # single-bit flips).
        import random
        rng = random.Random(5678)
        for encoded in self._corpus():
            for _ in range(16):
                data = bytearray(encoded)
                start = rng.randrange(len(data))
                length = min(rng.randrange(1, 9), len(data) - start)
                for index in range(start, start + length):
                    data[index] = rng.randrange(256)
                self._decode_or_wire_error(bytes(data))

    def test_random_garbage_datagrams_raise_or_decode(self):
        import random
        rng = random.Random(0xFEED)
        for _ in range(200):
            size = rng.randrange(0, 160)
            data = bytes(rng.randrange(256) for _ in range(size))
            self._decode_or_wire_error(data)

    def test_oversized_datagram_raises_wire_error(self):
        encoded = self._corpus()[0]
        padded = encoded + b"\x00" * (MAX_DATAGRAM_BYTES + 1
                                      - len(encoded))
        with pytest.raises(WireError):
            wire.decode(padded)

    def test_decoded_corruptions_reencode(self):
        # Survivor property: whatever a corrupted datagram decodes to
        # is a well-formed message — it must encode again without error
        # (same kind, same schema), closing the loop on consistency.
        import random
        rng = random.Random(97)
        reencoded = 0
        for encoded in self._corpus():
            for _ in range(24):
                data = bytearray(encoded)
                position = rng.randrange(len(data))
                data[position] ^= 1 << rng.randrange(8)
                decoded = self._decode_or_wire_error(bytes(data))
                if decoded is None:
                    continue
                again = wire.encode(decoded)
                assert wire.decode(again).kind == decoded.kind
                reencoded += 1
        # The corpus is large enough that plenty of flips only touch
        # benign value bytes; guard against the test silently skipping.
        assert reencoded > 50

"""Tests for documents, the document store, and Alvis digests."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.digest import (
    DocumentDigest,
    digest_from_terms,
    parse_digest,
    render_digest,
)
from repro.ir.documents import Document, DocumentStore


class TestDocumentStore:
    def test_add_get(self):
        store = DocumentStore()
        doc = Document(doc_id=1, title="t", text="x")
        store.add(doc)
        assert store.get(1) is doc
        assert 1 in store
        assert len(store) == 1

    def test_duplicate_rejected(self):
        store = DocumentStore()
        store.add(Document(doc_id=1, title="t", text="x"))
        with pytest.raises(ValueError):
            store.add(Document(doc_id=1, title="t2", text="y"))

    def test_remove(self):
        store = DocumentStore()
        store.add(Document(doc_id=1, title="t", text="x"))
        removed = store.remove(1)
        assert removed.title == "t"
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.remove(1)

    def test_iteration_and_ids(self):
        store = DocumentStore()
        for doc_id in (3, 1, 2):
            store.add(Document(doc_id=doc_id, title="", text=""))
        assert sorted(store.ids()) == [1, 2, 3]
        assert len(list(store)) == 3

    def test_get_missing_is_none(self):
        assert DocumentStore().get(5) is None

    def test_length_terms(self):
        doc = Document(doc_id=1, title="t",
                       text="the quick foxes are running")
        assert doc.length_terms(Analyzer()) == 3


class TestDigestModel:
    def test_from_terms_roundtrip_sequence(self):
        digest = digest_from_terms("http://x", "T",
                                   ["alpha", "beta", "alpha"])
        assert digest.term_positions["alpha"] == (0, 2)
        assert digest.term_positions["beta"] == (1,)
        assert digest.term_sequence() == ["alpha", "beta", "alpha"]

    def test_sequence_with_gaps(self):
        digest = DocumentDigest("u", "t", {"a": (0,), "b": (5,)})
        assert digest.term_sequence() == ["a", "b"]

    def test_validate_rejects_negative_position(self):
        digest = DocumentDigest("u", "t", {"a": (-1,)})
        with pytest.raises(ValueError):
            digest.validate()

    def test_validate_rejects_position_clash(self):
        digest = DocumentDigest("u", "t", {"a": (0,), "b": (0,)})
        with pytest.raises(ValueError):
            digest.validate()

    def test_validate_rejects_empty_term(self):
        digest = DocumentDigest("u", "t", {"": (0,)})
        with pytest.raises(ValueError):
            digest.validate()


class TestDigestXml:
    def test_render_parse_roundtrip(self):
        digests = [
            digest_from_terms("http://a", "First", ["peer", "index",
                                                    "peer"]),
            digest_from_terms("http://b", "Second", ["overlay"]),
        ]
        xml_text = render_digest(digests)
        parsed = parse_digest(xml_text)
        assert len(parsed) == 2
        assert parsed[0].url == "http://a"
        assert parsed[0].title == "First"
        assert parsed[0].term_positions == digests[0].term_positions
        assert parsed[1].term_sequence() == ["overlay"]

    def test_render_is_xml(self):
        xml_text = render_digest([digest_from_terms("u", "t", ["x"])])
        assert xml_text.startswith("<digest>")
        assert "<term value=\"x\">" in xml_text

    def test_parse_rejects_malformed_xml(self):
        with pytest.raises(ValueError):
            parse_digest("<digest><document")

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            parse_digest("<other/>")

    def test_parse_rejects_missing_url(self):
        with pytest.raises(ValueError):
            parse_digest("<digest><document title='t'/></digest>")

    def test_parse_rejects_missing_term_value(self):
        xml_text = ("<digest><document url='u' title='t'>"
                    "<term><pos>0</pos></term></document></digest>")
        with pytest.raises(ValueError):
            parse_digest(xml_text)

    def test_parse_rejects_non_integer_position(self):
        xml_text = ("<digest><document url='u' title='t'>"
                    "<term value='a'><pos>x</pos></term>"
                    "</document></digest>")
        with pytest.raises(ValueError):
            parse_digest(xml_text)

    def test_empty_digest(self):
        assert parse_digest("<digest/>") == []

    def test_digest_supports_external_engine_flow(self):
        """Section 4: an external engine exports its index as a digest;
        the peer regenerates a local index from term positions alone."""
        from repro.ir.inverted_index import InvertedIndex
        digest = digest_from_terms("http://library/d1", "Catalogue",
                                   ["semant", "index", "semant", "rich"])
        index = InvertedIndex()
        index.add_document(42, digest.term_sequence())
        assert index.term_frequency("semant", 42) == 2
        assert index.documents_with_all(["semant", "rich"]) == {42}

"""E4-style quality integration: distributed retrieval vs. centralized BM25.

The paper claims retrieval quality "fully comparable to state-of-the-art
centralized search engines".  These tests assert the reproduction shows
the same shape: high overlap with the centralized conjunctive reference,
improving with the truncation bound and with refinement.
"""

import pytest

from repro.baselines.centralized import CentralizedEngine
from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.eval.quality import overlap_at_k


@pytest.fixture(scope="module")
def reference(hdk_network):
    documents = []
    for peer in hdk_network.peers():
        documents.extend(peer.engine.store)
    return CentralizedEngine(documents, analyzer=hdk_network.analyzer)


class TestQualityVsCentralized:
    def test_high_overlap_on_conjunctive_reference(
            self, hdk_network, reference, small_workload):
        overlaps = []
        origin = hdk_network.peer_ids()[0]
        for query in small_workload.pool[:20]:
            results, _trace = hdk_network.query(origin, list(query))
            candidate = [doc.doc_id for doc in results]
            truth = reference.conjunctive_doc_ids(list(query), k=10)
            if truth:
                overlaps.append(overlap_at_k(candidate, truth, 10))
        assert overlaps
        mean_overlap = sum(overlaps) / len(overlaps)
        assert mean_overlap > 0.85

    def test_conjunctive_matches_always_found(self, hdk_network,
                                              reference, small_workload):
        """Documents containing ALL query terms must surface: they are in
        some key's (possibly truncated) posting list."""
        origin = hdk_network.peer_ids()[0]
        found = total = 0
        for query in small_workload.pool[:20]:
            truth = set(reference.engine.index.documents_with_all(
                list(query)))
            if not truth or len(truth) > 10:
                continue
            results, _trace = hdk_network.query(origin, list(query))
            candidate = {doc.doc_id for doc in results}
            found += len(truth & candidate)
            total += len(truth)
        assert total > 0
        # A small loss is expected: a conjunctive match can fall out of
        # every covering key's truncated list — exactly the "marginal
        # loss in retrieval precision" the paper accepts.
        assert found / total > 0.85

    def test_refinement_does_not_hurt(self, hdk_network, reference,
                                      small_workload):
        origin = hdk_network.peer_ids()[0]
        plain_overlaps = []
        refined_overlaps = []
        for query in small_workload.pool[:10]:
            truth = reference.conjunctive_doc_ids(list(query), k=10)
            if not truth:
                continue
            plain, _ = hdk_network.query(origin, list(query),
                                         refine=False)
            refined, _ = hdk_network.query(origin, list(query),
                                           refine=True)
            plain_overlaps.append(overlap_at_k(
                [doc.doc_id for doc in plain], truth, 10))
            refined_overlaps.append(overlap_at_k(
                [doc.doc_id for doc in refined], truth, 10))
        assert sum(refined_overlaps) >= sum(plain_overlaps) - 1e-9


class TestTruncationQualityTradeoff:
    def test_larger_k_is_at_least_as_good(self, small_corpus,
                                          small_workload):
        """E4's sweep in miniature: overlap@10 should not degrade as the
        truncation bound grows."""
        documents = small_corpus.documents()
        reference = CentralizedEngine(documents)
        scores = {}
        for k in (5, 40):
            network = AlvisNetwork(
                num_peers=8,
                config=AlvisConfig(truncation_k=k), seed=31)
            network.distribute_documents(small_corpus.documents())
            network.build_index(mode="hdk")
            origin = network.peer_ids()[0]
            overlaps = []
            for query in small_workload.pool[:12]:
                truth = reference.conjunctive_doc_ids(list(query), k=10)
                if not truth:
                    continue
                # Map reference doc ids (raw corpus ids) to network ids:
                # both assign ids in distribution order starting at 1 vs 0.
                results, _ = network.query(origin, list(query))
                candidate = [doc.doc_id - 1 for doc in results]
                overlaps.append(overlap_at_k(candidate, truth, 10))
            scores[k] = sum(overlaps) / len(overlaps)
        assert scores[40] >= scores[5] - 0.05

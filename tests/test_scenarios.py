"""End-to-end scenario tests: multi-phase stories exercising the whole
stack together, the way the VLDB demo script would have run it."""

import pytest

from repro.core.access import AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.core.persistence import load_network_index, save_network_index
from repro.core.replication import ReplicationManager
from repro.corpus.loader import sample_documents
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.eval.monitor import NetworkMonitor
from repro.ir.digest import digest_from_terms, parse_digest, render_digest
from repro.ir.documents import Document
from repro.util.rng import make_rng


class TestDemoDayScenario:
    """The full demonstration storyline of Section 5, in one test."""

    def test_full_demo_script(self, tmp_path):
        # --- A running network with published content -----------------
        config = AlvisConfig(qdi_activation_threshold=2)
        network = AlvisNetwork(num_peers=10, config=config, seed=111)
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=100, vocabulary_size=700, seed=112))
        network.distribute_documents(corpus.documents())
        network.build_index(mode="qdi")  # demo shows QDI live
        monitor = NetworkMonitor(network)
        start = monitor.snapshot()
        assert start.index_mode == "qdi"

        # --- A visitor's laptop joins through the Internet --------------
        churn = network.churn()
        visitor = churn.join()
        assert network.ring.contains(visitor)

        # --- The visitor indexes additional local content ----------------
        note = Document(doc_id=0, title="Demo visitor notes",
                        text="auckland vldb demo visitor notes about "
                             "distributed retrieval auckland")
        note_id = network.publish_incremental(visitor, note)

        # --- Protected content with access rights ------------------------
        private = Document(doc_id=0, title="Private slides",
                           text="embargoed keynote slides xylophone")
        private_id = network.publish_incremental(visitor, private)
        network.peer(visitor).access.set_policy(
            private_id, AccessPolicy.password("speaker", "pw"))

        # --- Queries from several peers; QDI adapts ----------------------
        workload = QueryWorkload.from_corpus(
            corpus, QueryWorkloadConfig(pool_size=20, seed=113))
        rng = make_rng(114, "demo-stream")
        for index in range(60):
            origin = network.peer_ids()[index % network.num_peers]
            network.query(origin, list(workload.sample(rng)))
        activations = sum(peer.qdi.stats.activations
                          for peer in network.peers()
                          if peer.qdi is not None)
        assert activations > 0

        # --- The visitor's content is globally searchable ----------------
        searcher = network.peer_ids()[0]
        results, _ = network.query(searcher, "auckland vldb demo")
        assert any(doc.doc_id == note_id for doc in results)
        # Access rights enforced on fetch.
        found, _ = network.query(searcher, "embargoed keynote")
        assert found
        denied = network.fetch_document(searcher, private_id)
        assert denied["error"] == "access-denied"
        granted = network.fetch_document(searcher, private_id,
                                         credentials=("speaker", "pw"))
        assert granted["ok"]

        # --- Monitoring station reports the activity ----------------------
        after = monitor.snapshot()
        delta = monitor.delta()
        assert delta["bytes_total"] > 0
        assert after.qdi_activations >= activations

        # --- State survives a client restart -------------------------------
        path = str(tmp_path / "demo-index.json")
        save_network_index(network, path)
        restored = load_network_index(network, path)
        assert restored == network.num_peers
        results_after, _ = network.query(searcher, "auckland vldb demo")
        assert any(doc.doc_id == note_id for doc in results_after)


class TestLibraryFederationScenario:
    """Digital libraries federate via digests; one later withdraws."""

    def test_federation_lifecycle(self):
        network = AlvisNetwork(num_peers=6, seed=121)
        network.distribute_documents(sample_documents())
        # Two libraries export digests.
        analyzer = network.analyzer
        catalogues = {
            network.peer_ids()[0]: (
                "http://lib-a/ms1", "Herbarium catalogue",
                "rare herbarium specimens with botanical annotations"),
            network.peer_ids()[1]: (
                "http://lib-b/ms2", "Botanical drawings",
                "botanical drawings and herbarium plates archive"),
        }
        published = {}
        for peer_id, (url, title, text) in catalogues.items():
            digest = digest_from_terms(url, title,
                                       analyzer.analyze(text))
            parsed = parse_digest(render_digest([digest]))[0]
            document = Document(doc_id=0, title=parsed.title,
                                text=" ".join(parsed.term_sequence()),
                                url=parsed.url)
            published[peer_id] = network.publish_documents(
                peer_id, [document])[0]
        network.build_index(mode="hdk")

        searcher = network.peer_ids()[3]
        results, _ = network.query(searcher, "herbarium botanical")
        ids = {doc.doc_id for doc in results}
        assert set(published.values()) <= ids

        # Library A withdraws its item.
        first_peer = network.peer_ids()[0]
        network.unpublish(first_peer, published[first_peer])
        results, _ = network.query(searcher, "herbarium botanical")
        ids = {doc.doc_id for doc in results}
        assert published[first_peer] not in ids
        assert published[network.peer_ids()[1]] in ids


class TestDisasterRecoveryScenario:
    """Replication + crash + repair + churn, interleaved."""

    def test_survives_interleaved_faults(self):
        network = AlvisNetwork(num_peers=12, seed=131)
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=80, vocabulary_size=500, seed=132))
        network.distribute_documents(corpus.documents())
        network.build_index(mode="hdk")
        manager = ReplicationManager(network, replication_factor=2)
        manager.replicate_all()
        workload = QueryWorkload.from_corpus(
            corpus, QueryWorkloadConfig(pool_size=10, seed=133))
        baseline = {}
        origin = network.peer_ids()[0]
        for query in workload.pool[:5]:
            results, _ = network.query(origin, list(query))
            baseline[query] = {doc.doc_id for doc in results}

        churn = network.churn()
        # Interleave: crash, join, crash, leave, repair after each crash.
        victims = [pid for pid in network.peer_ids() if pid != origin]
        network.fail_peer(victims[3])
        manager.repair()
        churn.join()
        manager.replicate_all()
        victims = [pid for pid in network.peer_ids() if pid != origin]
        network.fail_peer(victims[5])
        manager.repair()
        churn.leave(
            [pid for pid in network.peer_ids() if pid != origin][1])

        # Index keys all live at their correct owners.
        for peer in network.peers():
            for entry in peer.fragment:
                assert network.ring.successor_of(
                    entry.key.key_id) == peer.peer_id
        # Queries still return every surviving baseline document.
        for query, expected in baseline.items():
            surviving = {doc_id for doc_id in expected
                         if network.doc_owner(doc_id) is not None}
            results, _ = network.query(origin, list(query))
            got = {doc.doc_id for doc in results}
            assert surviving <= got

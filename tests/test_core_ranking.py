"""Tests for result merging and the greedy disjoint-cover ranking."""

import pytest

from repro.core.keys import Key
from repro.core.ranking import merge_and_rank
from repro.ir.postings import Posting, PostingList


def _lists(mapping):
    return {key: PostingList(postings)
            for key, postings in mapping.items()}


class TestMergeAndRank:
    def test_paper_example_bc_plus_a(self):
        """Query abc answered from keys bc and a: a document in both gets
        score(bc) + score(a) — the exact decomposition of Figure 1."""
        retrieved = _lists({
            Key(["b", "c"]): [Posting(1, 2.0), Posting(2, 1.5)],
            Key(["a"]): [Posting(1, 0.7), Posting(3, 0.4)],
        })
        ranked = merge_and_rank(retrieved, Key(["a", "b", "c"]), k=10)
        scores = {doc.doc_id: doc.score for doc in ranked}
        assert scores[1] == pytest.approx(2.7)
        assert scores[2] == pytest.approx(1.5)
        assert scores[3] == pytest.approx(0.4)
        assert [doc.doc_id for doc in ranked] == [1, 2, 3]

    def test_overlapping_keys_not_double_counted(self):
        # Keys ab and b overlap on term b: only the better one counts.
        retrieved = _lists({
            Key(["a", "b"]): [Posting(1, 3.0)],
            Key(["b"]): [Posting(1, 1.0)],
        })
        ranked = merge_and_rank(retrieved, Key(["a", "b"]), k=10)
        assert ranked[0].score == pytest.approx(3.0)
        assert ranked[0].covering_keys == (Key(["a", "b"]),)

    def test_disjoint_singles_sum(self):
        retrieved = _lists({
            Key(["a"]): [Posting(1, 1.0)],
            Key(["b"]): [Posting(1, 2.0)],
            Key(["c"]): [Posting(1, 0.5)],
        })
        ranked = merge_and_rank(retrieved, Key(["a", "b", "c"]), k=10)
        assert ranked[0].score == pytest.approx(3.5)
        assert set(ranked[0].covering_keys) == {Key(["a"]), Key(["b"]),
                                                Key(["c"])}

    def test_greedy_prefers_high_score_key(self):
        # ab scores 5; a and b score 1 each: greedy takes ab (5 > 2).
        retrieved = _lists({
            Key(["a", "b"]): [Posting(1, 5.0)],
            Key(["a"]): [Posting(1, 1.0)],
            Key(["b"]): [Posting(1, 1.0)],
        })
        ranked = merge_and_rank(retrieved, Key(["a", "b"]), k=10)
        assert ranked[0].score == pytest.approx(5.0)

    def test_k_limits_results(self):
        retrieved = _lists({
            Key(["a"]): [Posting(index, float(10 - index))
                         for index in range(10)],
        })
        ranked = merge_and_rank(retrieved, Key(["a"]), k=3)
        assert len(ranked) == 3
        assert [doc.doc_id for doc in ranked] == [0, 1, 2]

    def test_tie_broken_by_doc_id(self):
        retrieved = _lists({
            Key(["a"]): [Posting(5, 1.0), Posting(2, 1.0)],
        })
        ranked = merge_and_rank(retrieved, Key(["a"]), k=10)
        assert [doc.doc_id for doc in ranked] == [2, 5]

    def test_empty_retrieval(self):
        assert merge_and_rank({}, Key(["a"]), k=5) == []

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            merge_and_rank({}, Key(["a"]), k=0)

    def test_terms_covered_property(self):
        retrieved = _lists({
            Key(["a", "b"]): [Posting(1, 2.0)],
            Key(["c"]): [Posting(1, 1.0)],
        })
        ranked = merge_and_rank(retrieved, Key(["a", "b", "c"]), k=1)
        assert ranked[0].terms_covered == frozenset({"a", "b", "c"})

    def test_deterministic_across_dict_orders(self):
        lists_a = _lists({
            Key(["a"]): [Posting(1, 1.0)],
            Key(["b"]): [Posting(1, 1.0)],
        })
        lists_b = dict(reversed(list(lists_a.items())))
        ranked_a = merge_and_rank(lists_a, Key(["a", "b"]), k=5)
        ranked_b = merge_and_rank(lists_b, Key(["a", "b"]), k=5)
        assert [(doc.doc_id, doc.score) for doc in ranked_a] == \
            [(doc.doc_id, doc.score) for doc in ranked_b]

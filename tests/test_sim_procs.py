"""Tests for the generator-driven process abstraction (sim procs)."""

import pytest

from repro.sim.events import Simulator
from repro.sim.procs import Future, Proc, all_of


class TestFuture:
    def test_resolve_delivers_value(self):
        future = Future()
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert not future.done
        future.resolve(42)
        assert future.done
        assert seen == [42]

    def test_callback_after_resolution_runs_immediately(self):
        future = Future()
        future.resolve("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]

    def test_double_resolve_rejected(self):
        future = Future()
        future.resolve(1)
        with pytest.raises(RuntimeError):
            future.resolve(2)

    def test_all_of_preserves_order(self):
        first, second = Future(), Future()
        combined = all_of([first, second])
        second.resolve("b")
        assert not combined.done
        first.resolve("a")
        assert combined.done
        assert combined.value == ["a", "b"]

    def test_all_of_empty_resolves_immediately(self):
        combined = all_of([])
        assert combined.done
        assert combined.value == []


class TestProc:
    def test_sleep_advances_clock(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 1.5
            times.append(sim.now)
            yield 0.5
            times.append(sim.now)
            return "done"

        handle = sim.spawn(proc())
        assert not handle.done           # first step is an event
        sim.run()
        assert handle.done
        assert handle.result == "done"
        assert times == [0.0, 1.5, 2.0]

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()
        times = []

        def proc():
            yield None
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0]

    def test_wait_on_future(self):
        sim = Simulator()
        future = Future()
        seen = []

        def proc():
            value = yield future
            seen.append((sim.now, value))

        sim.spawn(proc())
        sim.schedule(3.0, lambda: future.resolve("late"))
        sim.run()
        assert seen == [(3.0, "late")]

    def test_wait_on_other_proc(self):
        sim = Simulator()

        def child():
            yield 2.0
            return "child-result"

        def parent(child_proc):
            result = yield child_proc
            return ("parent saw", result)

        child_proc = sim.spawn(child())
        parent_proc = sim.spawn(parent(child_proc))
        sim.run()
        assert parent_proc.result == ("parent saw", "child-result")

    def test_yield_from_composes(self):
        sim = Simulator()

        def inner():
            yield 1.0
            return 10

        def outer():
            value = yield from inner()
            yield 1.0
            return value + 1

        proc = sim.spawn(outer())
        sim.run()
        assert proc.result == 11
        assert sim.now == 2.0

    def test_done_callback(self):
        sim = Simulator()
        seen = []

        def proc():
            yield 1.0
            return 7

        handle = sim.spawn(proc())
        handle.add_done_callback(lambda p: seen.append(p.result))
        sim.run()
        assert seen == [7]
        # Late registration fires immediately.
        handle.add_done_callback(lambda p: seen.append(p.result))
        assert seen == [7, 7]

    def test_procs_interleave_in_virtual_time(self):
        sim = Simulator()
        order = []

        def worker(label, delay):
            yield delay
            order.append((label, sim.now))
            yield delay
            order.append((label, sim.now))

        sim.spawn(worker("slow", 2.0))
        sim.spawn(worker("fast", 0.5))
        sim.run()
        assert order == [("fast", 0.5), ("fast", 1.0),
                         ("slow", 2.0), ("slow", 4.0)]

    def test_negative_sleep_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_unsupported_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_spawn_is_not_reentrant(self):
        sim = Simulator()
        ran = []

        def proc():
            ran.append(True)
            return
            yield  # pragma: no cover - makes this a generator

        sim.spawn(proc())
        assert ran == []                 # nothing until the kernel runs
        sim.run()
        assert ran == [True]

"""Tests for Key and the query-lattice structure."""

import pickle

import pytest

from repro.core.keys import KEY_TABLE, Key, KeyTable
from repro.dht.hashing import hash_terms


class TestKeyConstruction:
    def test_canonicalizes_order(self):
        assert Key(["b", "a"]).terms == ("a", "b")
        assert Key(["b", "a"]) == Key(["a", "b"])

    def test_deduplicates(self):
        assert Key(["a", "a", "b"]).terms == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Key([])

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError):
            Key(["a", ""])

    def test_immutable(self):
        key = Key(["a"])
        with pytest.raises(AttributeError):
            key.terms = ("b",)

    def test_hashable_and_equal(self):
        assert hash(Key(["a", "b"])) == hash(Key(["b", "a"]))
        assert len({Key(["a", "b"]), Key(["b", "a"])}) == 1

    def test_not_equal_to_other_types(self):
        assert Key(["a"]) != ("a",)

    def test_len_and_iter(self):
        key = Key(["c", "a", "b"])
        assert len(key) == 3
        assert list(key) == ["a", "b", "c"]

    def test_key_id_matches_hash_terms(self):
        key = Key(["x", "y"])
        assert key.key_id == hash_terms(["y", "x"])

    def test_wire_size_grows_with_terms(self):
        assert Key(["a", "b"]).wire_size() > Key(["a"]).wire_size()


class TestKeyInterning:
    def test_equal_keys_are_identical(self):
        assert Key(["b", "a"]) is Key(["a", "b"])
        assert Key(["a", "a", "b"]) is Key(["a", "b"])

    def test_equality_hash_ordering_invariants(self):
        # Interning must preserve value semantics exactly: equal keys
        # hash equal, compare equal, and canonicalize to the same
        # sorted term tuple regardless of input order.
        permutations = [["x", "y", "z"], ["z", "y", "x"], ["y", "x", "z"]]
        keys = [Key(terms) for terms in permutations]
        assert len({id(key) for key in keys}) == 1
        assert len({hash(key) for key in keys}) == 1
        assert len(set(keys)) == 1
        assert all(key.terms == ("x", "y", "z") for key in keys)
        assert all(key.key_id == keys[0].key_id for key in keys)

    def test_dense_kids_are_stable_and_distinct(self):
        key_a = Key(["kid-test-a"])
        key_b = Key(["kid-test-b"])
        assert isinstance(key_a.kid, int)
        assert key_a.kid != key_b.kid
        assert Key(["kid-test-a"]).kid == key_a.kid

    def test_key_id_cached_and_correct(self):
        key = Key(["interned", "ids"])
        first = key.key_id
        assert first == hash_terms(key.terms)
        assert key.key_id == first  # cached path

    def test_wire_size_cached_and_correct(self):
        key = Key(["wire", "size"])
        expected = 4 + sum(2 + len(term.encode("utf-8"))
                           for term in key.terms)
        assert key.wire_size() == expected
        assert key.wire_size() == expected

    def test_pickle_round_trip_reinterns(self):
        key = Key(["pickled", "key"])
        clone = pickle.loads(pickle.dumps(key))
        assert clone is key

    def test_table_clear_keeps_old_keys_usable(self):
        before = Key(["clear", "survivor"])
        old_kid = before.kid
        table = KeyTable()
        canonical = ("clear", "survivor")
        first = table.intern(canonical)
        table.clear()
        second = table.intern(canonical)
        # Fresh instance after clear, but value semantics intact and kid
        # numbering never recycles.
        assert second is not first
        assert second.terms == first.terms
        assert hash(second) == hash(first)
        assert second.kid != first.kid
        # The global table is untouched by the scratch table above.
        assert Key(["clear", "survivor"]) is before
        assert before.kid == old_kid

    def test_global_table_tracks_interned_count(self):
        size = len(KEY_TABLE)
        Key(["brand-new-term-for-count-test"])
        assert len(KEY_TABLE) == size + 1
        Key(["brand-new-term-for-count-test"])
        assert len(KEY_TABLE) == size + 1

    def test_validation_still_raised_through_table(self):
        with pytest.raises(ValueError):
            KeyTable().intern(())
        with pytest.raises(ValueError):
            KeyTable().intern(("a", ""))


class TestKeyIdWireRoundTrip:
    """Interned key-ids survive the UDP wire codec bit-exactly."""

    def test_lookup_hop_key_id_round_trip(self):
        from repro.core import protocol
        from repro.net import wire
        from repro.net.message import Message

        key = Key(["wire", "trip"])
        message = Message(src=1, dst=2, kind=protocol.LOOKUP_HOP,
                          payload={"key_id": key.key_id})
        decoded = wire.decode(wire.encode(message))
        assert decoded.payload["key_id"] == key.key_id

    def test_lookup_hop_batched_key_ids_round_trip(self):
        from repro.core import protocol
        from repro.net import wire
        from repro.net.message import Message

        keys = [Key(["alpha"]), Key(["alpha", "beta"]), Key(["gamma"])]
        ids = [key.key_id for key in keys]
        message = Message(src=3, dst=4, kind=protocol.LOOKUP_HOP,
                          payload={"key_ids": ids})
        decoded = wire.decode(wire.encode(message))
        assert list(decoded.payload["key_ids"]) == ids
        # Decoded ids map back onto the same interned keys.
        by_id = {key.key_id: key for key in keys}
        assert [by_id[key_id] for key_id in decoded.payload["key_ids"]] \
            == keys


class TestCacheKeyStability:
    """Interned keys stay valid cache keys across churn invalidation."""

    def test_hit_after_version_invalidation_with_fresh_key_object(self):
        from repro.core.cache import LRUByteCache

        cache = LRUByteCache(capacity_bytes=1024)
        cache.ensure_version(("epoch-1", 0))
        cache.put(Key(["cache", "stability"]), "payload", size=64)
        hit, value = cache.get(Key(["stability", "cache"]))
        assert hit and value == "payload"
        # Churn: the version tag changes and the cache drops wholesale.
        assert cache.ensure_version(("epoch-2", 0)) is True
        hit, _ = cache.get(Key(["cache", "stability"]))
        assert not hit
        # Re-populating under a newly-spelled (but interned-equal) key
        # serves later lookups spelled either way.
        cache.put(Key(["stability", "cache"]), "fresh", size=64)
        hit, value = cache.get(Key(["cache", "stability"]))
        assert hit and value == "fresh"


class TestKeyAlgebra:
    def test_contains(self):
        assert Key(["a", "b", "c"]).contains(Key(["a", "c"]))
        assert Key(["a", "b"]).contains(Key(["a", "b"]))
        assert not Key(["a", "b"]).contains(Key(["c"]))

    def test_dominates_strict(self):
        assert Key(["a", "b"]).dominates(Key(["a"]))
        assert not Key(["a", "b"]).dominates(Key(["a", "b"]))
        assert not Key(["a"]).dominates(Key(["a", "b"]))

    def test_disjoint(self):
        assert Key(["a", "b"]).is_disjoint(Key(["c"]))
        assert not Key(["a", "b"]).is_disjoint(Key(["b", "c"]))

    def test_extend(self):
        assert Key(["a"]).extend("b") == Key(["a", "b"])

    def test_extend_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Key(["a"]).extend("a")

    def test_subsets_of_size(self):
        key = Key(["a", "b", "c"])
        assert set(key.subsets(2)) == {Key(["a", "b"]), Key(["a", "c"]),
                                       Key(["b", "c"])}
        assert key.subsets(3) == [key]
        assert key.subsets(0) == []
        assert key.subsets(4) == []

    def test_proper_subsets_largest_first(self):
        subsets = Key(["a", "b", "c"]).proper_subsets()
        assert len(subsets) == 6
        assert all(len(k) == 2 for k in subsets[:3])
        assert all(len(k) == 1 for k in subsets[3:])

    def test_proper_subsets_of_singleton(self):
        assert Key(["a"]).proper_subsets() == []


class TestLatticeLevels:
    def test_figure_one_shape(self):
        # Figure 1 of the paper: {a,b,c} -> 1 + 3 + 3 nodes.
        levels = Key.lattice_levels(["a", "b", "c"])
        assert [len(level) for level in levels] == [1, 3, 3]
        assert levels[0] == [Key(["a", "b", "c"])]

    def test_single_term_query(self):
        levels = Key.lattice_levels(["a"])
        assert levels == [[Key(["a"])]]

    def test_total_nodes_is_power_of_two_minus_one(self):
        levels = Key.lattice_levels(["a", "b", "c", "d"])
        assert sum(len(level) for level in levels) == 15

"""Tests for Key and the query-lattice structure."""

import pytest

from repro.core.keys import Key
from repro.dht.hashing import hash_terms


class TestKeyConstruction:
    def test_canonicalizes_order(self):
        assert Key(["b", "a"]).terms == ("a", "b")
        assert Key(["b", "a"]) == Key(["a", "b"])

    def test_deduplicates(self):
        assert Key(["a", "a", "b"]).terms == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Key([])

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError):
            Key(["a", ""])

    def test_immutable(self):
        key = Key(["a"])
        with pytest.raises(AttributeError):
            key.terms = ("b",)

    def test_hashable_and_equal(self):
        assert hash(Key(["a", "b"])) == hash(Key(["b", "a"]))
        assert len({Key(["a", "b"]), Key(["b", "a"])}) == 1

    def test_not_equal_to_other_types(self):
        assert Key(["a"]) != ("a",)

    def test_len_and_iter(self):
        key = Key(["c", "a", "b"])
        assert len(key) == 3
        assert list(key) == ["a", "b", "c"]

    def test_key_id_matches_hash_terms(self):
        key = Key(["x", "y"])
        assert key.key_id == hash_terms(["y", "x"])

    def test_wire_size_grows_with_terms(self):
        assert Key(["a", "b"]).wire_size() > Key(["a"]).wire_size()


class TestKeyAlgebra:
    def test_contains(self):
        assert Key(["a", "b", "c"]).contains(Key(["a", "c"]))
        assert Key(["a", "b"]).contains(Key(["a", "b"]))
        assert not Key(["a", "b"]).contains(Key(["c"]))

    def test_dominates_strict(self):
        assert Key(["a", "b"]).dominates(Key(["a"]))
        assert not Key(["a", "b"]).dominates(Key(["a", "b"]))
        assert not Key(["a"]).dominates(Key(["a", "b"]))

    def test_disjoint(self):
        assert Key(["a", "b"]).is_disjoint(Key(["c"]))
        assert not Key(["a", "b"]).is_disjoint(Key(["b", "c"]))

    def test_extend(self):
        assert Key(["a"]).extend("b") == Key(["a", "b"])

    def test_extend_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Key(["a"]).extend("a")

    def test_subsets_of_size(self):
        key = Key(["a", "b", "c"])
        assert set(key.subsets(2)) == {Key(["a", "b"]), Key(["a", "c"]),
                                       Key(["b", "c"])}
        assert key.subsets(3) == [key]
        assert key.subsets(0) == []
        assert key.subsets(4) == []

    def test_proper_subsets_largest_first(self):
        subsets = Key(["a", "b", "c"]).proper_subsets()
        assert len(subsets) == 6
        assert all(len(k) == 2 for k in subsets[:3])
        assert all(len(k) == 1 for k in subsets[3:])

    def test_proper_subsets_of_singleton(self):
        assert Key(["a"]).proper_subsets() == []


class TestLatticeLevels:
    def test_figure_one_shape(self):
        # Figure 1 of the paper: {a,b,c} -> 1 + 3 + 3 nodes.
        levels = Key.lattice_levels(["a", "b", "c"])
        assert [len(level) for level in levels] == [1, 3, 3]
        assert levels[0] == [Key(["a", "b", "c"])]

    def test_single_term_query(self):
        levels = Key.lattice_levels(["a"])
        assert levels == [[Key(["a"])]]

    def test_total_nodes_is_power_of_two_minus_one(self):
        levels = Key.lattice_levels(["a", "b", "c", "d"])
        assert sum(len(level) for level in levels) == 15

"""RPL05x layering checker: the repro import DAG has no upward edges."""

from __future__ import annotations

from repro.lint.checkers import layering


def run(project):
    return list(layering.check(project))


def test_downward_imports_are_clean(lint_project):
    project = lint_project({"core/x.py": """\
        from repro.dht.node import DHTNode
        from repro.net import wire
        from repro.sim.events import Simulator
        import repro.util.rng
        """})
    assert run(project) == []


def test_upward_import_is_rpl050(lint_project):
    project = lint_project({"sim/x.py": """\
        from repro.core.network import AlvisNetwork
        """})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == ("RPL050", "sim->core")


def test_wire_importing_core_is_rpl050(lint_project):
    # The pre-fix shape of net/wire.py (protocol constants lived in
    # core/protocol.py; this change moved them to net/protocol.py).
    project = lint_project({"net/wire.py": """\
        from repro.core import protocol
        """})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == ("RPL050", "net->core")


def test_same_segment_imports_are_clean(lint_project):
    project = lint_project({"dht/routing.py": """\
        from repro.dht.idspace import distance
        import repro.dht.node
        """})
    assert run(project) == []


def test_unranked_segment_is_rpl051(lint_project):
    project = lint_project({"plugins/x.py": "VALUE = 1\n"})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == ("RPL051", "plugins")


def test_type_checking_imports_are_exempt(lint_project):
    project = lint_project({"sim/x.py": """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.core.network import AlvisNetwork

        def describe(network: "AlvisNetwork") -> str:
            return str(network)
        """})
    assert run(project) == []


def test_files_outside_repro_are_ignored(lint_project):
    project = lint_project({"./benchmarks/x.py": """\
        from repro.core.network import AlvisNetwork
        from repro.sim.events import Simulator
        """})
    assert run(project) == []


def test_rank_table_matches_package_layout():
    # Every real subpackage/module segment must hold a rank (otherwise
    # the repo scan itself would emit RPL051 — but pin it here too so
    # the failure names the table, not a finding).
    from pathlib import Path
    package = Path(__file__).resolve().parents[1] / "src" / "repro"
    segments = {p.stem if p.is_file() else p.name
                for p in package.iterdir()
                if (p.suffix == ".py" or p.is_dir())
                and p.name != "__pycache__"}
    assert segments <= set(layering.LAYER_RANKS), \
        segments - set(layering.LAYER_RANKS)

"""Property-based tests for the extension modules (digests, Bloom
filters, query language, persistence)."""

from hypothesis import given, settings, strategies as st

from repro.baselines.bloom import BloomFilter
from repro.core.global_index import KeyEntry
from repro.core.keys import Key
from repro.core.persistence import entry_from_dict, entry_to_dict
from repro.ir.analysis import Analyzer
from repro.ir.digest import digest_from_terms, parse_digest, render_digest
from repro.ir.inverted_index import InvertedIndex
from repro.ir.postings import Posting, PostingList
from repro.ir.query_language import And, Not, Or, evaluate
from repro.ir.stemmer import PorterStemmer

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

words = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
word_lists = st.lists(words, min_size=1, max_size=20)
doc_id_sets = st.sets(st.integers(min_value=0, max_value=10 ** 6),
                      max_size=100)


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

@given(word_lists)
def test_digest_roundtrip_preserves_sequence(terms):
    digest = digest_from_terms("http://x", "T", terms)
    xml_text = render_digest([digest])
    parsed = parse_digest(xml_text)
    assert len(parsed) == 1
    assert parsed[0].term_sequence() == list(terms)


@given(word_lists)
def test_digest_reindexing_equals_direct_indexing(terms):
    """Publishing through a digest must index identically to publishing
    the raw term sequence (the heterogeneity-support contract)."""
    direct = InvertedIndex()
    direct.add_document(1, terms)
    via_digest = InvertedIndex()
    digest = digest_from_terms("u", "t", terms)
    via_digest.add_document(1, digest.term_sequence())
    for term in set(terms):
        assert direct.term_frequency(term, 1) == \
            via_digest.term_frequency(term, 1)


# ---------------------------------------------------------------------------
# Bloom filters
# ---------------------------------------------------------------------------

@given(doc_id_sets)
@settings(max_examples=50)
def test_bloom_never_false_negative(items):
    bloom = BloomFilter.of(items)
    assert all(item in bloom for item in items)


@given(doc_id_sets, st.floats(min_value=0.001, max_value=0.5))
@settings(max_examples=30)
def test_bloom_wire_size_sublinear_in_posting_bytes(items, rate):
    bloom = BloomFilter.of(items, false_positive_rate=rate)
    if len(items) >= 20:
        assert bloom.wire_size() < 16 * len(items)


# ---------------------------------------------------------------------------
# Query language (algebraic laws against a random index)
# ---------------------------------------------------------------------------

index_documents = st.lists(
    st.lists(st.sampled_from(["apple", "banana", "cherry", "date"]),
             min_size=1, max_size=6),
    min_size=1, max_size=10)


def _build_index(documents):
    index = InvertedIndex()
    for doc_id, terms in enumerate(documents):
        index.add_document(doc_id, terms)
    return index


@given(index_documents)
def test_and_is_subset_of_children(documents):
    from repro.ir.query_language import Term
    index = _build_index(documents)
    node = And((Term("apple"), Term("banana")))
    result = evaluate(node, index)
    assert result <= evaluate(Term("apple"), index)
    assert result <= evaluate(Term("banana"), index)


@given(index_documents)
def test_or_is_superset_of_children(documents):
    from repro.ir.query_language import Term
    index = _build_index(documents)
    node = Or((Term("apple"), Term("banana")))
    result = evaluate(node, index)
    assert result >= evaluate(Term("apple"), index)
    assert result >= evaluate(Term("banana"), index)


@given(index_documents)
def test_de_morgan(documents):
    from repro.ir.query_language import Term
    index = _build_index(documents)
    a, b = Term("apple"), Term("banana")
    not_and = evaluate(Not(And((a, b))), index)
    or_nots = evaluate(Or((Not(a), Not(b))), index)
    assert not_and == or_nots


@given(index_documents)
def test_double_negation(documents):
    from repro.ir.query_language import Term
    index = _build_index(documents)
    term = Term("cherry")
    assert evaluate(Not(Not(term)), index) == evaluate(term, index)


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

entry_strategy = st.builds(
    lambda terms, pairs, extra_df, contributors, popularity, on_demand:
    KeyEntry(
        key=Key(terms),
        postings=PostingList(
            [Posting(doc_id, score) for doc_id, score in pairs],
            global_df=len({doc_id for doc_id, _ in pairs}) + extra_df),
        global_df=len({doc_id for doc_id, _ in pairs}) + extra_df,
        contributors=contributors,
        popularity=popularity,
        on_demand=on_demand),
    st.lists(words, min_size=1, max_size=3),
    st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                       st.floats(min_value=0, max_value=100,
                                 allow_nan=False)),
             max_size=10),
    st.integers(min_value=0, max_value=50),
    st.dictionaries(st.integers(min_value=0, max_value=99),
                    st.integers(min_value=0, max_value=50), max_size=5),
    st.floats(min_value=0, max_value=10, allow_nan=False),
    st.booleans(),
)


@given(entry_strategy)
@settings(max_examples=100)
def test_entry_roundtrip(entry):
    restored = entry_from_dict(entry_to_dict(entry))
    assert restored.key == entry.key
    assert restored.postings.doc_ids() == entry.postings.doc_ids()
    assert restored.postings.global_df == entry.postings.global_df
    assert restored.global_df == entry.global_df
    assert restored.contributors == entry.contributors
    assert restored.popularity == entry.popularity
    assert restored.on_demand == entry.on_demand


# ---------------------------------------------------------------------------
# Stemmer
# ---------------------------------------------------------------------------

@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
               max_size=15))
@settings(max_examples=300)
def test_stemmer_total_and_shortening(word):
    """The stemmer never crashes, never lengthens a word (beyond the
    +1 'e' restoration cases), and is deterministic."""
    stemmer = PorterStemmer()
    stem = stemmer.stem(word)
    assert isinstance(stem, str)
    assert len(stem) <= len(word) + 1
    assert stemmer.stem(word) == stem

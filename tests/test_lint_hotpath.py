"""RPL04x hot-path checker: __slots__ in hot modules, no method dicts."""

from __future__ import annotations

from repro.lint.checkers import hotpath


def run(project):
    return list(hotpath.check(project))


def test_slotless_class_in_hot_module(lint_project):
    project = lint_project({"dht/node.py": """\
        class RoutingEntry:
            def __init__(self, peer_id):
                self.peer_id = peer_id
        """})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == ("RPL040", "RoutingEntry")


def test_slotted_class_is_clean(lint_project):
    project = lint_project({"dht/node.py": """\
        class RoutingEntry:
            __slots__ = ("peer_id",)

            def __init__(self, peer_id):
                self.peer_id = peer_id
        """})
    assert run(project) == []


def test_exception_classes_are_exempt(lint_project):
    project = lint_project({"core/keys.py": """\
        class TruncationError(Exception):
            pass

        class BadKeyError(ValueError):
            pass
        """})
    assert run(project) == []


def test_cold_module_needs_no_slots(lint_project):
    project = lint_project({"eval/report.py": """\
        class Table:
            def __init__(self):
                self.rows = []
        """})
    assert run(project) == []


def test_every_hot_module_is_scoped():
    assert hotpath.HOT_MODULES == \
        ("sim/events.py", "dht/node.py", "core/keys.py")


def test_per_instance_handler_dict(lint_project):
    # The anti-pattern RPL041 exists for: a dict of bound methods built
    # per instance (this is checked in *every* module, not only hot ones).
    project = lint_project({"eval/x.py": """\
        class Dispatcher:
            def __init__(self):
                self.handlers = {
                    "a": self.on_a,
                    "b": self.on_b,
                }

            def on_a(self, m):
                pass

            def on_b(self, m):
                pass
        """})
    (finding,) = run(project)
    assert finding.code == "RPL041"
    assert finding.symbol == "__init__:handlers"


def test_class_level_name_table_is_clean(lint_project):
    # The approved shape: class-level kind -> method-name strings.
    project = lint_project({"eval/x.py": """\
        class Dispatcher:
            _HANDLERS = {
                "a": "on_a",
                "b": "on_b",
            }

            def dispatch(self, kind, m):
                return getattr(self, self._HANDLERS[kind])(m)

            def on_a(self, m):
                pass

            def on_b(self, m):
                pass
        """})
    assert run(project) == []


def test_small_value_dicts_are_not_flagged(lint_project):
    # A dict holding plain values (not bound methods) is config, not
    # dispatch; single-entry dicts are below the radar too.
    project = lint_project({"eval/x.py": """\
        class Config:
            def __init__(self):
                self.limits = {"a": 1, "b": 2}
                self.single = {"only": self.close}

            def close(self):
                pass
        """})
    assert run(project) == []

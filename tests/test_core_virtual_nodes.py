"""Tests for virtual-node load balancing."""

import pytest

from repro.core.network import AlvisNetwork
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.util.stats import gini_coefficient


def _network(virtual_nodes, num_peers=8, seed=141):
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=80, vocabulary_size=600, seed=142))
    network = AlvisNetwork(num_peers=num_peers, seed=seed,
                           virtual_nodes=virtual_nodes)
    network.distribute_documents(corpus.documents())
    network.build_index(mode="hdk")
    return network


class TestTopology:
    def test_ring_has_virtual_positions(self):
        network = _network(virtual_nodes=4)
        assert network.num_peers == 8
        assert network.ring.size == 32

    def test_default_is_one_position_per_peer(self):
        network = AlvisNetwork(num_peers=5, seed=143)
        assert network.ring.size == 5

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            AlvisNetwork(num_peers=2, virtual_nodes=0)

    def test_virtual_positions_map_to_peers(self):
        network = _network(virtual_nodes=4)
        for node_id in network.ring.member_ids:
            peer_id = network.peer_of_ring_node(node_id)
            assert peer_id in network.peer_ids()

    def test_churn_and_crash_guarded(self):
        network = _network(virtual_nodes=2)
        with pytest.raises(NotImplementedError):
            network.churn()
        with pytest.raises(NotImplementedError):
            network.fail_peer(network.peer_ids()[0])


class TestCorrectness:
    def test_keys_stored_at_owning_peer(self):
        network = _network(virtual_nodes=4)
        for peer in network.peers():
            for entry in peer.fragment:
                assert network.owner_peer_of_key(
                    entry.key.key_id) == peer.peer_id

    def test_query_results_unaffected(self):
        plain = _network(virtual_nodes=1)
        virtual = _network(virtual_nodes=4)
        queries = [["bax", "bex"], ["dax"], ["gox", "bax"]]
        for query in queries:
            try:
                plain_results, _ = plain.query(plain.peer_ids()[0],
                                               query)
            except ValueError:
                continue
            virtual_results, _ = virtual.query(virtual.peer_ids()[0],
                                               query)
            assert [doc.doc_id for doc in plain_results] == \
                [doc.doc_id for doc in virtual_results]

    def test_workload_results_identical(self):
        from repro.corpus.queries import QueryWorkload, \
            QueryWorkloadConfig
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=80, vocabulary_size=600, seed=142))
        workload = QueryWorkload.from_corpus(
            corpus, QueryWorkloadConfig(pool_size=10, seed=144))
        plain = _network(virtual_nodes=1)
        virtual = _network(virtual_nodes=4)
        for query in workload.pool:
            plain_results, _ = plain.query(plain.peer_ids()[0],
                                           list(query))
            virtual_results, _ = virtual.query(virtual.peer_ids()[0],
                                               list(query))
            assert [doc.doc_id for doc in plain_results] == \
                [doc.doc_id for doc in virtual_results]


class TestBalance:
    def test_virtual_nodes_improve_storage_balance(self):
        plain = _network(virtual_nodes=1)
        virtual = _network(virtual_nodes=8)
        plain_gini = gini_coefficient(
            list(plain.per_peer_index_storage().values()))
        virtual_gini = gini_coefficient(
            list(virtual.per_peer_index_storage().values()))
        assert virtual_gini < plain_gini

    def test_message_aggregation_covers_all_traffic(self):
        network = _network(virtual_nodes=4)
        network.transport.reset_load_counters()
        network.query(network.peer_ids()[0], ["bax", "bex"])
        per_peer = network.per_peer_messages_in()
        assert sum(per_peer.values()) == \
            sum(network.transport.msgs_in.values())

"""RPL01x determinism checker: calls are flagged, mentions are not."""

from __future__ import annotations

from repro.lint.checkers import determinism


def codes(findings):
    return [f.code for f in findings]


def run(project):
    return list(determinism.check(project))


def test_wall_clock_call_in_scope(lint_project):
    project = lint_project({"sim/x.py": """\
        import time

        def stamp():
            return time.time()
        """})
    (finding,) = run(project)
    assert finding.code == "RPL010"
    assert finding.symbol == "time.time"
    assert finding.path.endswith("sim/x.py")


def test_aliased_import_resolves(lint_project):
    project = lint_project({"core/x.py": """\
        import time as _t

        def stamp():
            return _t.perf_counter()
        """})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == \
        ("RPL010", "time.perf_counter")


def test_from_import_resolves(lint_project):
    project = lint_project({"dht/x.py": """\
        from time import monotonic

        def stamp():
            return monotonic()
        """})
    (finding,) = run(project)
    assert (finding.code, finding.symbol) == ("RPL010", "time.monotonic")


def test_datetime_now(lint_project):
    project = lint_project({"ir/x.py": """\
        import datetime

        def stamp():
            return datetime.datetime.now()
        """})
    assert codes(run(project)) == ["RPL010"]


def test_global_rng_calls(lint_project):
    project = lint_project({"net/x.py": """\
        import os
        import random
        import uuid

        def draw():
            return random.random(), os.urandom(8), uuid.uuid4()
        """})
    found = run(project)
    assert codes(found) == ["RPL011", "RPL011", "RPL011"]
    assert {f.symbol for f in found} == \
        {"random.random", "os.urandom", "uuid.uuid4"}


def test_unseeded_random_instance(lint_project):
    project = lint_project({"sim/x.py": """\
        import random

        def make():
            return random.Random()
        """})
    assert codes(run(project)) == ["RPL011"]


def test_seeded_random_and_annotations_are_clean(lint_project):
    # The exact pattern of dht/routing.py, dht/churn.py, net/latency.py:
    # `rng: random.Random` annotations and seeded constructions must NOT
    # be flagged — the rule targets nondeterministic *calls*.
    project = lint_project({"dht/x.py": """\
        import random

        def route(rng: random.Random) -> int:
            return rng.randrange(16)

        def make_stream(seed: int) -> random.Random:
            return random.Random(seed)

        FIXED = None

        def fixed():
            global FIXED
            FIXED = random.Random(0)
        """})
    assert run(project) == []


def test_environment_reads(lint_project):
    project = lint_project({"core/x.py": """\
        import os

        def flags():
            a = os.getenv("DEBUG")
            b = os.environ["HOME"]
            c = "X" in os.environ
            return a, b, c
        """})
    found = run(project)
    assert all(f.code == "RPL012" for f in found)
    assert len(found) >= 3


def test_out_of_scope_module_is_ignored(lint_project):
    project = lint_project({"eval/x.py": """\
        import time

        def stamp():
            return time.time()
        """})
    assert run(project) == []


def test_allowlisted_udp_module_is_ignored(lint_project):
    project = lint_project({"net/udp.py": """\
        import time

        def deadline():
            return time.monotonic() + 1.0
        """})
    assert run(project) == []


def test_file_outside_repro_package_is_ignored(lint_project):
    project = lint_project({"./benchmarks/x.py": """\
        import time

        def stamp():
            return time.time()
        """})
    assert run(project) == []


def test_in_scope_helper():
    # The scope predicate itself, pinned: allowlist beats scope.
    class Fake:
        def __init__(self, rel):
            self.repro_rel = rel

    assert determinism.in_scope(Fake("sim/events.py"))
    assert determinism.in_scope(Fake("net/transport.py"))
    assert not determinism.in_scope(Fake("net/udp.py"))
    assert not determinism.in_scope(Fake("cluster/host.py"))
    assert not determinism.in_scope(Fake("util/process.py"))
    assert not determinism.in_scope(Fake(None))

"""Tests for churn (join/leave with handover callbacks)."""

import random

import pytest

from repro.dht.churn import ChurnProcess
from repro.dht.ring import DHTRing
from repro.dht.routing import HopSpaceFingers, uniform_ids


def _ring(count, seed=0):
    ring = DHTRing(HopSpaceFingers())
    for node_id in uniform_ids(random.Random(seed), count):
        ring.add_node(node_id)
    ring.rebuild_tables()
    return ring


class TestJoin:
    def test_join_grows_ring(self):
        ring = _ring(10)
        churn = ChurnProcess(ring, random.Random(1))
        new_id = churn.join()
        assert ring.size == 11
        assert ring.contains(new_id)

    def test_join_specific_id(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        assert churn.join(777) == 777
        assert ring.contains(777)

    def test_join_duplicate_rejected(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        existing = ring.member_ids[0]
        with pytest.raises(ValueError):
            churn.join(existing)

    def test_join_handover_range_is_new_nodes_range(self):
        ring = _ring(10, seed=2)
        handovers = []
        churn = ChurnProcess(ring, random.Random(3),
                             on_handover=lambda *args: handovers.append(args))
        new_id = churn.join()
        assert len(handovers) == 1
        old_owner, new_owner, lo, hi = handovers[0]
        assert new_owner == new_id
        assert hi == new_id
        assert lo == ring.predecessor_of(new_id)
        assert old_owner == ring.successor_of((new_id + 1) % 2 ** 64) \
            or old_owner != new_id

    def test_lookups_correct_after_join(self):
        ring = _ring(20, seed=4)
        churn = ChurnProcess(ring, random.Random(5))
        for _ in range(5):
            churn.join()
        rng = random.Random(6)
        for _ in range(50):
            key = rng.getrandbits(64)
            source = rng.choice(list(ring.member_ids))
            assert ring.lookup(source, key).owner == ring.successor_of(key)


class TestLeave:
    def test_leave_shrinks_ring(self):
        ring = _ring(10)
        churn = ChurnProcess(ring, random.Random(1))
        departed = churn.leave()
        assert ring.size == 9
        assert not ring.contains(departed)

    def test_leave_handover_to_successor(self):
        ring = _ring(10, seed=7)
        handovers = []
        churn = ChurnProcess(ring, random.Random(8),
                             on_handover=lambda *args: handovers.append(args))
        departed = churn.leave()
        assert len(handovers) == 1
        old_owner, new_owner, _lo, hi = handovers[0]
        assert old_owner == departed
        assert hi == departed
        assert new_owner == ring.successor_of(departed)

    def test_cannot_empty_ring(self):
        ring = _ring(2)
        churn = ChurnProcess(ring, random.Random(1))
        churn.leave()
        with pytest.raises(ValueError):
            churn.leave()

    def test_leave_missing_rejected(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        with pytest.raises(KeyError):
            churn.leave(123456789)


class TestSession:
    def test_run_session_net_size(self):
        ring = _ring(20, seed=9)
        churn = ChurnProcess(ring, random.Random(10))
        churn.run_session(joins=7, leaves=3)
        assert ring.size == 24
        assert len(churn.history) == 10

    def test_history_records_kinds(self):
        ring = _ring(5, seed=11)
        churn = ChurnProcess(ring, random.Random(12))
        churn.join()
        churn.leave()
        kinds = [event.kind for event in churn.history]
        assert kinds == ["join", "leave"]
        assert churn.history[0].ring_size_after == 6
        assert churn.history[1].ring_size_after == 5

    def test_lookup_correct_after_heavy_churn(self):
        ring = _ring(30, seed=13)
        churn = ChurnProcess(ring, random.Random(14))
        churn.run_session(joins=15, leaves=15)
        rng = random.Random(15)
        for _ in range(50):
            key = rng.getrandbits(64)
            source = rng.choice(list(ring.member_ids))
            assert ring.lookup(source, key).owner == ring.successor_of(key)


class TestLazyMaintenanceEquivalence:
    """Churn-local lazy table maintenance must be indistinguishable from
    the eager full rebuild: identical fingers, successors and routes."""

    @staticmethod
    def _assert_tables_equal(lazy, eager):
        assert lazy.member_ids == eager.member_ids
        for node_id in eager.member_ids:
            lazy_node = lazy.node(node_id)     # forces the lazy refresh
            eager_node = eager.node(node_id)
            assert lazy_node.fingers == eager_node.fingers, node_id
            assert lazy_node.successors == eager_node.successors, node_id

    def test_tables_and_routes_match_eager_rebuild_under_churn(self):
        lazy = DHTRing(HopSpaceFingers(), lazy_tables=True)
        eager = DHTRing(HopSpaceFingers(), lazy_tables=False)
        for node_id in uniform_ids(random.Random(7), 24):
            lazy.add_node(node_id)
            eager.add_node(node_id)
        eager.rebuild_tables()
        self._assert_tables_equal(lazy, eager)

        # Interleave joins and leaves; both rings see the same sequence.
        churn_lazy = ChurnProcess(lazy, random.Random(99))
        churn_eager = ChurnProcess(eager, random.Random(99))
        ops = random.Random(5)
        for _ in range(30):
            if ops.random() < 0.5 or lazy.size <= 2:
                node_id = churn_lazy.join()
                churn_eager.join(node_id)
            else:
                node_id = churn_lazy.leave()
                churn_eager.leave(node_id)
            self._assert_tables_equal(lazy, eager)
            # Same greedy routes, hop for hop.
            probe = random.Random(lazy.size)
            sources = [probe.choice(lazy.member_ids) for _ in range(3)]
            for source in sources:
                key_id = probe.getrandbits(64)
                lazy_result = lazy.lookup(source, key_id)
                eager_result = eager.lookup(source, key_id)
                assert lazy_result.owner == eager_result.owner
                assert lazy_result.path == eager_result.path

    def test_lazy_refresh_is_churn_local(self):
        # After one join, only touched nodes pay the refresh cost.
        ring = DHTRing(HopSpaceFingers(), lazy_tables=True)
        for node_id in uniform_ids(random.Random(3), 32):
            ring.add_node(node_id)
        ring.rebuild_tables()
        epoch = ring.membership_epoch
        churn = ChurnProcess(ring, random.Random(11))
        churn.join()
        assert ring.membership_epoch == epoch + 1
        # A node never materialized by the compact ring counts as stale:
        # it has no tables at all yet.
        stale = [node_id for node_id in ring.member_ids
                 if node_id not in ring._nodes
                 or ring._nodes[node_id].table_epoch
                 != ring.membership_epoch]
        # maintain() did no global rebuild: (almost) everyone is stale.
        assert len(stale) >= ring.size - 1
        source = ring.member_ids[0]
        ring.lookup(source, 12345)
        refreshed = [node_id for node_id in ring.member_ids
                     if node_id in ring._nodes
                     and ring._nodes[node_id].table_epoch
                     == ring.membership_epoch]
        # The lookup only refreshed the nodes it actually touched.
        assert 0 < len(refreshed) < ring.size

"""Tests for churn (join/leave with handover callbacks)."""

import random

import pytest

from repro.dht.churn import ChurnProcess
from repro.dht.ring import DHTRing
from repro.dht.routing import HopSpaceFingers, uniform_ids


def _ring(count, seed=0):
    ring = DHTRing(HopSpaceFingers())
    for node_id in uniform_ids(random.Random(seed), count):
        ring.add_node(node_id)
    ring.rebuild_tables()
    return ring


class TestJoin:
    def test_join_grows_ring(self):
        ring = _ring(10)
        churn = ChurnProcess(ring, random.Random(1))
        new_id = churn.join()
        assert ring.size == 11
        assert ring.contains(new_id)

    def test_join_specific_id(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        assert churn.join(777) == 777
        assert ring.contains(777)

    def test_join_duplicate_rejected(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        existing = ring.member_ids[0]
        with pytest.raises(ValueError):
            churn.join(existing)

    def test_join_handover_range_is_new_nodes_range(self):
        ring = _ring(10, seed=2)
        handovers = []
        churn = ChurnProcess(ring, random.Random(3),
                             on_handover=lambda *args: handovers.append(args))
        new_id = churn.join()
        assert len(handovers) == 1
        old_owner, new_owner, lo, hi = handovers[0]
        assert new_owner == new_id
        assert hi == new_id
        assert lo == ring.predecessor_of(new_id)
        assert old_owner == ring.successor_of((new_id + 1) % 2 ** 64) \
            or old_owner != new_id

    def test_lookups_correct_after_join(self):
        ring = _ring(20, seed=4)
        churn = ChurnProcess(ring, random.Random(5))
        for _ in range(5):
            churn.join()
        rng = random.Random(6)
        for _ in range(50):
            key = rng.getrandbits(64)
            source = rng.choice(list(ring.member_ids))
            assert ring.lookup(source, key).owner == ring.successor_of(key)


class TestLeave:
    def test_leave_shrinks_ring(self):
        ring = _ring(10)
        churn = ChurnProcess(ring, random.Random(1))
        departed = churn.leave()
        assert ring.size == 9
        assert not ring.contains(departed)

    def test_leave_handover_to_successor(self):
        ring = _ring(10, seed=7)
        handovers = []
        churn = ChurnProcess(ring, random.Random(8),
                             on_handover=lambda *args: handovers.append(args))
        departed = churn.leave()
        assert len(handovers) == 1
        old_owner, new_owner, _lo, hi = handovers[0]
        assert old_owner == departed
        assert hi == departed
        assert new_owner == ring.successor_of(departed)

    def test_cannot_empty_ring(self):
        ring = _ring(2)
        churn = ChurnProcess(ring, random.Random(1))
        churn.leave()
        with pytest.raises(ValueError):
            churn.leave()

    def test_leave_missing_rejected(self):
        ring = _ring(5)
        churn = ChurnProcess(ring, random.Random(1))
        with pytest.raises(KeyError):
            churn.leave(123456789)


class TestSession:
    def test_run_session_net_size(self):
        ring = _ring(20, seed=9)
        churn = ChurnProcess(ring, random.Random(10))
        churn.run_session(joins=7, leaves=3)
        assert ring.size == 24
        assert len(churn.history) == 10

    def test_history_records_kinds(self):
        ring = _ring(5, seed=11)
        churn = ChurnProcess(ring, random.Random(12))
        churn.join()
        churn.leave()
        kinds = [event.kind for event in churn.history]
        assert kinds == ["join", "leave"]
        assert churn.history[0].ring_size_after == 6
        assert churn.history[1].ring_size_after == 5

    def test_lookup_correct_after_heavy_churn(self):
        ring = _ring(30, seed=13)
        churn = ChurnProcess(ring, random.Random(14))
        churn.run_session(joins=15, leaves=15)
        rng = random.Random(15)
        for _ in range(50):
            key = rng.getrandbits(64)
            source = rng.choice(list(ring.member_ids))
            assert ring.lookup(source, key).owner == ring.successor_of(key)

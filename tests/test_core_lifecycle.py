"""Tests for document lifecycle (unpublish/retract) and lookup caching."""

import pytest

from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.ir.documents import Document


def _network_with_zebra(seed=101, config=None):
    network = AlvisNetwork(num_peers=6, seed=seed, config=config)
    network.distribute_documents(sample_documents())
    zebra = Document(doc_id=0, title="Zebra notes",
                     text="zebra quagga savanna migration zebra quagga")
    host = network.peer_ids()[2]
    network.publish_documents(host, [zebra])
    network.build_index(mode="hdk")
    return network, host, zebra.doc_id


class TestUnpublish:
    def test_document_disappears_from_results(self):
        network, host, doc_id = _network_with_zebra()
        origin = network.peer_ids()[0]
        before, _ = network.query(origin, "zebra quagga")
        assert [doc.doc_id for doc in before] == [doc_id]
        network.unpublish(host, doc_id)
        after, _ = network.query(origin, "zebra quagga")
        assert after == []

    def test_single_term_postings_retracted(self):
        network, host, doc_id = _network_with_zebra()
        key = Key(["zebra"])
        owner = network.ring.successor_of(key.key_id)
        entry_before = network.peer(owner).fragment.get(key)
        assert entry_before is not None
        assert doc_id in entry_before.postings.doc_ids()
        network.unpublish(host, doc_id)
        entry_after = network.peer(owner).fragment.get(key)
        # Either the whole key vanished (zebra only occurred there) or
        # the posting is gone.
        assert entry_after is None or \
            doc_id not in entry_after.postings.doc_ids()

    def test_global_df_decremented(self):
        network, host, doc_id = _network_with_zebra()
        # "peer" occurs in many sample documents; removing one decreases
        # its aggregate df by exactly the holder's delta.
        target = None
        for document in list(network.peer(host).engine.store):
            if "peer" in network.analyzer.analyze(document.text):
                target = document
                break
        assert target is not None
        key = Key(["peer"])
        owner = network.ring.successor_of(key.key_id)
        before = network.peer(owner).fragment.get(key).global_df
        network.unpublish(host, target.doc_id)
        after = network.peer(owner).fragment.get(key).global_df
        assert after == before - 1

    def test_stats_store_df_delta(self):
        network, host, doc_id = _network_with_zebra()
        term_owner = network.ring.successor_of(Key(["zebra"]).key_id)
        store = network.peer(term_owner).stats_store
        assert store.df("zebra") == 1
        network.unpublish(host, doc_id)
        assert store.df("zebra") == 0

    def test_unpublish_unknown_doc_rejected(self):
        network, host, _doc_id = _network_with_zebra()
        with pytest.raises(KeyError):
            network.unpublish(host, 10 ** 9)

    def test_stale_combination_keys_filtered_lazily(self):
        # Even if a 2-term key still carries the retracted doc, queries
        # must not return it.
        network, host, doc_id = _network_with_zebra()
        network.unpublish(host, doc_id)
        stale = 0
        for peer in network.peers():
            for entry in peer.fragment:
                if len(entry.key) > 1 and \
                        doc_id in entry.postings.doc_ids():
                    stale += 1
        origin = network.peer_ids()[0]
        results, _ = network.query(origin, "zebra quagga")
        assert all(doc.doc_id != doc_id for doc in results)


class TestLookupCache:
    def test_cache_eliminates_hops_on_repeat(self):
        config = AlvisConfig(cache_lookups=True)
        network, _host, _doc_id = _network_with_zebra(config=config)
        origin = network.peer_ids()[0]
        _r, cold = network.query(origin, "zebra quagga")
        _r, warm = network.query(origin, "zebra quagga")
        assert warm.lookup_hops == 0
        assert cold.lookup_hops >= warm.lookup_hops

    def test_cache_disabled_by_default(self):
        network, _host, _doc_id = _network_with_zebra()
        origin = network.peer_ids()[0]
        _r, first = network.query(origin, "zebra quagga")
        _r, second = network.query(origin, "zebra quagga")
        assert second.lookup_hops == first.lookup_hops

    def test_cache_invalidated_by_membership_change(self):
        config = AlvisConfig(cache_lookups=True)
        network, _host, _doc_id = _network_with_zebra(config=config)
        origin = network.peer_ids()[0]
        network.query(origin, "zebra quagga")
        churn = network.churn()
        churn.join()
        # After a join, resolutions must be recomputed (and correct).
        _results, trace = network.query(origin, "zebra quagga")
        for key, _status in trace.probes:
            owner = network.ring.successor_of(key.key_id)
            assert network.ring.contains(owner)

    def test_cached_results_identical(self):
        config = AlvisConfig(cache_lookups=True)
        network, _host, _doc_id = _network_with_zebra(config=config)
        plain, _ = _network_with_zebra()[0].query(
            _network_with_zebra()[0].peer_ids()[0], "zebra quagga")
        origin = network.peer_ids()[0]
        network.query(origin, "zebra quagga")
        cached, _ = network.query(origin, "zebra quagga")
        assert [doc.doc_id for doc in cached] == \
            [doc.doc_id for doc in plain]

    def test_cache_size_bounded(self):
        config = AlvisConfig(cache_lookups=True, lookup_cache_size=2)
        network, _host, _doc_id = _network_with_zebra(config=config)
        origin = network.peer_ids()[0]
        network.query(origin, "zebra quagga savanna")
        _epoch, cache = network._lookup_caches[origin]
        assert len(cache) <= 2

"""Tests for tokenizer, stemmer, stopwords and the analysis pipeline."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.stemmer import PorterStemmer
from repro.ir.stopwords import DEFAULT_STOPWORDS
from repro.ir.tokenizer import MAX_TOKEN_LENGTH, tokenize


class TestTokenizer:
    def test_basic_split(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("room 42") == ["room", "42"]

    def test_hyphen_splits(self):
        assert tokenize("peer-to-peer") == ["peer", "to", "peer"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! --- ...") == []

    def test_case_folding(self):
        assert tokenize("BM25 Bm25 bm25") == ["bm25"] * 3

    def test_long_junk_dropped(self):
        junk = "x" * (MAX_TOKEN_LENGTH + 1)
        assert tokenize(f"good {junk} fine") == ["good", "fine"]

    def test_unicode_ignored(self):
        # The simple tokenizer is ASCII-alnum only; accents split tokens.
        assert tokenize("café") == ["caf"]


class TestPorterStemmer:
    @pytest.fixture(scope="class")
    def stemmer(self):
        return PorterStemmer()

    @pytest.mark.parametrize("word,expected", [
        # Classic examples from Porter's paper.
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("digitizer", "digit"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formaliti", "formal"),
        ("sensitiviti", "sensit"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electriciti", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angulariti", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ])
    def test_porter_vocabulary(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    def test_short_words_untouched(self, stemmer):
        assert stemmer.stem("is") == "is"
        assert stemmer.stem("a") == "a"

    def test_idempotent_on_common_words(self, stemmer):
        for word in ("running", "retrieval", "indexes", "combination",
                     "scalability", "documents"):
            once = stemmer.stem(word)
            assert stemmer.stem(once) == once or len(once) <= 2

    def test_same_family_same_stem(self, stemmer):
        assert stemmer.stem("indexing") == stemmer.stem("indexed")
        assert stemmer.stem("retrieval") != ""
        assert stemmer.stem("connect") == stemmer.stem("connected")
        assert stemmer.stem("connect") == stemmer.stem("connecting")
        assert stemmer.stem("connect") == stemmer.stem("connection")[:7]


class TestAnalyzer:
    def test_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("The quick brown foxes are running") == \
            ["quick", "brown", "fox", "run"]

    def test_stopwords_removed(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("the and of with")
        assert terms == []

    def test_no_stemming_option(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("running foxes") == ["running", "foxes"]

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords=frozenset({"foo"}), stem=False)
        assert analyzer.analyze("foo bar the") == ["bar", "the"]

    def test_min_term_length(self):
        analyzer = Analyzer(min_term_length=4, stem=False)
        assert analyzer.analyze("cat door") == ["door"]

    def test_min_term_length_validation(self):
        with pytest.raises(ValueError):
            Analyzer(min_term_length=0)

    def test_analyze_query_dedupes_preserving_order(self):
        analyzer = Analyzer()
        terms = analyzer.analyze_query("peers peer retrieval peers")
        assert terms == ["peer", "retriev"]

    def test_stem_cache_consistent(self):
        analyzer = Analyzer()
        first = analyzer.analyze("retrieval retrieval retrieval")
        second = analyzer.analyze("retrieval")
        assert set(first) == set(second)

    def test_default_stopwords_are_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)

    def test_query_and_document_agree(self):
        # The core requirement: same analysis for documents and queries.
        analyzer = Analyzer()
        doc_terms = analyzer.analyze("Scalable retrieval of documents")
        query_terms = analyzer.analyze_query("scalability Document")
        assert query_terms[1] in doc_terms

"""Property-based round-trip tests for the packed postings codec.

Seeded-random (not hypothesis — deterministic in CI) coverage of the
flat wire layout: pack -> unpack identity over adversarial shapes
(empty lists, max-score ties, single entries, counts straddling the
numpy dispatch threshold), bitwise equality between the vectorized and
pure-Python encoders, and the laziness contract of
:class:`PackedPostings` (the deferred bytes must be exactly what the
eager encoder produces, and its sizes must match the byte-size model).
"""

import math
import random

import pytest

from repro.ir.postings import (
    POSTING_WIRE_BYTES,
    POSTINGS_ENVELOPE_BYTES,
    PackedPostings,
    Posting,
    PostingList,
    _pack_entries_numpy,
    _pack_entries_python,
    _unpack_entries_numpy,
    _unpack_entries_python,
    pack_entries,
    pack_postings,
    unpack_entries,
    unpack_postings,
)
from repro.util.npcompat import np

SEED = 0xA15



def _random_entries(rng, count, score_mode="mixed"):
    """Adversarially shaped—but valid—postings (unique doc ids)."""
    doc_ids = set()
    while len(doc_ids) < count:
        doc_ids.add(rng.getrandbits(64))
    doc_ids = sorted(doc_ids)
    entries = []
    for doc_id in doc_ids:
        if score_mode == "ties":
            score = 1.0  # every score identical: order rests on doc ids
        elif score_mode == "extreme":
            score = rng.choice([0.0, -0.0, 1e-308, 1e308,
                                float(rng.getrandbits(62)),
                                math.pi, -math.e])
        else:
            score = rng.uniform(-1e6, 1e6)
        entries.append(Posting(doc_id, score))
    return entries


def _as_list(entries, rng):
    truncated_by = rng.choice([0, 0, 1, 17])
    return PostingList(entries, global_df=len(set(
        posting.doc_id for posting in entries)) + truncated_by)


class TestPackUnpackIdentity:
    """pack -> unpack is the identity on canonical posting lists."""

    def test_empty_list(self):
        plist = PostingList()
        blob = pack_postings(plist)
        assert len(blob) == POSTINGS_ENVELOPE_BYTES == plist.wire_size()
        decoded, offset = unpack_postings(blob)
        assert offset == len(blob)
        assert decoded.entries == []
        assert decoded.global_df == 0

    def test_single_entry(self):
        plist = PostingList([Posting(2 ** 64 - 1, 0.125)])
        decoded, _offset = unpack_postings(pack_postings(plist))
        assert decoded.entries == plist.entries
        assert decoded.global_df == plist.global_df

    @pytest.mark.parametrize("count", [1, 2, 7, 8, 9, 63, 64, 200])
    def test_boundary_sizes_round_trip(self, count):
        # Straddles the numpy dispatch threshold (8) on both sides.
        rng = random.Random(SEED + count)
        plist = _as_list(_random_entries(rng, count), rng)
        blob = pack_postings(plist)
        assert len(blob) == plist.wire_size() == \
            POSTINGS_ENVELOPE_BYTES + POSTING_WIRE_BYTES * count
        decoded, offset = unpack_postings(blob)
        assert offset == len(blob)
        assert decoded.entries == plist.entries
        assert decoded.global_df == plist.global_df
        assert decoded.truncated == plist.truncated

    def test_max_score_ties_keep_doc_id_order(self):
        rng = random.Random(SEED)
        plist = _as_list(_random_entries(rng, 32, score_mode="ties"), rng)
        decoded, _offset = unpack_postings(pack_postings(plist))
        assert decoded.doc_ids() == sorted(decoded.doc_ids())
        assert decoded.entries == plist.entries

    def test_extreme_scores_bitwise_exact(self):
        rng = random.Random(SEED + 1)
        for trial in range(25):
            plist = _as_list(
                _random_entries(rng, rng.randrange(0, 40),
                                score_mode="extreme"), rng)
            decoded, _offset = unpack_postings(pack_postings(plist))
            for original, roundtripped in zip(plist.entries,
                                              decoded.entries):
                assert original.doc_id == roundtripped.doc_id
                # Bitwise float equality (covers -0.0 vs 0.0).
                assert math.copysign(1.0, original.score) == \
                    math.copysign(1.0, roundtripped.score)
                assert original.score == roundtripped.score or (
                    math.isnan(original.score)
                    and math.isnan(roundtripped.score))

    def test_random_sweep(self):
        rng = random.Random(SEED + 2)
        for trial in range(200):
            plist = _as_list(
                _random_entries(rng, rng.randrange(0, 48)), rng)
            blob = pack_postings(plist)
            assert len(blob) == plist.wire_size()
            decoded, offset = unpack_postings(blob)
            assert offset == len(blob)
            assert decoded.entries == plist.entries
            assert decoded.global_df == plist.global_df

    def test_truncated_buffer_raises_value_error(self):
        rng = random.Random(SEED + 3)
        plist = _as_list(_random_entries(rng, 12), rng)
        blob = pack_postings(plist)
        for cut in range(len(blob)):
            with pytest.raises(ValueError):
                unpack_postings(blob[:cut])

    def test_offset_chaining(self):
        rng = random.Random(SEED + 4)
        lists = [_as_list(_random_entries(rng, rng.randrange(0, 20)), rng)
                 for _ in range(5)]
        blob = b"".join(pack_postings(plist) for plist in lists)
        offset = 0
        for plist in lists:
            decoded, offset = unpack_postings(blob, offset)
            assert decoded.entries == plist.entries
        assert offset == len(blob)


@pytest.mark.skipif(np is None, reason="numpy unavailable "
                    "(REPRO_PURE_PYTHON=1): single-codec environment")
class TestNumpyPythonBitwiseEquality:
    """The vectorized codec is bit-for-bit the reference codec."""

    @pytest.mark.parametrize("count", [0, 1, 7, 8, 9, 33, 128])
    def test_pack_bitwise_identical(self, count):
        rng = random.Random(SEED + count)
        entries = sorted(_random_entries(rng, count),
                         key=lambda posting: (-posting.score,
                                              posting.doc_id))
        assert _pack_entries_numpy(entries) == \
            _pack_entries_python(entries)

    @pytest.mark.parametrize("count", [0, 1, 7, 8, 9, 33, 128])
    def test_unpack_identical_values_and_types(self, count):
        rng = random.Random(SEED + 100 + count)
        blob = pack_entries(_random_entries(rng, count))
        via_numpy = _unpack_entries_numpy(blob, 0, count)
        via_python = _unpack_entries_python(blob, 0, count)
        assert via_numpy == via_python
        for posting in via_numpy:
            # .tolist() conversion must yield native Python scalars so
            # downstream arithmetic and equality behave identically.
            assert type(posting.doc_id) is int
            assert type(posting.score) is float

    def test_random_sweep_both_codecs(self):
        rng = random.Random(SEED + 5)
        for trial in range(100):
            entries = _random_entries(rng, rng.randrange(0, 40))
            assert _pack_entries_numpy(entries) == \
                _pack_entries_python(entries)


class TestPackedPostingsLaziness:
    """The deferred wrapper is indistinguishable from eager packing."""

    def _random_list(self, rng, count):
        return _as_list(_random_entries(rng, count), rng)

    def test_wire_size_without_materializing(self):
        rng = random.Random(SEED + 6)
        plist = self._random_list(rng, 24)
        packed = PackedPostings.from_list(plist)
        assert packed.wire_size() == plist.wire_size()
        assert packed._data is None  # sizing must not force the encode

    def test_data_matches_eager_encoder(self):
        rng = random.Random(SEED + 7)
        for count in (0, 1, 7, 8, 9, 40):
            plist = self._random_list(rng, count)
            packed = PackedPostings.from_list(plist)
            assert packed.data == pack_postings(plist)
            assert len(packed.data) == packed.wire_size()

    def test_wire_constructor_round_trip(self):
        rng = random.Random(SEED + 8)
        plist = self._random_list(rng, 16)
        blob = pack_postings(plist)
        packed = PackedPostings(blob, plist.global_df,
                                len(plist.entries))
        assert packed.data is blob
        decoded = packed.to_posting_list()
        assert decoded.entries == plist.entries
        assert decoded.global_df == plist.global_df

    def test_to_posting_list_both_paths_agree(self):
        rng = random.Random(SEED + 9)
        for trial in range(50):
            plist = self._random_list(rng, rng.randrange(0, 32))
            lazy = PackedPostings.from_list(plist).to_posting_list()
            eager = PackedPostings(pack_postings(plist),
                                   plist.global_df,
                                   len(plist.entries)).to_posting_list()
            assert lazy.entries == eager.entries
            assert lazy.global_df == eager.global_df
            assert lazy.truncated == eager.truncated

    def test_len_and_truncated(self):
        plist = PostingList([Posting(1, 2.0), Posting(2, 1.0)],
                            global_df=5)
        packed = PackedPostings.from_list(plist)
        assert len(packed) == 2
        assert packed.truncated
        assert "truncated" in repr(packed)

"""Tests for the async query runtime (event-kernel L3/L4 execution).

The load-bearing property: for a single query, ``async_queries`` changes
*timing*, never traffic semantics — identical top-k, identical bytes,
identical probe statuses versus the synchronous frontier-batched path.
On top of that sit the new capabilities: genuinely concurrent queries,
clock-measured latency, cross-query dispatch batching, level pipelining
and graceful churn drops.
"""

import pytest

from repro.core.config import AlvisConfig
from repro.core.lattice import ProbeStatus
from repro.core.network import AlvisNetwork
from repro.corpus import sample_documents
from repro.eval.monitor import NetworkMonitor

QUERIES = ["scalable peer retrieval",
           "posting list truncation",
           "congestion control"]


def build_network(mode="hdk", **overrides):
    config = AlvisConfig(**overrides)
    network = AlvisNetwork(num_peers=8, config=config, seed=42)
    network.distribute_documents(sample_documents())
    network.build_index(mode=mode)
    return network


def doc_ids(results):
    return [document.doc_id for document in results]


# ----------------------------------------------------------------------
# Cross-mode equality (the acceptance criterion)
# ----------------------------------------------------------------------

class TestCrossModeEquality:
    def test_single_query_traffic_identical(self):
        sync = build_network(batch_lookups=True)
        asynchronous = build_network(batch_lookups=True,
                                     async_queries=True)
        origin_sync = sync.peer_ids()[0]
        origin_async = asynchronous.peer_ids()[0]
        for query in QUERIES:
            sync_results, sync_trace = sync.query(origin_sync, query)
            async_results, async_trace = asynchronous.query(
                origin_async, query)
            assert doc_ids(sync_results) == doc_ids(async_results)
            assert sync_trace.bytes_sent == async_trace.bytes_sent
            assert sync_trace.bytes_by_kind == async_trace.bytes_by_kind
            assert sync_trace.lookup_hops == async_trace.lookup_hops
            assert sync_trace.request_messages == \
                async_trace.request_messages
            assert sync_trace.probes == async_trace.probes
            assert sync_trace.cache_hits == async_trace.cache_hits
            assert sync_trace.cache_misses == async_trace.cache_misses

    def test_equality_with_engine_features_on(self):
        overrides = dict(batch_lookups=True, cache_bytes=64 * 1024,
                         topk_early_stop=True, cache_lookups=True)
        sync = build_network(**overrides)
        asynchronous = build_network(async_queries=True, **overrides)
        origin = sync.peer_ids()[0]
        for query in QUERIES + QUERIES:     # repeats exercise the caches
            sync_results, sync_trace = sync.query(origin, query)
            async_results, async_trace = asynchronous.query(origin, query)
            assert doc_ids(sync_results) == doc_ids(async_results)
            assert sync_trace.bytes_sent == async_trace.bytes_sent
            assert sync_trace.probes == async_trace.probes
            assert sync_trace.cache_hits == async_trace.cache_hits

    def test_equality_with_refinement(self):
        sync = build_network(batch_lookups=True)
        asynchronous = build_network(batch_lookups=True,
                                     async_queries=True)
        origin = sync.peer_ids()[0]
        sync_results, sync_trace = sync.query(origin, QUERIES[0],
                                              refine=True)
        async_results, async_trace = asynchronous.query(origin, QUERIES[0],
                                                        refine=True)
        assert doc_ids(sync_results) == doc_ids(async_results)
        assert async_trace.refined
        assert sync_trace.bytes_sent == async_trace.bytes_sent
        assert sync_trace.bytes_by_kind == async_trace.bytes_by_kind

    def test_equality_under_qdi(self):
        sync = build_network(mode="qdi", batch_lookups=True)
        asynchronous = build_network(mode="qdi", batch_lookups=True,
                                     async_queries=True)
        origin = sync.peer_ids()[0]
        for query in QUERIES:
            sync_results, sync_trace = sync.query(origin, query)
            async_results, async_trace = asynchronous.query(origin, query)
            assert doc_ids(sync_results) == doc_ids(async_results)
            # Feedback messages included; bytes may differ because the
            # sync trace window also captures owner-side harvest traffic.
            assert sync_trace.request_messages == \
                async_trace.request_messages

    def test_dispatch_window_changes_latency_not_traffic(self):
        fast = build_network(batch_lookups=True, async_queries=True)
        windowed = build_network(batch_lookups=True, async_queries=True,
                                 dispatch_window=0.05)
        origin = fast.peer_ids()[0]
        fast_results, fast_trace = fast.query(origin, QUERIES[0])
        slow_results, slow_trace = windowed.query(origin, QUERIES[0])
        assert doc_ids(fast_results) == doc_ids(slow_results)
        assert fast_trace.bytes_sent == slow_trace.bytes_sent
        assert slow_trace.latency > fast_trace.latency


# ----------------------------------------------------------------------
# Clock-measured latency
# ----------------------------------------------------------------------

class TestLatency:
    def test_latency_from_virtual_clock(self):
        network = build_network(batch_lookups=True, async_queries=True)
        origin = network.peer_ids()[0]
        started = network.simulator.now
        _results, trace = network.query(origin, QUERIES[0])
        assert trace.started_at >= started
        assert trace.finished_at > trace.started_at
        assert trace.latency == pytest.approx(trace.finished_at
                                              - trace.started_at)
        assert trace.latency > 0.0
        # The async path measures; it does not estimate.
        assert trace.rtt_estimate == 0.0

    def test_sync_path_keeps_rtt_estimate(self):
        network = build_network(batch_lookups=True)
        origin = network.peer_ids()[0]
        _results, trace = network.query(origin, QUERIES[0])
        assert trace.rtt_estimate > 0.0
        assert trace.latency == 0.0

    def test_trace_byte_audit(self):
        network = build_network(batch_lookups=True, async_queries=True)
        origin = network.peer_ids()[0]
        _results, trace = network.query(origin, QUERIES[1])
        assert trace.bytes_sent == sum(trace.bytes_by_kind.values())
        assert trace.summary()["latency"] == pytest.approx(trace.latency)


# ----------------------------------------------------------------------
# Concurrency: the open-workload driver
# ----------------------------------------------------------------------

class TestRunQueries:
    def test_requires_async_mode(self):
        network = build_network(batch_lookups=True)
        with pytest.raises(ValueError):
            network.run_queries(QUERIES)

    def test_rejects_bad_arrival_rate(self):
        network = build_network(batch_lookups=True, async_queries=True)
        with pytest.raises(ValueError):
            network.run_queries(QUERIES, arrival_rate=0.0)

    def test_queries_genuinely_overlap(self):
        network = build_network(batch_lookups=True, async_queries=True)
        workload = QUERIES * 4
        jobs = network.run_queries(workload, arrival_rate=200.0)
        assert len(jobs) == len(workload)
        assert all(job.done for job in jobs)
        assert all(job.trace.latency > 0 for job in jobs)
        assert network.runtime.peak_active > 1
        assert network.runtime.completed == len(workload)
        assert len(network.runtime.latencies) == len(workload)

    def test_deterministic_under_fixed_seed(self):
        first = build_network(batch_lookups=True, async_queries=True)
        second = build_network(batch_lookups=True, async_queries=True)
        jobs_first = first.run_queries(QUERIES * 2, arrival_rate=100.0)
        jobs_second = second.run_queries(QUERIES * 2, arrival_rate=100.0)
        assert [doc_ids(job.results) for job in jobs_first] == \
            [doc_ids(job.results) for job in jobs_second]
        assert [job.trace.latency for job in jobs_first] == \
            [job.trace.latency for job in jobs_second]

    def test_results_match_sequential_execution(self):
        # Concurrency must not change what any query returns (hdk mode:
        # probes have no side effects).
        concurrent = build_network(batch_lookups=True, async_queries=True)
        sequential = build_network(batch_lookups=True)
        origin = concurrent.peer_ids()[0]
        jobs = concurrent.run_queries(QUERIES * 2, origins=[origin],
                                      arrival_rate=500.0)
        for job in jobs:
            expected, _trace = sequential.query(origin,
                                                list(job.terms))
            assert doc_ids(job.results) == doc_ids(expected)


# ----------------------------------------------------------------------
# Cross-query dispatch batching
# ----------------------------------------------------------------------

class TestDispatchBatching:
    def test_concurrent_duplicate_queries_coalesce(self):
        network = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.05)
        origin = network.peer_ids()[0]
        baseline = build_network(batch_lookups=True, async_queries=True)
        # Two identical queries, submitted at the same virtual instant
        # from one origin: their probes and lookups share messages.
        messages_before = network.messages_sent_total()
        first = network.runtime.submit(origin, QUERIES[0])
        second = network.runtime.submit(origin, QUERIES[0])
        network.simulator.run()
        shared_messages = network.messages_sent_total() - messages_before
        assert first.done and second.done
        assert doc_ids(first.results) == doc_ids(second.results)
        assert network.runtime.coalesced_probe_keys() > 0
        # Versus the same two queries run independently:
        messages_before = baseline.messages_sent_total()
        baseline.query(origin, QUERIES[0])
        baseline.query(origin, QUERIES[0])
        independent_messages = (baseline.messages_sent_total()
                                - messages_before)
        assert shared_messages < independent_messages

    def test_open_workload_batching_saves_messages(self):
        workload = (QUERIES * 4)[:10]
        independent = build_network(batch_lookups=True,
                                    async_queries=True)
        batched = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.05)
        origin_list = [independent.peer_ids()[0]]
        before = independent.messages_sent_total()
        independent.run_queries(workload, origins=origin_list,
                                arrival_rate=300.0)
        independent_messages = (independent.messages_sent_total()
                                - before)
        before = batched.messages_sent_total()
        batched.run_queries(workload, origins=origin_list,
                            arrival_rate=300.0)
        batched_messages = batched.messages_sent_total() - before
        assert batched_messages < independent_messages


# ----------------------------------------------------------------------
# Level pipelining
# ----------------------------------------------------------------------

class TestLevelPipelining:
    def test_pipelining_preserves_results(self):
        plain = build_network(batch_lookups=True, async_queries=True)
        pipelined = build_network(batch_lookups=True, async_queries=True,
                                  pipeline_levels=True)
        origin = plain.peer_ids()[0]
        for query in QUERIES:
            plain_results, plain_trace = plain.query(origin, query)
            piped_results, piped_trace = pipelined.query(origin, query)
            assert doc_ids(plain_results) == doc_ids(piped_results)
            assert plain_trace.probes == piped_trace.probes
            # Speculative lookups can only add routing traffic.
            assert piped_trace.bytes_sent >= plain_trace.bytes_sent

    def test_pipelining_cuts_latency(self):
        plain = build_network(batch_lookups=True, async_queries=True)
        pipelined = build_network(batch_lookups=True, async_queries=True,
                                  pipeline_levels=True)
        origin = plain.peer_ids()[0]
        # A 3-term query has three lattice levels to overlap.
        _r, plain_trace = plain.query(origin, QUERIES[0])
        _r, piped_trace = pipelined.query(origin, QUERIES[0])
        assert piped_trace.latency <= plain_trace.latency


# ----------------------------------------------------------------------
# Graceful churn handling
# ----------------------------------------------------------------------

class TestChurnDrops:
    def _kill_probe_owner(self, network, query):
        """Unregister (transport only) a non-origin owner the query
        probes, returning the origin."""
        origin = network.peer_ids()[0]
        probe = network.analyzer.analyze_query(query)
        for term in probe:
            from repro.core.keys import Key
            owner = network.owner_peer_of_key(Key([term]).key_id)
            if owner != origin:
                network.transport.unregister(owner)
                return origin
        pytest.skip("every owner is the origin")

    def test_async_query_survives_departed_owner(self):
        network = build_network(batch_lookups=True, async_queries=True)
        origin = self._kill_probe_owner(network, QUERIES[0])
        results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1
        assert any(status == ProbeStatus.DROPPED
                   for _key, status in trace.probes)
        assert trace.summary()["dropped"] >= 1

    def test_sync_batched_query_survives_departed_owner(self):
        network = build_network(batch_lookups=True)
        origin = self._kill_probe_owner(network, QUERIES[0])
        results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1

    def test_sync_per_probe_query_survives_departed_owner(self):
        network = build_network()        # per-probe compatibility path
        origin = self._kill_probe_owner(network, QUERIES[0])
        results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1

    def test_open_workload_survives_peer_crash(self):
        # A peer crashes (ring + transport) while ~all queries are in
        # flight — including queries *originating* at the victim.  Every
        # query must still complete; victims' queries wind down with
        # dropped probes instead of DeliveryError.
        network = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.03,
                                pipeline_levels=True)
        victim = network.peer_ids()[-1]
        network.simulator.schedule(0.05,
                                   lambda: network.fail_peer(victim))
        jobs = network.run_queries(QUERIES * 4, arrival_rate=200.0)
        assert all(job.done for job in jobs)
        assert network.runtime.active == 0

    def test_churn_process_interleaved_with_queries(self):
        network = build_network(batch_lookups=True, async_queries=True)
        churn = network.churn()
        network.simulator.schedule(
            0.04, lambda: (churn.leave(), churn.join()))
        jobs = network.run_queries(QUERIES * 4, arrival_rate=150.0)
        assert all(job.done for job in jobs)

    def test_dropped_probes_are_not_qdi_missing(self):
        # A dropped probe must not look like a "missing" combination.
        network = build_network(batch_lookups=True, async_queries=True)
        origin = self._kill_probe_owner(network, QUERIES[0])
        _results, trace = network.query(origin, QUERIES[0])
        dropped = [key for key, status in trace.probes
                   if status == ProbeStatus.DROPPED]
        missing = [key for key, status in trace.probes
                   if status == ProbeStatus.MISSING]
        assert set(dropped).isdisjoint(missing)


# ----------------------------------------------------------------------
# Monitoring
# ----------------------------------------------------------------------

class TestMonitorSurfacing:
    def test_latency_percentiles_in_snapshot(self):
        network = build_network(batch_lookups=True, async_queries=True)
        network.run_queries(QUERIES * 3, arrival_rate=150.0)
        monitor = NetworkMonitor(network)
        snapshot = monitor.snapshot()
        assert snapshot.queries_completed == 9
        assert snapshot.queries_active == 0
        assert snapshot.peak_queries_active >= 1
        assert snapshot.requests_in_flight == 0
        assert snapshot.query_latency_p50 > 0.0
        assert snapshot.query_latency_p95 >= snapshot.query_latency_p50
        assert snapshot.query_latency_p99 >= snapshot.query_latency_p95
        flat = snapshot.as_dict()
        assert flat["query_latency_p95"] == snapshot.query_latency_p95
        rendered = monitor.render(snapshot)
        assert "async runtime" in rendered
        assert "p95" in rendered

    def test_monitor_quiet_without_async_traffic(self):
        network = build_network(batch_lookups=True)
        network.query(network.peer_ids()[0], QUERIES[0])
        snapshot = NetworkMonitor(network).snapshot()
        assert snapshot.queries_completed == 0
        assert snapshot.query_latency_p95 == 0.0


# ----------------------------------------------------------------------
# Byte attribution: per-query traces reconcile with the wire
# ----------------------------------------------------------------------

QUERY_TRAFFIC_KINDS = ("LookupHop", "ProbeBatch", "ProbeBatchReply")


def query_traffic_bytes(network):
    return {kind: network.bytes_by_kind().get(kind, 0.0)
            for kind in QUERY_TRAFFIC_KINDS}


class TestSharedBatchAttribution:
    """Regression: coalesced (cross-query) messages must pro-rate their
    wire bytes across participants — summed per-query bytes equal the
    transport's counters exactly, instead of over-counting every shared
    message once per participant.

    The exact-reconciliation guarantee assumes ``request_timeout = 0``
    (the default): a timed-out request's late reply is wire-accounted
    but discarded by the sender, so no trace can be charged for it."""

    def _reconcile(self, network, jobs):
        wire = query_traffic_bytes(network)
        charged = {kind: 0 for kind in QUERY_TRAFFIC_KINDS}
        for job in jobs:
            for kind, nbytes in job.trace.bytes_by_kind.items():
                if kind in charged:
                    charged[kind] += nbytes
        for kind in QUERY_TRAFFIC_KINDS:
            assert charged[kind] == wire[kind], (
                f"{kind}: traces charged {charged[kind]}, "
                f"wire carried {wire[kind]:.0f}")

    def test_coalesced_traffic_reconciles(self):
        network = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.05)
        origin = network.peer_ids()[0]
        network.reset_traffic()
        # Identical queries submitted at the same instant coalesce into
        # shared lookups and probe batches.
        jobs = [network.runtime.submit(origin, QUERIES[0])
                for _ in range(3)]
        network.simulator.run()
        assert all(job.done for job in jobs)
        assert network.runtime.coalesced_probe_keys() > 0
        self._reconcile(network, jobs)

    def test_open_workload_reconciles(self):
        network = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.04)
        origins = [network.peer_ids()[0]]
        network.reset_traffic()
        jobs = network.run_queries(QUERIES * 4, origins=origins,
                                   arrival_rate=300.0)
        self._reconcile(network, jobs)

    def test_open_workload_reconciles_with_pipelining(self):
        network = build_network(batch_lookups=True, async_queries=True,
                                dispatch_window=0.04,
                                pipeline_levels=True)
        origins = [network.peer_ids()[0]]
        network.reset_traffic()
        jobs = network.run_queries(QUERIES * 4, origins=origins,
                                   arrival_rate=300.0)
        self._reconcile(network, jobs)

    def test_single_query_still_charged_in_full(self):
        # With one participant the pro-rated share IS the whole message,
        # so the single-query byte equality with the sync path holds.
        network = build_network(batch_lookups=True, async_queries=True)
        origin = network.peer_ids()[0]
        network.reset_traffic()
        _results, trace = network.query(origin, QUERIES[1])
        wire = query_traffic_bytes(network)
        for kind in QUERY_TRAFFIC_KINDS:
            assert trace.bytes_by_kind.get(kind, 0) == wire[kind]

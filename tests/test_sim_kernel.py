"""Tests for the simulation kernel (clock, events, metrics)."""

import random

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import (EventQueue, LegacyEventQueue, Simulator)
from repro.sim.metrics import MetricsRegistry


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_backwards_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_by(self):
        clock = VirtualClock(1.0)
        clock.advance_by(2.0)
        assert clock.now == 3.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-0.1)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_at_same_time(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.push(1.0, lambda label=label: order.append(label))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        event.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        first = queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_live_counter_tracks_push_pop_cancel(self):
        queue = EventQueue()
        events = [queue.push(float(index), lambda: None)
                  for index in range(5)]
        assert len(queue) == 5
        events[1].cancel()
        events[3].cancel()
        assert len(queue) == 3
        assert queue.pop() is events[0]
        assert len(queue) == 2
        # Popping skips the cancelled events without re-counting them.
        assert queue.pop() is events[2]
        assert queue.pop() is events[4]
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_counter(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()                   # already executed: no-op
        assert len(queue) == 1

    def test_peek_past_cancelled_keeps_counter(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0  # lazily drops the cancelled head
        assert len(queue) == 1


class TestPushMany:
    def test_preserves_fifo_order_at_same_time(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("x"))
        queue.push_many([(1.0, lambda label=label: order.append(label))
                         for label in "abc"])
        while queue:
            queue.pop().callback()
        assert order == ["x", "a", "b", "c"]

    def test_interleaves_with_push(self):
        queue = EventQueue()
        handles = queue.push_many([(3.0, lambda: None), (1.0, lambda: None)])
        single = queue.push(2.0, lambda: None)
        assert len(queue) == 3
        assert queue.pop() is handles[1]
        assert queue.pop() is single
        assert queue.pop() is handles[0]

    def test_bulk_handles_cancellable(self):
        queue = EventQueue()
        handles = queue.push_many([(float(i), lambda: None)
                                   for i in range(4)])
        handles[0].cancel()
        handles[2].cancel()
        assert len(queue) == 2
        assert queue.pop() is handles[1]
        assert queue.pop() is handles[3]

    def test_empty_batch(self):
        queue = EventQueue()
        assert queue.push_many([]) == []
        assert len(queue) == 0

    def test_large_batch_onto_small_heap(self):
        # Exercises the heapify branch (batch >= heap size).
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push_many([(float(i), lambda: None) for i in (9, 1, 7, 3)])
        times = []
        while queue:
            times.append(queue.pop().time)
        assert times == [1.0, 3.0, 5.0, 7.0, 9.0]


class TestPopBatch:
    def test_pops_in_time_order_up_to_limit(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(5)]
        batch = queue.pop_batch(3)
        assert batch == handles[:3]
        assert len(queue) == 2

    def test_skips_cancelled(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(4)]
        handles[0].cancel()
        handles[2].cancel()
        assert queue.pop_batch(10) == [handles[1], handles[3]]
        assert len(queue) == 0


class TestCancelStress:
    """Interleaved cancel/push/pop/peek must keep the live counter and
    delivery order exact (regression for the duplicated lazy-deletion
    paths in ``pop``/``peek_time``)."""

    def test_randomized_interleaving_matches_reference(self):
        rng = random.Random(0xA1B2)
        queue = EventQueue()
        live = {}          # sequence -> event  (reference live set)
        popped = []
        for step in range(5000):
            action = rng.random()
            if action < 0.45 or not live:
                time = round(rng.uniform(0.0, 100.0), 3)
                if rng.random() < 0.2:
                    events = queue.push_many(
                        [(time + 0.001 * i, lambda: None)
                         for i in range(rng.randint(1, 4))])
                else:
                    events = [queue.push(time, lambda: None)]
                for event in events:
                    live[event.sequence] = event
            elif action < 0.70:
                victim = live.pop(rng.choice(list(live)))
                victim.cancel()
                victim.cancel()  # double cancel must be a no-op
            elif action < 0.90:
                event = queue.pop()
                if event is None:
                    assert not live
                else:
                    expected = min(
                        live.values(),
                        key=lambda entry: (entry.time, entry.sequence))
                    assert event is expected
                    del live[event.sequence]
                    popped.append(event)
                    if rng.random() < 0.3:
                        event.cancel()  # cancel-after-pop is a no-op
            else:
                peeked = queue.peek_time()
                if live:
                    assert peeked == min(
                        (entry.time, entry.sequence)
                        for entry in live.values())[0]
                else:
                    assert peeked is None
            assert len(queue) == len(live)
        # Drain: the survivors come out in exact (time, sequence) order.
        remaining = sorted(live.values(),
                           key=lambda entry: (entry.time, entry.sequence))
        drained = []
        while queue:
            drained.append(queue.pop())
        assert drained == remaining
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert len(queue) == 0


class TestLegacyEventQueue:
    """The preserved pre-optimisation queue must behave identically."""

    def test_same_semantics_as_fast_queue(self):
        for queue in (EventQueue(), LegacyEventQueue()):
            order = []
            queue.push(2.0, lambda: order.append("b"))
            first = queue.push(1.0, lambda: order.append("a"))
            queue.push(3.0, lambda: order.append("c"))
            first.cancel()
            assert len(queue) == 2
            assert queue.peek_time() == 2.0
            while queue:
                queue.pop().callback()
            assert order == ["b", "c"]

    def test_simulator_generic_loop_drives_legacy_queue(self):
        sim = Simulator(queue=LegacyEventQueue())
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: fired.append(sim.now))
        assert sim.run() == 2
        assert fired == [0.5, 1.0]
        assert sim.now == 1.0
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, lambda: fired.append(sim.now))
        assert sim.run_until(2.0) == 1
        assert sim.now == 2.0
        assert sim.events_processed == 3


class TestSimulator:
    def test_run_to_exhaustion(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: fired.append(sim.now))
        count = sim.run()
        assert count == 2
        assert fired == [0.5, 1.0]
        assert sim.now == 1.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_limits(self):
        sim = Simulator()
        for index in range(10):
            sim.schedule(float(index), lambda: None)
        assert sim.run(max_events=4) == 4
        assert len(sim.queue) == 6

    def test_run_until_parks_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        processed = sim.run_until(2.0)
        assert processed == 1
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_cancelled_events_skipped_by_fast_loop(self):
        sim = Simulator()
        fired = []
        doomed = sim.schedule(0.5, lambda: fired.append("doomed"))
        sim.schedule(1.0, lambda: fired.append("kept"))
        doomed.cancel()
        assert sim.run(max_events=5) == 1
        assert fired == ["kept"]

    def test_run_until_fast_loop_skips_cancelled_past_end(self):
        sim = Simulator()
        fired = []
        early = sim.schedule(0.5, lambda: fired.append("early"))
        sim.schedule(1.0, lambda: fired.append("mid"))
        sim.schedule(5.0, lambda: fired.append("late"))
        early.cancel()
        assert sim.run_until(2.0) == 1
        assert fired == ["mid"]
        assert sim.now == 2.0

    def test_wall_clock_throughput_counters(self):
        sim = Simulator()
        for index in range(100):
            sim.schedule(float(index), lambda: None)
        assert sim.wall_seconds == 0.0
        assert sim.events_per_sec == 0.0
        sim.run()
        assert sim.wall_seconds > 0.0
        assert sim.events_per_sec > 0.0
        assert sim.events_processed == 100


class TestMetricsRegistry:
    def test_counter_creation_and_increment(self):
        registry = MetricsRegistry()
        registry.counter("a.b").increment()
        registry.counter("a.b").increment(2.5)
        assert registry.counter_value("a.b") == 3.5

    def test_counter_default(self):
        assert MetricsRegistry().counter_value("missing", -1.0) == -1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").increment(-1)

    def test_prefix_queries(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes.a").increment(10)
        registry.counter("net.bytes.b").increment(5)
        registry.counter("other").increment(100)
        assert registry.total_with_prefix("net.bytes.") == 15
        assert set(registry.counters_with_prefix("net.bytes.")) == {
            "net.bytes.a", "net.bytes.b"}

    def test_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert len(histogram) == 3
        assert histogram.summary()["mean"] == pytest.approx(2.0)

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").increment()
        registry.histogram("y").observe(1.0)
        registry.reset()
        assert registry.counter_value("x") == 0.0
        assert registry.snapshot() == {}

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("x").increment(7)
        assert registry.snapshot() == {"x": 7.0}

"""RPL06x config-discipline checker: defaults stay pinned."""

from __future__ import annotations

import dataclasses

from repro.core.config import AlvisConfig
from repro.lint.checkers import config_defaults


def run(project):
    return list(config_defaults.check(project))


def by_code(findings, code):
    return [f for f in findings if f.code == code]


def test_pinned_table_matches_live_config():
    # The authoritative assertion: the pinned table IS the dataclass's
    # default surface, field for field, value for value.
    declared = {f.name: f.default
                for f in dataclasses.fields(AlvisConfig)
                if f.default is not dataclasses.MISSING}
    assert declared == config_defaults.PINNED_DEFAULTS


def test_flipped_default_is_rpl060(lint_project):
    project = lint_project({"core/config.py": """\
        class AlvisConfig:
            async_queries: bool = True
        """})
    flipped = by_code(run(project), "RPL060")
    assert [f.symbol for f in flipped] == ["async_queries"]


def test_bool_int_confusion_is_rpl060(lint_project):
    # cache_bytes is pinned to 0; `False` satisfies == but changes the
    # declared type — still a drift.
    project = lint_project({"core/config.py": """\
        class AlvisConfig:
            cache_bytes: bool = False
        """})
    assert [f.symbol for f in by_code(run(project), "RPL060")] == \
        ["cache_bytes"]


def test_unpinned_knob_is_rpl061(lint_project):
    project = lint_project({"core/config.py": """\
        class AlvisConfig:
            brand_new_knob: int = 7
        """})
    assert [f.symbol for f in by_code(run(project), "RPL061")] == \
        ["brand_new_knob"]


def test_removed_knob_is_rpl062(lint_project):
    project = lint_project({"core/config.py": """\
        class AlvisConfig:
            truncation_k: int = 20
        """})
    removed = {f.symbol for f in by_code(run(project), "RPL062")}
    assert "truncation_k" not in removed
    assert removed == set(config_defaults.PINNED_DEFAULTS) - \
        {"truncation_k"}


def test_matching_defaults_are_clean(lint_project):
    knobs = "\n".join(
        f"    {name}: {type(value).__name__} = {value!r}"
        for name, value in config_defaults.PINNED_DEFAULTS.items())
    project = lint_project({
        "core/config.py": "class AlvisConfig:\n" + knobs + "\n"})
    assert run(project) == []


def test_non_literal_defaults_are_skipped(lint_project):
    project = lint_project({"core/config.py": """\
        import dataclasses

        class AlvisConfig:
            truncation_k: int = 20
            derived: list = dataclasses.field(default_factory=list)
        """})
    assert by_code(run(project), "RPL061") == []


def test_projects_without_the_config_are_skipped(lint_project):
    project = lint_project({"core/x.py": "VALUE = 1\n"})
    assert run(project) == []

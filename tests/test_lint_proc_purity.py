"""RPL02x proc-purity checker: spawned generators never block."""

from __future__ import annotations

from repro.lint.checkers import proc_purity


def run(project):
    return list(proc_purity.check(project))


SPAWN_SITE = """\
    def start(sim):
        sim.spawn(worker(sim))
    """


def test_blocking_call_in_spawned_proc(lint_project):
    project = lint_project({"core/x.py": """\
        import time

        def start(sim):
            sim.spawn(worker(sim))

        def worker(sim):
            time.sleep(0.1)
            yield 1.0
        """})
    (finding,) = run(project)
    assert finding.code == "RPL020"
    assert finding.symbol == "worker:time.sleep"


def test_open_and_socket_flagged(lint_project):
    project = lint_project({"core/x.py": """\
        import socket

        def start(sim):
            sim.spawn(worker(sim))

        def worker(sim):
            handle = open("/tmp/x")
            sock = socket.socket()
            yield 1.0
        """})
    assert sorted(f.symbol for f in run(project)) == \
        ["worker:open", "worker:socket.socket"]


def test_unspawned_generator_is_not_a_proc(lint_project):
    # Plain generators (iterators, parsers...) may block freely.
    project = lint_project({"core/x.py": """\
        def lines(path):
            handle = open(path)
            yield from handle
        """})
    assert run(project) == []


def test_yield_from_delegation_closes_over_helpers(lint_project):
    project = lint_project({"core/x.py": """\
        import time

        def start(sim):
            sim.spawn(outer(sim))

        def outer(sim):
            yield 1.0
            yield from inner(sim)

        def inner(sim):
            time.sleep(5)
            yield 2.0
        """})
    (finding,) = run(project)
    assert finding.symbol == "inner:time.sleep"


def test_proc_constructor_counts_as_spawn(lint_project):
    project = lint_project({"core/x.py": """\
        import time
        from repro.sim.procs import Proc

        def start(sim):
            return Proc(sim, worker(sim))

        def worker(sim):
            time.sleep(1)
            yield None
        """})
    assert [f.code for f in run(project)] == ["RPL020"]


def test_illegal_yield_types(lint_project):
    project = lint_project({"core/x.py": """\
        def start(sim):
            sim.spawn(worker(sim))

        def worker(sim):
            yield "a string"
            yield [1, 2]
            yield {"k": 1}
        """})
    found = run(project)
    assert [f.code for f in found] == ["RPL021"] * 3
    assert {f.symbol for f in found} == \
        {"worker:str", "worker:list", "worker:dict"}


def test_legal_yields_are_clean(lint_project):
    project = lint_project({"core/x.py": """\
        def start(sim, transport):
            sim.spawn(worker(sim, transport))

        def worker(sim, transport):
            yield 0.5
            yield None
            reply = yield transport.request_async(1, 2)
            yield from helper(sim)

        def helper(sim):
            yield 1
        """})
    assert run(project) == []


def test_negative_literal_sleep(lint_project):
    project = lint_project({"core/x.py": """\
        def start(sim):
            sim.spawn(worker(sim))

        def worker(sim):
            yield -1.0
        """})
    (finding,) = run(project)
    assert finding.code == "RPL022"


def test_nested_function_yields_not_attributed_to_proc(lint_project):
    # A generator *defined inside* a proc is its own scope; its yields
    # must not make the enclosing non-generator a proc, nor leak
    # violations into the proc's report.
    project = lint_project({"core/x.py": """\
        def start(sim):
            sim.spawn(worker(sim))

        def worker(sim):
            def gen():
                yield "inner string"
            consume(gen())
            yield 1.0

        def consume(it):
            list(it)
        """})
    assert run(project) == []

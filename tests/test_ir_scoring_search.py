"""Tests for BM25/TF-IDF scoring and the local search engine."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.scoring import (
    BM25Parameters,
    CollectionStatistics,
    bm25_score,
    bm25_term_weight,
    tf_idf_score,
)
from repro.ir.search import LocalSearchEngine


def _stats(num_documents=100, avgdl=50.0, dfs=None):
    return CollectionStatistics(
        num_documents=num_documents,
        average_document_length=avgdl,
        document_frequencies=dfs if dfs is not None else {})


class TestBM25:
    def test_zero_tf_scores_zero(self):
        assert bm25_term_weight(0, 10, 50, _stats()) == 0.0

    def test_zero_df_scores_zero(self):
        assert bm25_term_weight(3, 0, 50, _stats()) == 0.0

    def test_rarer_term_scores_higher(self):
        stats = _stats()
        rare = bm25_term_weight(2, 2, 50, stats)
        common = bm25_term_weight(2, 60, 50, stats)
        assert rare > common

    def test_idf_never_negative(self):
        # Even a term in every document must not get a negative weight
        # (truncation ranks by this weight).
        stats = _stats(num_documents=10)
        assert bm25_term_weight(3, 10, 50, stats) > 0

    def test_tf_saturation(self):
        stats = _stats()
        deltas = [bm25_term_weight(tf + 1, 5, 50, stats)
                  - bm25_term_weight(tf, 5, 50, stats)
                  for tf in range(1, 6)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))

    def test_length_normalization(self):
        stats = _stats(avgdl=50.0)
        short = bm25_term_weight(2, 5, 25, stats)
        long = bm25_term_weight(2, 5, 100, stats)
        assert short > long

    def test_b_zero_disables_length_normalization(self):
        stats = _stats(avgdl=50.0)
        params = BM25Parameters(b=0.0)
        short = bm25_term_weight(2, 5, 25, stats, params)
        long = bm25_term_weight(2, 5, 100, stats, params)
        assert short == pytest.approx(long)

    def test_query_score_additive(self):
        stats = _stats(dfs={"a": 5, "b": 7})
        tfs = {"a": 2, "b": 1}
        total = bm25_score(["a", "b"], tfs, 50, stats)
        parts = (bm25_term_weight(2, 5, 50, stats)
                 + bm25_term_weight(1, 7, 50, stats))
        assert total == pytest.approx(parts)

    def test_missing_query_term_contributes_zero(self):
        stats = _stats(dfs={"a": 5})
        with_missing = bm25_score(["a", "zzz"], {"a": 2}, 50, stats)
        without = bm25_score(["a"], {"a": 2}, 50, stats)
        assert with_missing == pytest.approx(without)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BM25Parameters(k1=-1)
        with pytest.raises(ValueError):
            BM25Parameters(b=1.5)

    def test_callable_dfs(self):
        stats = CollectionStatistics(100, 50.0, lambda term: 7)
        assert stats.df("anything") == 7


class TestTfIdf:
    def test_zero_length_document(self):
        assert tf_idf_score(["a"], {"a": 1}, 0, _stats()) == 0.0

    def test_rarer_term_scores_higher(self):
        stats = _stats(dfs={"rare": 1, "common": 80})
        rare = tf_idf_score(["rare"], {"rare": 2}, 50, stats)
        common = tf_idf_score(["common"], {"common": 2}, 50, stats)
        assert rare > common


def _engine_with_sample():
    engine = LocalSearchEngine(Analyzer())
    texts = [
        (1, "Peer to peer retrieval", "peer to peer text retrieval "
            "distributes load across nodes in the network"),
        (2, "Posting lists", "posting lists are truncated to their top "
            "ranked elements to bound bandwidth"),
        (3, "Ranking", "the ranking layer computes relevance scores "
            "with the bm25 ranking function"),
        (4, "Peers and ranking", "peer nodes compute ranking scores for "
            "retrieval results"),
    ]
    for doc_id, title, text in texts:
        engine.add_document(Document(doc_id=doc_id, title=title, text=text,
                                     url=f"test://{doc_id}",
                                     owner_peer=7))
    return engine


class TestLocalSearchEngine:
    def test_index_and_count(self):
        engine = _engine_with_sample()
        assert engine.num_documents == 4

    def test_search_returns_relevant_first(self):
        engine = _engine_with_sample()
        results = engine.search("peer retrieval")
        assert results
        assert results[0].doc_id in (1, 4)

    def test_search_k_limits(self):
        engine = _engine_with_sample()
        assert len(engine.search("ranking", k=1)) == 1

    def test_search_no_match(self):
        engine = _engine_with_sample()
        assert engine.search("xylophone") == []

    def test_search_empty_query(self):
        engine = _engine_with_sample()
        assert engine.search("the of and") == []

    def test_result_fields_populated(self):
        engine = _engine_with_sample()
        result = engine.search("bandwidth")[0]
        assert result.doc_id == 2
        assert result.title == "Posting lists"
        assert result.url == "test://2"
        assert result.owner_peer == 7
        assert result.score > 0
        assert "bandwidth" in result.snippet

    def test_remove_document(self):
        engine = _engine_with_sample()
        engine.remove_document(2)
        assert engine.num_documents == 3
        assert engine.search("bandwidth") == []

    def test_top_k_for_key_conjunctive(self):
        engine = _engine_with_sample()
        postings = engine.top_k_for_key(["peer", "rank"], k=10)
        assert postings.doc_ids() == [4]
        assert postings.global_df == 1

    def test_top_k_for_key_truncation(self):
        engine = _engine_with_sample()
        # "rank" matches docs 2 ("ranked"), 3 and 4 ("ranking").
        postings = engine.top_k_for_key(["rank"], k=1)
        assert len(postings) == 1
        assert postings.global_df == 3
        assert postings.truncated

    def test_top_k_for_key_empty(self):
        engine = _engine_with_sample()
        postings = engine.top_k_for_key(["absent"], k=5)
        assert len(postings) == 0
        assert postings.global_df == 0

    def test_top_k_negative_k_rejected(self):
        with pytest.raises(ValueError):
            _engine_with_sample().top_k_for_key(["peer"], k=-1)

    def test_score_document_with_external_stats(self):
        engine = _engine_with_sample()
        inflated = CollectionStatistics(
            num_documents=10_000, average_document_length=10.0,
            document_frequencies={"peer": 3})
        local = engine.score_document(1, ["peer"])
        global_score = engine.score_document(1, ["peer"], stats=inflated)
        assert global_score > local  # much rarer globally -> higher idf

    def test_snippet_window_centers_on_match(self):
        engine = _engine_with_sample()
        document = engine.store.get(3)
        snippet = engine.make_snippet(document, ["bm25"])
        assert "bm25" in snippet

    def test_snippet_highlighting(self):
        engine = _engine_with_sample()
        document = engine.store.get(3)
        snippet = engine.make_snippet(document, ["bm25", "rank"],
                                      highlight=True)
        assert "**bm25**" in snippet
        # Stemmed matching: "ranking" highlights for query term "rank".
        assert "**ranking**" in snippet

    def test_snippet_highlight_off_by_default(self):
        engine = _engine_with_sample()
        document = engine.store.get(3)
        assert "**" not in engine.make_snippet(document, ["bm25"])

    def test_snippet_empty_document(self):
        engine = LocalSearchEngine(Analyzer())
        empty = Document(doc_id=99, title="empty", text="")
        assert engine.make_snippet(empty, ["x"]) == ""

    def test_local_statistics(self):
        engine = _engine_with_sample()
        stats = engine.local_statistics()
        assert stats.num_documents == 4
        assert stats.df("peer") == 2


def _engine_with_random_corpus(num_docs=60, seed=7, bm25=None):
    import random
    rng = random.Random(seed)
    vocabulary = [f"term{i}" for i in range(30)]
    engine = (LocalSearchEngine(Analyzer()) if bm25 is None
              else LocalSearchEngine(Analyzer(), bm25=bm25))
    for doc_id in range(1, num_docs + 1):
        words = rng.choices(vocabulary, k=rng.randint(3, 40))
        engine.add_document(Document(
            doc_id=doc_id * 3, title=f"doc {doc_id}",
            text=" ".join(words), url=f"test://{doc_id}", owner_peer=1))
    return engine


class TestVectorizedScoring:
    """The packed/numpy scoring path must be bitwise-identical to the
    scalar reference implementation — it is an acceleration, not a fork."""

    def _assert_bulk_matches_scalar(self, engine, terms, stats=None):
        doc_ids = sorted(engine.index.document_ids())
        bulk = engine.score_documents(doc_ids, terms, stats=stats)
        resolved = stats if stats is not None else engine.local_statistics()
        scalar = [engine.score_document(doc_id, terms, stats=resolved)
                  for doc_id in doc_ids]
        assert bulk == scalar  # exact, not approx: bitwise equality

    def test_bulk_matches_scalar_bitwise(self):
        engine = _engine_with_random_corpus()
        for terms in (["term0"], ["term1", "term2"],
                      ["term3", "term3", "term4"],  # duplicate query term
                      ["term5", "absent"], ["absent"]):
            analyzed = [engine.analyzer.analyze(t)[0] if t != "absent"
                        else "absent" for t in terms]
            self._assert_bulk_matches_scalar(engine, analyzed)

    def test_bulk_matches_scalar_parameter_corners(self):
        # k1 == 0 divides 0/0 in a naive vectorization; b in {0, 1}
        # exercises both ends of length normalization.
        for params in (BM25Parameters(k1=0.0), BM25Parameters(b=0.0),
                       BM25Parameters(b=1.0),
                       BM25Parameters(k1=2.5, b=0.4)):
            engine = _engine_with_random_corpus(bm25=params)
            self._assert_bulk_matches_scalar(engine, ["term0", "term1"])

    def test_bulk_matches_scalar_external_stats(self):
        engine = _engine_with_random_corpus()
        inflated = CollectionStatistics(
            num_documents=100_000, average_document_length=12.5,
            document_frequencies={"term0": 17, "term1": 40_000})
        self._assert_bulk_matches_scalar(engine, ["term0", "term1"],
                                         stats=inflated)

    def test_packed_cache_invalidated_on_mutation(self):
        engine = _engine_with_random_corpus(num_docs=20)
        terms = ["term0", "term1"]
        self._assert_bulk_matches_scalar(engine, terms)
        engine.add_document(Document(
            doc_id=999, title="new", text="term0 term0 term1",
            url="test://new", owner_peer=1))
        assert not engine.index._packed  # cache dropped on add
        self._assert_bulk_matches_scalar(engine, terms)
        engine.remove_document(999)
        assert engine.index._packed_lengths is None
        self._assert_bulk_matches_scalar(engine, terms)

    def test_scalar_fallback_without_numpy(self, monkeypatch):
        import repro.ir.search as search_module
        engine = _engine_with_random_corpus(num_docs=25)
        doc_ids = sorted(engine.index.document_ids())
        with_numpy = engine.score_documents(doc_ids, ["term0", "term1"])
        monkeypatch.setattr(search_module, "np", None)
        without = engine.score_documents(doc_ids, ["term0", "term1"])
        assert with_numpy == without

    def test_pure_python_env_gate(self):
        import subprocess
        import sys
        code = ("import repro.util.npcompat as c; "
                "assert c.np is None and not c.HAVE_NUMPY")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "REPRO_PURE_PYTHON": "1"},
            cwd="/root/repo", capture_output=True, text=True)
        assert result.returncode == 0, result.stderr

    def test_refine_handler_bulk_matches_per_document(self):
        # The REFINE_QUERY handler bulk-scores; its reply must match
        # scoring each present document individually.
        from repro.core.config import AlvisConfig
        from repro.core.peer import AlvisPeer
        from repro.core import protocol
        from repro.net.message import Message
        peer = AlvisPeer(1, AlvisConfig())
        engine = _engine_with_random_corpus(num_docs=15)
        peer.engine = engine
        doc_ids = sorted(engine.index.document_ids()) + [424242]
        message = Message(src=2, dst=1, kind=protocol.REFINE_QUERY,
                          payload={"terms": ["term0", "term1"],
                                   "doc_ids": doc_ids})
        reply = peer.on_message(message)
        scores = reply.payload["scores"]
        assert 424242 not in scores
        stats = engine.local_statistics()
        for doc_id in engine.index.document_ids():
            assert scores[doc_id] == engine.score_document(
                doc_id, ["term0", "term1"], stats=stats)

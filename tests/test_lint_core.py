"""The lint pipeline itself: suppressions, baseline, runner, CLI."""

from __future__ import annotations

import json

from repro.lint import (CODES, compare_with_baseline, load_baseline,
                        write_baseline)
from repro.lint.checkers import CHECKERS
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding, fingerprint, format_findings
from repro.lint.runner import run_checks
from repro.lint.suppress import parse_suppressions

WALL_CLOCK = """\
import time

def stamp():
    return time.time()
"""


def findings_of(project):
    return run_checks(project)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_inline_suppression_with_reason(lint_project):
    project = lint_project({"sim/x.py": """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=RPL010 (test clock)
        """})
    assert findings_of(project) == []


def test_standalone_suppression_targets_next_line(lint_project):
    project = lint_project({"sim/x.py": """\
        import time

        def stamp():
            # repro-lint: disable=RPL010 (test clock)
            return time.time()
        """})
    assert findings_of(project) == []


def test_suppression_without_reason_is_rpl000(lint_project):
    project = lint_project({"sim/x.py": """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=RPL010
        """})
    (finding,) = findings_of(project)
    assert finding.code == "RPL000"
    assert finding.symbol == "RPL010"


def test_unused_suppression_is_rpl009(lint_project):
    project = lint_project({"sim/x.py": """\
        def stamp():
            return 42  # repro-lint: disable=RPL010 (nothing here)
        """})
    (finding,) = findings_of(project)
    assert finding.code == "RPL009"


def test_suppression_of_wrong_code_does_not_hide(lint_project):
    project = lint_project({"sim/x.py": """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=RPL011 (wrong code)
        """})
    codes = sorted(f.code for f in findings_of(project))
    assert codes == ["RPL009", "RPL010"]


def test_multi_code_suppression(lint_project):
    project = lint_project({"sim/x.py": """\
        import random
        import time

        def stamp():
            # repro-lint: disable=RPL010,RPL011 (both at once)
            return time.time() + random.random()
        """})
    assert findings_of(project) == []


def test_docstring_directive_is_not_a_suppression():
    suppressions = parse_suppressions(
        '"""Docs show: # repro-lint: disable=RPL010 (like so)"""\n'
        "x = 1  # repro-lint: disable=RPL011 (real one)\n")
    assert len(suppressions) == 1
    assert suppressions[0].codes == ("RPL011",)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def make_finding(path="src/repro/sim/x.py", line=4, code="RPL010",
                 symbol="time.time"):
    return Finding(path=path, line=line, col=0, code=code,
                   symbol=symbol, message="m")


def test_baseline_round_trip(tmp_path):
    findings = [make_finding(), make_finding(line=9),
                make_finding(code="RPL011", symbol="random.random")]
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline[("src/repro/sim/x.py", "RPL010", "time.time")] == 2
    new, stale = compare_with_baseline(findings, baseline)
    assert new == [] and stale == []


def test_baseline_survives_line_moves(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding(line=4)])
    moved = [make_finding(line=400)]
    new, stale = compare_with_baseline(moved, load_baseline(path))
    assert new == [] and stale == []


def test_new_finding_is_reported(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding()])
    extra = make_finding(symbol="time.monotonic")
    new, stale = compare_with_baseline(
        [make_finding(), extra], load_baseline(path))
    assert new == [extra] and stale == []


def test_fixed_finding_is_stale(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding()])
    new, stale = compare_with_baseline([], load_baseline(path))
    assert new == []
    assert stale == [fingerprint(make_finding())]


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------

def test_text_format():
    text = format_findings([make_finding()])
    assert text == "src/repro/sim/x.py:4:0: RPL010 m"


def test_json_format_round_trips():
    payload = json.loads(format_findings([make_finding()], "json"))
    assert payload == [{"path": "src/repro/sim/x.py", "line": 4,
                        "col": 0, "code": "RPL010",
                        "symbol": "time.time", "message": "m"}]


# ----------------------------------------------------------------------
# Registry coherence
# ----------------------------------------------------------------------

def test_all_checkers_registered():
    assert {module.NAME for module in CHECKERS} == {
        "determinism", "proc-purity", "wire-schema", "hot-path",
        "layering", "config-discipline"}


def test_every_code_has_a_registered_checker():
    checker_names = {module.NAME for module in CHECKERS} | \
        {"suppressions"}
    for code, entry in CODES.items():
        assert entry.checker in checker_names, code


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _write_tree(tmp_path, source=WALL_CLOCK):
    target = tmp_path / "src" / "repro" / "sim" / "x.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def test_cli_reports_findings_and_exits_1(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src"]) == 1
    out = capsys.readouterr().out
    assert "RPL010" in out and "sim/x.py:4" in out


def test_cli_clean_tree_exits_0(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path, "VALUE = 1\n")
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "RPL010"


def test_cli_baseline_cycle(tmp_path, monkeypatch, capsys):
    _write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    # Grandfather the finding, then the same tree is clean...
    assert lint_main(["src", "--update-baseline"]) == 0
    assert lint_main(["src"]) == 0
    # ...and fixing it makes the baseline entry stale (exit 1).
    _write_tree(tmp_path, "VALUE = 1\n")
    assert lint_main(["src"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_missing_path_exits_2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert lint_main(["definitely-missing"]) == 2


def test_cli_list_codes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert lint_main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in CODES:
        assert code in out


def test_repro_cli_has_lint_subcommand(tmp_path, monkeypatch, capsys):
    from repro.cli import main as repro_main
    _write_tree(tmp_path, "VALUE = 1\n")
    monkeypatch.chdir(tmp_path)
    assert repro_main(["lint", "src"]) == 0

"""Tests for the message / wire-size model."""

import pytest

from repro.ir.postings import Posting, PostingList
from repro.net.message import HEADER_BYTES, Message, encoded_size


class TestEncodedSize:
    def test_primitives(self):
        assert encoded_size(None) == 1
        assert encoded_size(True) == 1
        assert encoded_size(7) == 8
        assert encoded_size(3.14) == 8

    def test_strings(self):
        assert encoded_size("") == 2
        assert encoded_size("abc") == 5
        assert encoded_size(b"abc") == 5

    def test_unicode_measured_in_utf8(self):
        assert encoded_size("é") == 2 + 2

    def test_containers(self):
        assert encoded_size([]) == 4
        assert encoded_size([1, 2]) == 4 + 16
        assert encoded_size((1,)) == 4 + 8
        assert encoded_size({1, 2}) == 4 + 16

    def test_mapping(self):
        assert encoded_size({"a": 1}) == 4 + (2 + 1) + 8

    def test_nested(self):
        payload = {"items": [{"x": 1}, {"x": 2}]}
        expected = 4 + (2 + 5) + (4 + 2 * (4 + 3 + 8))
        assert encoded_size(payload) == expected

    def test_wire_size_protocol_respected(self):
        postings = PostingList([Posting(1, 1.0), Posting(2, 0.5)])
        assert encoded_size(postings) == postings.wire_size()

    def test_unknown_type_rejected(self):
        class Opaque:
            pass
        with pytest.raises(TypeError):
            encoded_size(Opaque())


class TestMessage:
    def test_size_includes_header(self):
        message = Message(src=1, dst=2, kind="Ping", payload={})
        assert message.size_bytes() == HEADER_BYTES + 4

    def test_size_cached(self):
        message = Message(src=1, dst=2, kind="Ping", payload={"n": 1})
        assert message.size_bytes() == message.size_bytes()

    def test_larger_payload_larger_message(self):
        small = Message(src=1, dst=2, kind="X", payload={"v": [1]})
        large = Message(src=1, dst=2, kind="X",
                        payload={"v": list(range(100))})
        assert large.size_bytes() > small.size_bytes()

    def test_message_ids_unique(self):
        first = Message(src=1, dst=2, kind="A")
        second = Message(src=1, dst=2, kind="A")
        assert first.message_id != second.message_id

    def test_reply_routing(self):
        request = Message(src=1, dst=2, kind="Req", payload={})
        reply = request.reply("Rep", {"ok": True})
        assert reply.src == 2
        assert reply.dst == 1
        assert reply.reply_to == request.message_id
        assert reply.kind == "Rep"

    def test_posting_list_payload_size_bounded(self):
        # A truncated posting list's wire size must not depend on its
        # (large) global df — the paper's central bounded-transfer claim.
        entries = [Posting(index, 1.0 / (index + 1)) for index in range(20)]
        small_df = PostingList(entries, global_df=20)
        huge_df = PostingList(entries, global_df=10_000_000)
        assert small_df.wire_size() == huge_df.wire_size()

"""Property-based tests (hypothesis) on the core data structures and
invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.keys import Key
from repro.core.lattice import LatticeExplorer, ProbeStatus
from repro.core.ranking import merge_and_rank
from repro.dht.hashing import hash_terms
from repro.dht.idspace import ID_SPACE, clockwise_distance, in_interval
from repro.dht.ring import DHTRing
from repro.dht.routing import HopSpaceFingers, NaiveFingers
from repro.ir.postings import Posting, PostingList
from repro.util.stats import gini_coefficient, percentile
from repro.util.zipf import zipf_weights

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=ID_SPACE - 1)
terms = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
term_lists = st.lists(terms, min_size=1, max_size=5)
postings = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),
    max_size=30)


# ---------------------------------------------------------------------------
# Identifier space
# ---------------------------------------------------------------------------

@given(ids, ids)
def test_clockwise_distance_in_range(a, b):
    assert 0 <= clockwise_distance(a, b) < ID_SPACE


@given(ids, ids)
def test_clockwise_distance_antisymmetry(a, b):
    forward = clockwise_distance(a, b)
    backward = clockwise_distance(b, a)
    if a == b:
        assert forward == backward == 0
    else:
        assert forward + backward == ID_SPACE


@given(ids, ids, ids)
def test_interval_membership_consistent_with_distance(value, left, right):
    inside = in_interval(value, left, right)
    if inside and left != right:
        assert clockwise_distance(left, value) <= \
            clockwise_distance(left, right)


@given(term_lists)
def test_hash_terms_permutation_invariant(term_list):
    rng = random.Random(0)
    shuffled = list(term_list)
    rng.shuffle(shuffled)
    assert hash_terms(term_list) == hash_terms(shuffled)


# ---------------------------------------------------------------------------
# Posting lists
# ---------------------------------------------------------------------------

@given(postings)
def test_posting_list_sorted_and_unique(pairs):
    plist = PostingList([Posting(doc_id, score)
                         for doc_id, score in pairs])
    scores = [posting.score for posting in plist]
    assert scores == sorted(scores, reverse=True)
    doc_ids = plist.doc_ids()
    assert len(doc_ids) == len(set(doc_ids))


@given(postings, st.integers(min_value=0, max_value=10))
def test_truncate_preserves_prefix_and_df(pairs, k):
    plist = PostingList([Posting(doc_id, score)
                         for doc_id, score in pairs])
    truncated = plist.truncate(k)
    assert truncated.doc_ids() == plist.doc_ids()[:k]
    assert truncated.global_df == plist.global_df
    assert truncated.wire_size() <= plist.wire_size()


@given(postings, postings)
def test_merge_commutative_on_doc_sets(pairs_a, pairs_b):
    a = PostingList([Posting(d, s) for d, s in pairs_a])
    b = PostingList([Posting(d, s) for d, s in pairs_b])
    ab = a.merge(b)
    ba = b.merge(a)
    assert set(ab.doc_ids()) == set(ba.doc_ids())
    assert {p.doc_id: p.score for p in ab} == \
        {p.doc_id: p.score for p in ba}


@given(postings, postings)
def test_merge_takes_max_scores(pairs_a, pairs_b):
    a = PostingList([Posting(d, s) for d, s in pairs_a])
    b = PostingList([Posting(d, s) for d, s in pairs_b])
    merged = {p.doc_id: p.score for p in a.merge(b)}
    for plist in (a, b):
        for posting in plist:
            assert merged[posting.doc_id] >= posting.score


# ---------------------------------------------------------------------------
# Keys and the lattice
# ---------------------------------------------------------------------------

@given(term_lists)
def test_key_canonical_form(term_list):
    key = Key(term_list)
    assert key.terms == tuple(sorted(set(term_list)))
    assert Key(reversed(term_list)) == key


@given(term_lists)
def test_key_dominates_all_proper_subsets(term_list):
    key = Key(term_list)
    for subset in key.proper_subsets():
        assert key.dominates(subset)
        assert not subset.dominates(key)


@given(st.lists(terms, min_size=1, max_size=4, unique=True))
def test_lattice_levels_complete(term_list):
    key = Key(term_list)
    levels = Key.lattice_levels(key.terms)
    total = sum(len(level) for level in levels)
    assert total == 2 ** len(key) - 1
    flattened = [k for level in levels for k in level]
    assert len(set(flattened)) == total  # no duplicates


@given(st.lists(terms, min_size=1, max_size=4, unique=True),
       st.data())
@settings(max_examples=50)
def test_exploration_visits_every_node_exactly_once(term_list, data):
    """Whatever the index contents, every lattice node is either probed
    or skipped, exactly once, and skipped nodes are dominated by some
    found node."""
    key = Key(term_list)
    all_nodes = [k for level in Key.lattice_levels(key.terms)
                 for k in level]
    # Random index: each node independently missing/truncated/complete.
    index = {}
    for node in all_nodes:
        choice = data.draw(st.sampled_from(["missing", "truncated",
                                            "complete"]))
        if choice == "truncated":
            index[node] = PostingList([Posting(1, 1.0)], global_df=10)
        elif choice == "complete":
            index[node] = PostingList([Posting(1, 1.0)])

    def probe(k):
        plist = index.get(k)
        return (plist is not None), plist

    outcome = LatticeExplorer(prune_on_truncated=True).explore(
        key.terms, probe)
    visited = [record.key for record in outcome.records]
    assert sorted(visited, key=lambda k: k.terms) == \
        sorted(all_nodes, key=lambda k: k.terms)
    assert len(visited) == len(set(visited))
    found = [record.key for record in outcome.records
             if record.status in (ProbeStatus.UNTRUNCATED,
                                  ProbeStatus.TRUNCATED)]
    for record in outcome.records:
        if record.status == ProbeStatus.SKIPPED:
            assert any(f.dominates(record.key) for f in found)


@given(st.lists(terms, min_size=1, max_size=4, unique=True))
def test_ranking_never_exceeds_query_terms(term_list):
    key = Key(term_list)
    retrieved = {Key([t]): PostingList([Posting(1, 1.0)])
                 for t in key.terms}
    ranked = merge_and_rank(retrieved, key, k=5)
    assert len(ranked) == 1
    assert ranked[0].terms_covered <= key.term_set


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

@given(st.sets(ids, min_size=1, max_size=40), ids, st.data())
@settings(max_examples=50, deadline=None)
def test_lookup_always_finds_successor(node_ids, key, data):
    strategy = data.draw(st.sampled_from([NaiveFingers(),
                                          HopSpaceFingers()]))
    ring = DHTRing(strategy)
    for node_id in node_ids:
        ring.add_node(node_id)
    ring.rebuild_tables()
    source = data.draw(st.sampled_from(sorted(node_ids)))
    result = ring.lookup(source, key)
    assert result.owner == ring.successor_of(key)
    assert result.hops < 2 * 64 + len(node_ids)


# ---------------------------------------------------------------------------
# Statistics utilities
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_gini_bounds(values):
    assert 0 <= gini_coefficient(values) <= 1


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    spread = max(values) - min(values)
    tolerance = 1e-9 * max(1.0, spread)  # interpolation rounding
    assert min(values) - tolerance <= result <= max(values) + tolerance


@given(st.integers(min_value=1, max_value=500),
       st.floats(min_value=0, max_value=3, allow_nan=False))
def test_zipf_weights_normalized_and_monotone(n, exponent):
    weights = zipf_weights(n, exponent)
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))

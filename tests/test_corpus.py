"""Tests for the synthetic corpus, loader and query workloads."""

import os

import pytest

from repro.corpus.loader import load_directory, sample_documents
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import (
    SyntheticCorpus,
    SyntheticCorpusConfig,
    word_for_rank,
)
from repro.ir.analysis import Analyzer
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler


class TestWordForRank:
    def test_injective_over_large_range(self):
        words = {word_for_rank(rank) for rank in range(20000)}
        assert len(words) == 20000

    def test_deterministic(self):
        assert word_for_rank(123) == word_for_rank(123)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            word_for_rank(-1)

    def test_words_are_alphabetic(self):
        for rank in (0, 1, 99, 5000):
            assert word_for_rank(rank).isalpha()


class TestSyntheticCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=150, vocabulary_size=1000, num_topics=5,
            seed=11))

    def test_deterministic_documents(self, corpus):
        again = SyntheticCorpus(corpus.config)
        assert corpus.document_terms(7) == again.document_terms(7)

    def test_order_independence(self, corpus):
        # Generating doc 10 then 5 equals generating 5 then 10.
        a = corpus.document_terms(10)
        fresh = SyntheticCorpus(corpus.config)
        fresh.document_terms(5)
        assert fresh.document_terms(10) == a

    def test_document_count(self, corpus):
        assert len(corpus.documents()) == 150

    def test_document_fields(self, corpus):
        document = corpus.document(3)
        assert document.doc_id == 3
        assert document.text
        assert document.title
        assert document.url.startswith("synthetic://")

    def test_out_of_range_rejected(self, corpus):
        with pytest.raises(IndexError):
            corpus.document_terms(150)

    def test_lengths_vary(self, corpus):
        lengths = {len(corpus.document_terms(index))
                   for index in range(30)}
        assert len(lengths) > 5

    def test_unigram_distribution_is_zipfian(self, corpus):
        counts = {}
        for index in range(100):
            for token in corpus.document_terms(index):
                counts[token] = counts.get(token, 0) + 1
        fitted = ZipfSampler.fit_exponent(list(counts.values()))
        assert 0.4 < fitted < 1.6

    def test_topics_induce_cooccurrence(self, corpus):
        # Two top terms of the same topic should co-occur in documents of
        # that topic far more often than chance.
        topic = 0
        top = corpus.topic_terms(topic, 2)
        docs_with_both = 0
        topic_docs = 0
        for index in range(150):
            if corpus.topic_of(index) != topic:
                continue
            topic_docs += 1
            terms = set(corpus.document_terms(index))
            if top[0] in terms and top[1] in terms:
                docs_with_both += 1
        assert topic_docs > 0
        assert docs_with_both / topic_docs > 0.3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(num_documents=0)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(vocabulary_size=1)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(topic_mix=1.5)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(vocabulary_size=100,
                                  topic_vocabulary_size=200)


class TestLoader:
    def test_sample_documents(self):
        docs = sample_documents()
        assert len(docs) == 12
        assert all(doc.text for doc in docs)
        assert len({doc.doc_id for doc in docs}) == 12

    def test_sample_documents_offset(self):
        docs = sample_documents(start_doc_id=100, owner_peer=9)
        assert docs[0].doc_id == 100
        assert docs[0].owner_peer == 9

    def test_load_directory(self, tmp_path):
        (tmp_path / "a.txt").write_text("alpha document body")
        (tmp_path / "b.md").write_text("beta document body")
        (tmp_path / "ignored.bin").write_text("binary")
        docs = load_directory(str(tmp_path), start_doc_id=5,
                              base_url="http://peer:8080/shared")
        assert [doc.title for doc in docs] == ["a.txt", "b.md"]
        assert docs[0].doc_id == 5
        assert docs[1].doc_id == 6
        assert docs[0].url == "http://peer:8080/shared/a.txt"
        assert "alpha" in docs[0].text

    def test_load_directory_missing(self):
        with pytest.raises(NotADirectoryError):
            load_directory("/nonexistent/path/xyz")


class TestQueryWorkload:
    @pytest.fixture(scope="class")
    def corpus(self):
        return SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=100, vocabulary_size=600, seed=13))

    @pytest.fixture(scope="class")
    def workload(self, corpus):
        return QueryWorkload.from_corpus(
            corpus, QueryWorkloadConfig(pool_size=50, seed=17))

    def test_pool_size(self, workload):
        assert len(workload.pool) == 50

    def test_queries_are_answerable(self, corpus, workload):
        # Every query's terms must co-occur in at least one document.
        analyzer = Analyzer()
        doc_term_sets = [set(analyzer.analyze(
            " ".join(corpus.document_terms(index))))
            for index in range(100)]
        for query in workload.pool[:20]:
            assert any(set(query) <= terms for terms in doc_term_sets)

    def test_query_sizes_respect_config(self, workload):
        for query in workload.pool:
            assert 2 <= len(query) <= 3

    def test_sampling_is_skewed(self, workload):
        rng = make_rng(1, "sample")
        counts = {}
        for _ in range(3000):
            query = workload.sample(rng)
            counts[query] = counts.get(query, 0) + 1
        most_common = max(counts.values())
        assert most_common > 3000 / 50 * 3  # >3x uniform share

    def test_drift_shifts_popularity(self, workload):
        top_before = workload.most_popular(1, drift=0)[0]
        top_after = workload.most_popular(1, drift=10)[0]
        assert top_before != top_after

    def test_stream_length(self, workload):
        rng = make_rng(2, "stream")
        queries = list(workload.stream(rng, 25))
        assert len(queries) == 25

    def test_stream_deterministic(self, workload):
        first = list(workload.stream(make_rng(3, "s"), 10))
        second = list(workload.stream(make_rng(3, "s"), 10))
        assert first == second

    def test_from_documents(self):
        docs = sample_documents()
        workload = QueryWorkload.from_documents(
            docs, QueryWorkloadConfig(pool_size=10, seed=19))
        assert len(workload.pool) == 10

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload([], QueryWorkloadConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QueryWorkloadConfig(pool_size=0)
        with pytest.raises(ValueError):
            QueryWorkloadConfig(min_terms=3, max_terms=2)

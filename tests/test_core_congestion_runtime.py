"""Tests for congestion-aware dispatch (AIMD flow control, E15 path).

The load-bearing properties:

* ``congestion_control=False`` (the default) leaves the async runtime's
  traffic byte-identical to the unthrottled PR-2 path — the controller
  is strictly opt-in;
* with the transport's bounded service queues saturated, the AIMD
  window backs off, retransmits overflow drops, and every query still
  completes with the same top-k the uncontrolled run produces;
* the congestion state is observable: trace retransmission counts,
  dispatcher backlog/window, service-queue drops in the monitor.
"""

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus import sample_documents
from repro.eval.monitor import NetworkMonitor

QUERIES = ["scalable peer retrieval",
           "posting list truncation",
           "congestion control"]

#: A service model tight enough that a burst of concurrent queries from
#: one origin overflows the hot owners' queues.
TIGHT_SERVICE = dict(service_rate=25.0, queue_capacity=2,
                     service_reject_cost=0.5)


def build_network(**overrides):
    config = AlvisConfig(batch_lookups=True, async_queries=True,
                         **overrides)
    network = AlvisNetwork(num_peers=8, config=config, seed=42)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network


def doc_ids(results):
    return [document.doc_id for document in results]


def run_burst(network, copies=8, rate=400.0):
    """A same-origin burst of concurrent queries (the congestion case)."""
    origin = network.peer_ids()[0]
    workload = (QUERIES * copies)[: 3 * copies]
    return network.run_queries(workload, origins=[origin],
                               arrival_rate=rate)


# ----------------------------------------------------------------------
# Off by default: byte-identical to the unthrottled async path
# ----------------------------------------------------------------------

class TestOffByDefault:
    def test_defaults_leave_controller_off(self):
        config = AlvisConfig()
        assert not config.congestion_control
        assert config.service_rate == 0.0
        network = build_network()
        assert not network.transport.service_model_active
        assert network.runtime.dispatcher(
            network.peer_ids()[0]).cwnd is None

    def test_single_query_byte_identical_without_congestion_control(self):
        baseline = build_network()
        explicit = build_network(congestion_control=False)
        origin = baseline.peer_ids()[0]
        for query in QUERIES:
            base_results, base_trace = baseline.query(origin, query)
            off_results, off_trace = explicit.query(origin, query)
            assert doc_ids(base_results) == doc_ids(off_results)
            assert base_trace.bytes_sent == off_trace.bytes_sent
            assert base_trace.bytes_by_kind == off_trace.bytes_by_kind
            assert off_trace.retransmissions == 0

    def test_controller_without_congestion_changes_nothing_but_timing(self):
        # An uncongested network: the window never fills, so the gated
        # path issues exactly the unthrottled traffic.
        baseline = build_network()
        gated = build_network(congestion_control=True)
        origin = baseline.peer_ids()[0]
        for query in QUERIES:
            base_results, base_trace = baseline.query(origin, query)
            gated_results, gated_trace = gated.query(origin, query)
            assert doc_ids(base_results) == doc_ids(gated_results)
            assert base_trace.bytes_sent == gated_trace.bytes_sent
            assert base_trace.bytes_by_kind == gated_trace.bytes_by_kind
            assert base_trace.probes == gated_trace.probes
            assert gated_trace.retransmissions == 0

    def test_open_workload_traffic_identical_without_controller(self):
        # The full PR-2 path (dispatch batching + pipelining) is
        # untouched when the congestion knobs stay off.
        baseline = build_network(dispatch_window=0.03,
                                 pipeline_levels=True)
        explicit = build_network(dispatch_window=0.03,
                                 pipeline_levels=True,
                                 congestion_control=False)
        jobs_base = run_burst(baseline)
        jobs_off = run_burst(explicit)
        assert [doc_ids(job.results) for job in jobs_base] == \
            [doc_ids(job.results) for job in jobs_off]
        assert baseline.bytes_sent_total() == explicit.bytes_sent_total()
        assert baseline.messages_sent_total() == \
            explicit.messages_sent_total()


# ----------------------------------------------------------------------
# Under saturation: backoff, retransmission, identical results
# ----------------------------------------------------------------------

class TestSaturatedDispatch:
    def test_overflow_drops_are_retried_to_completion(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        jobs = run_burst(network)
        assert all(job.done for job in jobs)
        # The tight service model really overflowed...
        assert network.transport.queue_drops_total() > 0
        # ...and every drop was either retried or absorbed: no query
        # lost a probe.
        assert all(job.trace.dropped_count == 0 for job in jobs)
        assert network.runtime.retransmissions() > 0

    def test_window_reacts_to_congestion(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        run_burst(network)
        dispatcher = network.runtime.dispatcher(network.peer_ids()[0])
        assert dispatcher.cwnd is not None
        assert dispatcher.cwnd.drops > 0
        assert dispatcher.cwnd.decreases > 0
        # Decrease is per congestion event, never per drop.
        assert dispatcher.cwnd.decreases <= dispatcher.cwnd.drops
        assert len(dispatcher.cwnd.trajectory) > 0

    def test_window_guard_seeded_before_first_ack(self):
        # Regression: without an RTT seed the once-per-RTT decrease
        # guard is vacuous (srtt=0) and a startup overflow burst —
        # drops before the first ack — halves the window once per drop.
        network = build_network(congestion_control=True)
        dispatcher = network.runtime.dispatcher(network.peer_ids()[0])
        assert dispatcher.cwnd.srtt == pytest.approx(
            network.config.congestion_retransmit_timeout)

    def test_results_match_uncontrolled_run(self):
        controlled = build_network(congestion_control=True,
                                   **TIGHT_SERVICE)
        uncontrolled = build_network(congestion_control=False,
                                     **TIGHT_SERVICE)
        jobs_aimd = run_burst(controlled)
        jobs_open = run_burst(uncontrolled)
        assert [doc_ids(job.results) for job in jobs_aimd] == \
            [doc_ids(job.results) for job in jobs_open]

    def test_retransmissions_surface_in_traces(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        jobs = run_burst(network)
        total = sum(job.trace.retransmissions for job in jobs)
        assert total > 0
        summary = jobs[0].trace.summary()
        assert "retransmissions" in summary

    def test_retransmission_budget_exhaustion_drops_probes(self):
        network = build_network(congestion_control=True,
                                congestion_max_retransmits=0,
                                **TIGHT_SERVICE)
        jobs = run_burst(network)
        assert all(job.done for job in jobs)
        # With no retries allowed, overflow drops become dropped probes.
        assert sum(job.trace.dropped_count for job in jobs) > 0

    def test_blind_retransmission_without_controller(self):
        network = build_network(congestion_control=False,
                                **TIGHT_SERVICE)
        jobs = run_burst(network)
        assert all(job.done for job in jobs)
        assert network.transport.queue_drops_total() > 0
        assert network.runtime.retransmissions() > 0
        assert all(job.trace.dropped_count == 0 for job in jobs)


# ----------------------------------------------------------------------
# Size-triggered dispatch flush
# ----------------------------------------------------------------------

class TestSizeTriggeredFlush:
    def test_window_worth_of_work_flushes_early(self):
        network = build_network(congestion_control=True,
                                dispatch_window=0.5,
                                congestion_initial_window=1.0)
        jobs = run_burst(network, copies=4)
        assert all(job.done for job in jobs)
        dispatcher = network.runtime.dispatcher(network.peer_ids()[0])
        assert dispatcher.early_flushes > 0

    def test_no_early_flush_without_controller(self):
        network = build_network(dispatch_window=0.05)
        run_burst(network, copies=4)
        dispatcher = network.runtime.dispatcher(network.peer_ids()[0])
        assert dispatcher.early_flushes == 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

class TestMonitoring:
    def test_congestion_counters_in_snapshot(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        run_burst(network)
        snapshot = NetworkMonitor(network).snapshot()
        assert snapshot.congestion_queue_drops > 0
        assert snapshot.congestion_retransmissions > 0
        assert snapshot.congestion_window_mean > 0.0
        assert snapshot.congestion_window_decreases > 0
        assert snapshot.congestion_backlog == 0     # all drained
        flat = snapshot.as_dict()
        assert flat["congestion_queue_drops"] == \
            snapshot.congestion_queue_drops
        assert flat["congestion_window_mean"] == \
            snapshot.congestion_window_mean

    def test_dashboard_renders_congestion_line(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        run_burst(network)
        monitor = NetworkMonitor(network)
        rendered = monitor.render(monitor.snapshot())
        assert "congestion:" in rendered
        assert "cwnd" in rendered

    def test_quiet_without_congestion(self):
        network = build_network()
        network.query(network.peer_ids()[0], QUERIES[0])
        snapshot = NetworkMonitor(network).snapshot()
        assert snapshot.congestion_queue_drops == 0
        assert snapshot.congestion_retransmissions == 0
        assert "congestion:" not in NetworkMonitor(network).render(
            snapshot)

    def test_runtime_congestion_summary_shape(self):
        network = build_network(congestion_control=True, **TIGHT_SERVICE)
        run_burst(network)
        summary = network.runtime.congestion_summary()
        for field in ("retransmissions", "backlog", "early_flushes",
                      "window_mean", "window_min", "window_decreases"):
            assert field in summary
        assert summary["window_min"] <= summary["window_mean"]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------

class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        dict(congestion_initial_window=0.5),
        dict(congestion_initial_window=8.0, congestion_max_window=4.0),
        dict(congestion_max_retransmits=-1),
        dict(congestion_retransmit_timeout=0.0),
        dict(service_rate=-1.0),
        dict(queue_capacity=0),
        dict(service_reject_cost=-0.5),
    ])
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            AlvisConfig(**overrides)

"""Tests for global statistics, access control and configuration."""

import pytest

from repro.core.access import AccessControlError, AccessManager, AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.global_stats import (
    CollectionTotals,
    GlobalStatsCache,
    StatsStore,
)


class TestStatsStore:
    def test_df_aggregation(self):
        store = StatsStore()
        store.fold_dfs({"a": 2, "b": 1})
        store.fold_dfs({"a": 3})
        assert store.df("a") == 5
        assert store.df("b") == 1
        assert store.df("missing") == 0

    def test_dfs_batch(self):
        store = StatsStore()
        store.fold_dfs({"a": 2})
        assert store.dfs(["a", "b"]) == {"a": 2, "b": 0}

    def test_negative_deltas_floor_at_zero(self):
        store = StatsStore()
        store.fold_dfs({"a": 2})
        store.fold_dfs({"a": -1})
        assert store.df("a") == 1
        store.fold_dfs({"a": -5})  # out-of-order deltas cannot go below 0
        assert store.df("a") == 0

    def test_collection_idempotent_per_peer(self):
        store = StatsStore()
        store.fold_collection(1, 10, 500)
        store.fold_collection(2, 20, 900)
        store.fold_collection(1, 12, 600)  # peer 1 re-reports
        totals = store.collection_totals()
        assert totals.num_documents == 32
        assert totals.total_terms == 1500
        assert totals.num_peers == 2

    def test_terms_stored(self):
        store = StatsStore()
        store.fold_dfs({"a": 1, "b": 1})
        assert store.terms_stored() == 2


class TestCollectionTotals:
    def test_average_length(self):
        totals = CollectionTotals(num_documents=10, total_terms=500)
        assert totals.average_document_length == 50.0

    def test_empty_average(self):
        assert CollectionTotals().average_document_length == 0.0

    def test_fold_validation(self):
        with pytest.raises(ValueError):
            CollectionTotals().fold(-1, 5)


class TestGlobalStatsCache:
    def test_df_caching(self):
        cache = GlobalStatsCache()
        cache.store_dfs({"a": 5})
        assert cache.df("a") == 5
        assert cache.df("b") == 0
        assert cache.has_df("a")
        assert not cache.has_df("b")

    def test_missing_terms(self):
        cache = GlobalStatsCache()
        cache.store_dfs({"a": 5})
        assert cache.missing_terms(["a", "b", "c"]) == ["b", "c"]

    def test_statistics_requires_totals(self):
        cache = GlobalStatsCache()
        with pytest.raises(RuntimeError):
            cache.statistics()

    def test_statistics_view(self):
        cache = GlobalStatsCache()
        cache.store_totals(CollectionTotals(num_documents=100,
                                            total_terms=5000,
                                            num_peers=4))
        cache.store_dfs({"x": 9})
        stats = cache.statistics()
        assert stats.num_documents == 100
        assert stats.average_document_length == 50.0
        assert stats.df("x") == 9
        assert stats.df("unknown") == 0


class TestAccessPolicy:
    def test_public_permits_everything(self):
        policy = AccessPolicy.public()
        assert policy.permits(None)
        assert policy.permits(("user", "pass"))

    def test_password_policy(self):
        policy = AccessPolicy.password("alice", "secret")
        assert policy.permits(("alice", "secret"))
        assert not policy.permits(("alice", "wrong"))
        assert not policy.permits(("bob", "secret"))
        assert not policy.permits(None)

    def test_no_plaintext_stored(self):
        policy = AccessPolicy.password("alice", "secret")
        assert "secret" not in (policy.credential_digest or "")

    def test_empty_credentials_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy.password("", "x")
        with pytest.raises(ValueError):
            AccessPolicy.password("x", "")


class TestAccessManager:
    def test_default_is_public(self):
        manager = AccessManager()
        manager.check(1)  # no policy set -> allowed

    def test_protected_document(self):
        manager = AccessManager()
        manager.set_policy(1, AccessPolicy.password("u", "p"))
        with pytest.raises(AccessControlError):
            manager.check(1)
        manager.check(1, ("u", "p"))

    def test_remove_policy_reopens(self):
        manager = AccessManager()
        manager.set_policy(1, AccessPolicy.password("u", "p"))
        manager.remove(1)
        manager.check(1)


class TestAlvisConfig:
    def test_defaults_valid(self):
        AlvisConfig()

    @pytest.mark.parametrize("field,value", [
        ("truncation_k", 0),
        ("df_max", 0),
        ("s_max", 0),
        ("proximity_window", 0),
        ("max_expansions_per_key", 0),
        ("qdi_activation_threshold", 0),
        ("qdi_decay", 0.0),
        ("qdi_decay", 1.5),
        ("qdi_eviction_threshold", -1.0),
        ("qdi_maintenance_interval", 0),
        ("qdi_harvest_fanout", 0),
        ("result_k", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            AlvisConfig(**{field: value})

    def test_frozen(self):
        config = AlvisConfig()
        with pytest.raises(Exception):
            config.truncation_k = 5

    def test_with_overrides(self):
        config = AlvisConfig()
        swept = config.with_overrides(truncation_k=99, df_max=7)
        assert swept.truncation_k == 99
        assert swept.df_max == 7
        assert config.truncation_k == 20  # original untouched

"""Tests for the structured (boolean/phrase) query language."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.inverted_index import InvertedIndex
from repro.ir.query_language import (
    And,
    Not,
    Or,
    Phrase,
    QuerySyntaxError,
    Term,
    evaluate,
    parse_query,
)
from repro.ir.search import LocalSearchEngine


@pytest.fixture(scope="module")
def analyzer():
    return Analyzer()


@pytest.fixture(scope="module")
def index():
    built = InvertedIndex()
    analyzer = Analyzer()
    texts = {
        1: "peer to peer retrieval over structured overlays",
        2: "posting list truncation bounds bandwidth",
        3: "peer ranking uses posting list statistics",
        4: "centralized engines rank with bm25",
        5: "truncation of ranking lists in peer networks",
    }
    for doc_id, text in texts.items():
        built.add_document(doc_id, analyzer.analyze(text))
    return built


class TestParser:
    def test_single_term(self, analyzer):
        node = parse_query("retrieval", analyzer)
        assert node == Term("retriev")

    def test_terms_are_analyzed(self, analyzer):
        assert parse_query("Ranking", analyzer) == Term("rank")

    def test_implicit_and(self, analyzer):
        node = parse_query("peer ranking", analyzer)
        assert isinstance(node, And)
        assert node.children == (Term("peer"), Term("rank"))

    def test_explicit_and_or_precedence(self, analyzer):
        node = parse_query("a1 AND b1 OR c1", analyzer)
        assert isinstance(node, Or)
        assert isinstance(node.children[0], And)

    def test_parentheses_override(self, analyzer):
        node = parse_query("a1 AND (b1 OR c1)", analyzer)
        assert isinstance(node, And)
        assert isinstance(node.children[1], Or)

    def test_not_prefix(self, analyzer):
        node = parse_query("NOT peer", analyzer)
        assert node == Not(Term("peer"))

    def test_nested_not(self, analyzer):
        node = parse_query("NOT NOT peer", analyzer)
        assert node == Not(Not(Term("peer")))

    def test_phrase(self, analyzer):
        node = parse_query('"posting list"', analyzer)
        assert node == Phrase(("post", "list"))

    def test_single_word_phrase_collapses_to_term(self, analyzer):
        assert parse_query('"ranking"', analyzer) == Term("rank")

    def test_hyphenated_token_becomes_phrase(self, analyzer):
        node = parse_query("peer-ranking", analyzer)
        assert node == Phrase(("peer", "rank"))

    @pytest.mark.parametrize("bad", [
        "", "   ", "(", "(peer", "peer)", "AND", "peer AND",
        "NOT", '"the of"', "the",
    ])
    def test_syntax_errors(self, analyzer, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad, analyzer)

    def test_positive_terms_exclude_not(self, analyzer):
        node = parse_query("peer AND NOT ranking", analyzer)
        assert node.positive_terms() == ["peer"]


class TestEvaluation:
    def test_term(self, index, analyzer):
        node = parse_query("peer", analyzer)
        assert evaluate(node, index) == {1, 3, 5}

    def test_and(self, index, analyzer):
        node = parse_query("peer AND truncation", analyzer)
        assert evaluate(node, index) == {5}

    def test_or(self, index, analyzer):
        node = parse_query("bm25 OR bandwidth", analyzer)
        assert evaluate(node, index) == {2, 4}

    def test_not(self, index, analyzer):
        node = parse_query("NOT peer", analyzer)
        assert evaluate(node, index) == {2, 4}

    def test_and_not_combination(self, index, analyzer):
        node = parse_query("posting AND NOT truncation", analyzer)
        assert evaluate(node, index) == {3}

    def test_phrase_requires_adjacency(self, index, analyzer):
        node = parse_query('"posting list"', analyzer)
        assert evaluate(node, index) == {2, 3}
        # 'ranking lists' in doc 5 -> "rank list" adjacent.
        node = parse_query('"ranking lists"', analyzer)
        assert evaluate(node, index) == {5}

    def test_phrase_not_matched_when_separated(self, index, analyzer):
        node = parse_query('"peer statistics"', analyzer)
        assert evaluate(node, index) == set()

    def test_complex_query(self, index, analyzer):
        node = parse_query(
            '("posting list" OR bm25) AND NOT bandwidth', analyzer)
        assert evaluate(node, index) == {3, 4}

    def test_unknown_term_empty(self, index, analyzer):
        node = parse_query("zzzqqq", analyzer)
        assert evaluate(node, index) == set()

    def test_empty_and_short_circuits(self, index, analyzer):
        node = parse_query("zzzqqq AND peer", analyzer)
        assert evaluate(node, index) == set()


class TestStructuredSearch:
    @pytest.fixture(scope="class")
    def engine(self):
        built = LocalSearchEngine()
        texts = [
            (1, "Overlay survey",
             "peer to peer retrieval over structured overlay networks"),
            (2, "Truncation note",
             "posting list truncation bounds bandwidth consumption"),
            (3, "Ranking statistics",
             "peer ranking uses posting list statistics and scores"),
        ]
        for doc_id, title, text in texts:
            built.add_document(Document(doc_id=doc_id, title=title,
                                        text=text))
        return built

    def test_ranked_results(self, engine):
        results = engine.structured_search('peer AND "posting list"')
        assert [result.doc_id for result in results] == [3]
        assert results[0].score > 0
        assert results[0].title == "Ranking statistics"

    def test_or_widens(self, engine):
        results = engine.structured_search("truncation OR overlay")
        assert {result.doc_id for result in results} == {1, 2}

    def test_not_only_query_scores_zero(self, engine):
        results = engine.structured_search("NOT peer")
        assert [result.doc_id for result in results] == [2]
        assert results[0].score == 0.0

    def test_k_limits(self, engine):
        results = engine.structured_search("peer OR truncation", k=1)
        assert len(results) == 1

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(QuerySyntaxError):
            engine.structured_search("(peer")

"""Tests for the batched + cached query engine and its substrate:
the byte-budgeted LRU cache, batched DHT lookups, probe-result caching
with churn/republication invalidation, and top-k early termination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import LRUByteCache
from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.lattice import LatticeExplorer, ProbeStatus
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.dht.ring import DHTRing
from repro.dht.routing import HopSpaceFingers, uniform_ids
from repro.ir.postings import Posting, PostingList
from repro.util.rng import make_rng


def _build_network(corpus, config, num_peers=10, seed=2, mode="hdk"):
    network = AlvisNetwork(num_peers=num_peers, config=config, seed=seed)
    network.distribute_documents(corpus.documents())
    network.build_index(mode=mode)
    return network


@pytest.fixture(scope="module")
def engine_network(small_corpus) -> AlvisNetwork:
    """Batch + cache + early-stop, over the same corpus/seed as
    ``hdk_network`` so the two are directly comparable."""
    return _build_network(small_corpus, AlvisConfig(
        batch_lookups=True, cache_bytes=64 * 1024,
        topk_early_stop=True))


# ---------------------------------------------------------------------------
# LRUByteCache
# ---------------------------------------------------------------------------

class TestLRUByteCache:
    def test_hit_and_miss_counters(self):
        cache = LRUByteCache(capacity_bytes=100)
        hit, value = cache.get("a")
        assert not hit and value is None
        assert cache.put("a", 1, size=10)
        hit, value = cache.get("a")
        assert hit and value == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_byte_budget_evicts_lru_first(self):
        cache = LRUByteCache(capacity_bytes=100)
        cache.put("a", "A", size=40)
        cache.put("b", "B", size=40)
        cache.get("a")                      # refresh a: b is now LRU
        cache.put("c", "C", size=40)        # must evict b, not a
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1
        assert cache.used_bytes == 80

    def test_oversized_entry_rejected(self):
        cache = LRUByteCache(capacity_bytes=100)
        assert not cache.put("big", "x", size=101)
        assert len(cache) == 0

    def test_oversized_replacement_drops_stale_value(self):
        cache = LRUByteCache(capacity_bytes=100)
        cache.put("a", "old", size=10)
        # The rejected overwrite must not leave the old value to be
        # served as a stale hit.
        assert not cache.put("a", "new", size=101)
        assert cache.get("a") == (False, None)
        assert cache.used_bytes == 0

    def test_replacing_entry_reclaims_bytes(self):
        cache = LRUByteCache(capacity_bytes=100)
        cache.put("a", "A", size=60)
        cache.put("a", "A2", size=30)
        assert cache.used_bytes == 30
        assert cache.get("a") == (True, "A2")

    def test_capacity_zero_disables(self):
        cache = LRUByteCache(capacity_bytes=0)
        assert not cache.enabled
        assert not cache.put("a", 1, size=1)
        assert cache.get("a") == (False, None)

    def test_ttl_expires_entries(self):
        cache = LRUByteCache(capacity_bytes=100, ttl=2)
        cache.put("a", 1, size=10)
        cache.tick()
        assert cache.get("a") == (True, 1)   # age 1 < ttl
        cache.tick()
        assert cache.get("a") == (False, None)  # age 2 >= ttl
        assert cache.stats.expirations == 1
        assert "a" not in cache

    def test_version_invalidation(self):
        cache = LRUByteCache(capacity_bytes=100)
        # First tag adoption is not an invalidation (nothing cached yet).
        assert not cache.ensure_version((0, 0))
        cache.put("a", 1, size=10)
        assert not cache.ensure_version((0, 0))
        assert cache.ensure_version((0, 1))
        assert cache.get("a") == (False, None)
        assert cache.stats.invalidations == 1
        assert cache.used_bytes == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            LRUByteCache(capacity_bytes=-1)
        with pytest.raises(ValueError):
            LRUByteCache(capacity_bytes=10, ttl=-1)
        with pytest.raises(ValueError):
            LRUByteCache(capacity_bytes=10).put("a", 1, size=-1)


# ---------------------------------------------------------------------------
# Batched DHT lookups
# ---------------------------------------------------------------------------

class TestLookupMany:
    def _ring(self, n=24, seed=7):
        ring = DHTRing(HopSpaceFingers())
        for node_id in uniform_ids(make_rng(seed, "ring"), n):
            ring.add_node(node_id)
        ring.rebuild_tables()
        return ring

    def test_owners_match_individual_lookups(self):
        ring = self._ring()
        source = ring.member_ids[0]
        key_ids = [hash(("k", i)) % (2 ** 64) for i in range(40)]
        batch = ring.lookup_many(source, key_ids)
        for key_id in key_ids:
            single = ring.lookup(source, key_id)
            assert batch.owners[key_id] == single.owner
            assert batch.per_key_hops[key_id] == single.hops

    def test_messages_amortized_below_total_hops(self):
        ring = self._ring()
        source = ring.member_ids[0]
        key_ids = [hash(("k", i)) % (2 ** 64) for i in range(40)]
        batch = ring.lookup_many(source, key_ids)
        assert batch.messages <= batch.total_hops
        # With 40 keys over 24 nodes, route sharing must actually occur.
        assert batch.messages < batch.total_hops

    def test_single_key_batch_equals_lookup(self):
        ring = self._ring()
        source = ring.member_ids[3]
        key_id = 123456789
        batch = ring.lookup_many(source, [key_id])
        single = ring.lookup(source, key_id)
        assert batch.owners == {key_id: single.owner}
        assert batch.messages == single.hops

    def test_unknown_source_raises(self):
        ring = self._ring()
        with pytest.raises(KeyError):
            ring.lookup_many(10**9 + 7, [1])


# ---------------------------------------------------------------------------
# Batched path equivalence and savings
# ---------------------------------------------------------------------------

class TestBatchedEquivalence:
    def test_identical_results_and_statuses(self, hdk_network,
                                            engine_network,
                                            small_workload):
        for query in small_workload.pool[:12]:
            base_results, base_trace = hdk_network.query(
                hdk_network.peer_ids()[0], list(query))
            engine_results, engine_trace = engine_network.query(
                engine_network.peer_ids()[0], list(query))
            assert [doc.doc_id for doc in base_results] == \
                [doc.doc_id for doc in engine_results]
            assert [doc.score for doc in base_results] == \
                pytest.approx([doc.score for doc in engine_results])

    def test_batching_reduces_network_messages(self, hdk_network,
                                               small_corpus,
                                               small_workload):
        batched = _build_network(small_corpus,
                                 AlvisConfig(batch_lookups=True))
        base_messages = batched_messages = 0.0
        for query in small_workload.pool[:12]:
            before = hdk_network.messages_sent_total()
            hdk_network.query(hdk_network.peer_ids()[0], list(query))
            base_messages += hdk_network.messages_sent_total() - before
            before = batched.messages_sent_total()
            batched.query(batched.peer_ids()[0], list(query))
            batched_messages += batched.messages_sent_total() - before
        assert batched_messages < base_messages

    def test_batched_trace_reconciles(self, engine_network,
                                      small_workload):
        origin = engine_network.peer_ids()[1]
        for query in small_workload.pool[:6]:
            _results, trace = engine_network.query(origin, list(query))
            assert sum(trace.bytes_by_kind.values()) == trace.bytes_sent


# ---------------------------------------------------------------------------
# Probe-result caching
# ---------------------------------------------------------------------------

class TestProbeCache:
    def test_repeat_query_served_from_cache(self, small_corpus,
                                            small_workload):
        network = _build_network(small_corpus, AlvisConfig(
            batch_lookups=True, cache_bytes=64 * 1024))
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[0])
        _r, cold = network.query(origin, query)
        _r, warm = network.query(origin, query)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert warm.cache_misses == 0 and warm.cache_hits > 0
        assert warm.bytes_sent == 0
        assert warm.lookup_hops == 0
        assert warm.request_messages == 0
        assert warm.cache_hit_rate == 1.0

    def test_cache_is_per_origin_peer(self, small_corpus, small_workload):
        network = _build_network(small_corpus, AlvisConfig(
            cache_bytes=64 * 1024))
        query = list(small_workload.pool[1])
        network.query(network.peer_ids()[0], query)
        _r, other = network.query(network.peer_ids()[1], query)
        assert other.cache_hits == 0     # different peer, cold cache

    def test_churn_invalidates_cache(self, small_corpus, small_workload):
        config = AlvisConfig(batch_lookups=True, cache_bytes=64 * 1024)
        network = _build_network(small_corpus, config)
        twin = _build_network(small_corpus, AlvisConfig())
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[2])
        network.query(origin, query)
        network.churn().join()
        twin.churn().join()              # same seed -> same join
        _r, after = network.query(origin, query)
        twin_results, _t = twin.query(twin.peer_ids()[0], query)
        peer = network.peer(origin)
        assert peer.probe_cache.stats.invalidations >= 1
        assert after.cache_hits == 0     # nothing stale survived
        assert [doc.doc_id for doc in after.results] == \
            [doc.doc_id for doc in twin_results]

    def test_republication_invalidates_cache(self, small_corpus,
                                             small_workload):
        network = _build_network(small_corpus, AlvisConfig(
            cache_bytes=64 * 1024))
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[3])
        network.query(origin, query)
        version_before = network.index_version
        document = sample_documents()[0]
        network.publish_incremental(network.peer_ids()[1], document)
        assert network.index_version > version_before
        _r, after = network.query(origin, query)
        assert network.peer(origin).probe_cache.stats.invalidations >= 1
        assert after.cache_hits == 0

    def test_ttl_expires_cached_probes(self, small_corpus,
                                       small_workload):
        network = _build_network(small_corpus, AlvisConfig(
            cache_bytes=64 * 1024, cache_ttl=1))
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[4])
        network.query(origin, query)
        _r, second = network.query(origin, query)
        # Every entry aged out after one query tick.
        assert second.cache_hits == 0
        assert network.peer(origin).probe_cache.stats.expirations > 0

    def test_qdi_mode_bypasses_probe_cache(self, small_corpus,
                                           small_workload):
        """QDI's popularity monitoring requires responsible peers to
        see every probe — absorbing them at the querying peer would
        starve hot keys' counters until maintenance evicts them.  The
        cache is therefore inert in QDI mode, and on-demand activation
        keeps working with ``cache_bytes`` set."""
        network = _build_network(small_corpus, AlvisConfig(
            cache_bytes=64 * 1024, qdi_activation_threshold=2),
            mode="qdi")
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[0])
        for _ in range(3):
            _r, trace = network.query(origin, query)
            assert trace.cache_hits == 0 and trace.cache_misses == 0
        activations = sum(peer.qdi.stats.activations
                          for peer in network.peers())
        assert activations > 0

    @settings(max_examples=20, deadline=None)
    @given(index=st.integers(min_value=0, max_value=39))
    def test_cached_and_uncached_topk_identical(self, hdk_network,
                                                cached_twin_network,
                                                small_workload, index):
        """Property: caching is invisible in results — any query from
        the shared pool ranks identically with and without the cache,
        whatever cache state earlier examples left behind."""
        query = list(small_workload.pool[index])
        base_results, _t = hdk_network.query(
            hdk_network.peer_ids()[0], query)
        cached_results, _t = cached_twin_network.query(
            cached_twin_network.peer_ids()[0], query)
        assert [doc.doc_id for doc in base_results] == \
            [doc.doc_id for doc in cached_results]
        assert [doc.score for doc in base_results] == \
            pytest.approx([doc.score for doc in cached_results])


@pytest.fixture(scope="module")
def cached_twin_network(small_corpus) -> AlvisNetwork:
    """Same corpus/seed as ``hdk_network`` but with the probe cache on."""
    return _build_network(small_corpus, AlvisConfig(
        cache_bytes=64 * 1024))


# ---------------------------------------------------------------------------
# Top-k early termination
# ---------------------------------------------------------------------------

def _posting_list(*scores, truncated=False):
    entries = [Posting(doc_id=i + 1, score=score)
               for i, score in enumerate(scores)]
    global_df = len(entries) + (1 if truncated else 0)
    return PostingList(entries, global_df=global_df)


class TestEarlyTermination:
    def test_explorer_marks_pruned_levels(self):
        # prune_on_truncated off: a truncated full key excludes nothing,
        # so everything below it is cut purely by the stop test.
        explorer = LatticeExplorer(prune_on_truncated=False)
        probed = []

        def probe(key):
            probed.append(key)
            return True, _posting_list(3.0, 2.0, truncated=True)

        def stop_after_first_level(outcome, remaining):
            return len(outcome.records) >= 1

        outcome = explorer.explore(["a", "b", "c"], probe=probe,
                                   should_stop=stop_after_first_level)
        assert probed == [Key(["a", "b", "c"])]
        assert len(outcome.records) == 7       # full lattice recorded
        assert outcome.probed_count == 1
        assert outcome.pruned_count == 6
        assert outcome.with_status(ProbeStatus.PRUNED)

    def test_pruned_excluded_from_probed_count(self):
        explorer = LatticeExplorer()

        def probe(key):
            # Untruncated full key: all subsets become SKIPPED, not
            # PRUNED, even when the stop test fires.
            return True, _posting_list(3.0)

        outcome = explorer.explore(
            ["a", "b"], probe=probe,
            should_stop=lambda _outcome, _remaining: True)
        statuses = {record.key: record.status
                    for record in outcome.records}
        assert statuses[Key(["a", "b"])] == ProbeStatus.UNTRUNCATED
        assert statuses[Key(["a"])] == ProbeStatus.SKIPPED
        assert statuses[Key(["b"])] == ProbeStatus.SKIPPED

    def test_early_stop_preserves_topk_sets(self, hdk_network,
                                            small_corpus,
                                            small_workload):
        stopping = _build_network(small_corpus, AlvisConfig(
            topk_early_stop=True))
        for query in small_workload.pool[:15]:
            base_results, _t = hdk_network.query(
                hdk_network.peer_ids()[0], list(query))
            stop_results, trace = stopping.query(
                stopping.peer_ids()[0], list(query))
            assert {doc.doc_id for doc in base_results} == \
                {doc.doc_id for doc in stop_results}
            assert trace.probed_count + trace.skipped_count \
                + trace.pruned_count == len(trace.probes)

    def test_stopword_list_pruned_when_rare_pair_decides_topk(self):
        """The canonical Akbarinia win, end-to-end: a rare pair's
        untruncated list already fills the top-k, the only unprobed key
        is a collection-wide common term whose BM25 ceiling cannot
        reorder anything — its posting list is never fetched."""
        from repro.ir.documents import Document

        def documents():
            docs = [Document(doc_id=0, title=f"rare{i}", url="",
                             text=f"azeta aquark pad{i} pod{i} pud{i} "
                                  "omega")
                    for i in range(3)]
            docs += [Document(doc_id=0, title=f"common{i}", url="",
                              text=f"omega unique{i}a unique{i}b "
                                   f"unique{i}c")
                     for i in range(57)]
            return docs

        def build(early_stop):
            network = AlvisNetwork(num_peers=6, seed=9, config=AlvisConfig(
                result_k=3, df_max=2, truncation_k=5, proximity_window=2,
                topk_early_stop=early_stop))
            network.distribute_documents(documents(),
                                         assignment="contiguous")
            network.build_index(mode="hdk")
            return network

        query = ["azeta", "aquark", "omega"]
        baseline = build(False)
        base_results, base_trace = baseline.query(
            baseline.peer_ids()[0], query)
        stopping = build(True)
        stop_results, stop_trace = stopping.query(
            stopping.peer_ids()[0], query)
        statuses = dict(stop_trace.probes)
        assert statuses[Key(["omega"])] == ProbeStatus.PRUNED
        assert stop_trace.pruned_count == 1
        assert stop_trace.probed_count == base_trace.probed_count - 1
        assert [doc.doc_id for doc in base_results] == \
            [doc.doc_id for doc in stop_results]
        assert [doc.score for doc in base_results] == \
            pytest.approx([doc.score for doc in stop_results])

    def test_exactly_one_probe_mode_required(self):
        explorer = LatticeExplorer()
        with pytest.raises(ValueError):
            explorer.explore(["a"])
        with pytest.raises(ValueError):
            explorer.explore(["a"], probe=lambda key: (False, None),
                             probe_level=lambda keys: [])

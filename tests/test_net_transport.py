"""Tests for latency models and the transport."""

import random

import pytest

from repro.net.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.net.message import Message
from repro.net.transport import DeliveryError, Transport
from repro.sim.events import Simulator


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.2)
        assert model.delay(random.Random(0), 1, 2, 100) == 0.2

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)

    def test_uniform_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = random.Random(1)
        for _ in range(200):
            delay = model.delay(rng, 1, 2, 10)
            assert 0.01 <= delay <= 0.05

    def test_uniform_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_positive(self):
        model = LogNormalLatency()
        rng = random.Random(2)
        assert all(model.delay(rng, 1, 2, 100) > 0 for _ in range(100))

    def test_lognormal_serialization_term(self):
        model = LogNormalLatency(median_seconds=0.01, sigma=0.0,
                                 bytes_per_second=1000.0)
        rng = random.Random(3)
        small = model.delay(rng, 1, 2, 0)
        large = model.delay(rng, 1, 2, 10_000)
        assert large == pytest.approx(small + 10.0)

    def test_lognormal_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median_seconds=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(sigma=-1)
        with pytest.raises(ValueError):
            LogNormalLatency(bytes_per_second=0)


class _Echo:
    """Replies to every message with an Echo of the payload."""

    def __init__(self):
        self.received = []

    def on_message(self, message):
        self.received.append(message)
        if message.kind == "OneWay":
            return None
        return message.reply("Echo", dict(message.payload))


class _Sink:
    """Accepts anything, replies to nothing (a quiet requester)."""

    def on_message(self, message):
        return None


def _make_transport(register_requester=False):
    simulator = Simulator()
    transport = Transport(simulator, ConstantLatency(0.1),
                          random.Random(0))
    if register_requester:
        # Async replies are only delivered to live endpoints, so tests
        # expecting a reply back at peer 1 must register it.
        transport.register(1, _Sink())
    return simulator, transport


class TestTransportSync:
    def test_request_reply(self):
        _sim, transport = _make_transport()
        echo = _Echo()
        transport.register(2, echo)
        reply, rtt = transport.request(
            Message(src=1, dst=2, kind="Ping", payload={"x": 1}))
        assert reply is not None
        assert reply.payload == {"x": 1}
        assert rtt == pytest.approx(0.2)  # two constant 0.1s legs

    def test_one_way_rtt_single_leg(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        reply, rtt = transport.request(
            Message(src=1, dst=2, kind="OneWay", payload={}))
        assert reply is None
        assert rtt == pytest.approx(0.1)

    def test_unknown_destination_raises(self):
        _sim, transport = _make_transport()
        with pytest.raises(DeliveryError):
            transport.request(Message(src=1, dst=99, kind="Ping"))

    def test_bytes_accounted_both_directions(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        message = Message(src=1, dst=2, kind="Ping", payload={"x": 1})
        request_size = message.size_bytes()
        transport.request(message)
        total = simulator.metrics.counter_value("net.bytes.sent")
        assert total > request_size  # reply accounted too
        assert simulator.metrics.counter_value(
            "net.bytes.sent.Ping") == request_size
        assert simulator.metrics.counter_value("net.bytes.sent.Echo") > 0
        assert simulator.metrics.counter_value("net.msgs.sent") == 2

    def test_per_peer_inbound_counters(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.request(Message(src=1, dst=2, kind="Ping", payload={}))
        assert transport.msgs_in[2] == 1
        assert transport.bytes_in[2] > 0
        # The reply was addressed to 1.
        assert transport.msgs_in.get(1) == 1

    def test_reset_load_counters(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.request(Message(src=1, dst=2, kind="Ping", payload={}))
        transport.reset_load_counters()
        assert transport.msgs_in[2] == 0
        assert transport.bytes_in[2] == 0

    def test_reset_load_counters_prunes_departed_peers(self):
        # Regression: counters for long-departed peers used to survive
        # every reset, growing the dicts forever under churn.
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.register(3, _Echo())
        transport.request(Message(src=1, dst=2, kind="Ping", payload={}))
        transport.request(Message(src=1, dst=3, kind="Ping", payload={}))
        transport.unregister(3)
        transport.reset_load_counters()
        assert 3 not in transport.msgs_in
        assert 3 not in transport.bytes_in
        assert transport.msgs_in[2] == 0

    def test_send_local_no_bytes(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        reply = transport.send_local(
            Message(src=2, dst=2, kind="Ping", payload={}))
        assert reply is not None
        assert simulator.metrics.counter_value("net.bytes.sent") == 0

    def test_unregister(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.unregister(2)
        assert not transport.is_registered(2)
        with pytest.raises(DeliveryError):
            transport.request(Message(src=1, dst=2, kind="Ping"))


class TestTransportAsync:
    def test_async_delivery_after_latency(self):
        simulator, transport = _make_transport(register_requester=True)
        echo = _Echo()
        transport.register(2, echo)
        replies = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            on_reply=replies.append)
        assert echo.received == []  # not yet delivered
        simulator.run()
        assert len(echo.received) == 1
        assert len(replies) == 1
        assert simulator.now == pytest.approx(0.2)

    def test_async_drop_on_departed_peer(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        drops = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            on_drop=drops.append)
        transport.unregister(2)  # peer leaves before delivery
        simulator.run()
        assert len(drops) == 1

    def test_async_without_reply_callback(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        transport.send_async(Message(src=1, dst=2, kind="Ping",
                                     payload={}))
        simulator.run()  # must not raise
        assert simulator.metrics.counter_value("net.msgs.sent") == 1

    def test_reply_scheduling_order_follows_latency(self):
        # Two sends at t=0 with per-destination latencies: the reply of
        # the nearer destination arrives first even though it was sent
        # second.
        import random as random_module

        class _PerDestLatency:
            def delay(self, rng, src, dst, size):
                return 0.3 if dst == 2 else 0.1

        simulator = Simulator()
        transport = Transport(simulator, _PerDestLatency(),
                              random_module.Random(0))
        transport.register(1, _Sink())
        transport.register(2, _Echo())
        transport.register(3, _Echo())
        arrivals = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={"n": 2}),
            on_reply=lambda reply: arrivals.append((reply.src,
                                                    simulator.now)))
        transport.send_async(
            Message(src=1, dst=3, kind="Ping", payload={"n": 3}),
            on_reply=lambda reply: arrivals.append((reply.src,
                                                    simulator.now)))
        simulator.run()
        # dst=3 request leg 0.1 + reply leg (dst=1) 0.1; dst=2 request
        # leg 0.3 + reply leg 0.1.
        assert arrivals == [(3, pytest.approx(0.2)),
                            (2, pytest.approx(0.4))]

    def test_async_drop_between_send_and_delivery(self):
        # The destination is alive at send time and unregisters while
        # the message is in flight: on_drop, never an exception, and no
        # reply bytes are accounted.
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        drops = []
        replies = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            on_reply=replies.append, on_drop=drops.append)
        simulator.schedule(0.05, lambda: transport.unregister(2))
        simulator.run()
        assert len(drops) == 1
        assert replies == []
        assert simulator.metrics.counter_value("net.msgs.sent") == 1
        assert simulator.metrics.counter_value(
            "net.bytes.sent.Echo", 0.0) == 0.0

    def test_on_delivered_hook(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        delivered = []
        transport.send_async(
            Message(src=1, dst=2, kind="OneWay", payload={}),
            on_delivered=lambda message, reply: delivered.append(
                (message.kind, reply)))
        simulator.run()
        assert delivered == [("OneWay", None)]

    def test_byte_accounting_parity_with_request(self):
        # Identical messages through request() and send_async() must
        # account identical bytes (request + reply legs).
        sim_sync, sync = _make_transport()
        sync.register(2, _Echo())
        sync.request(Message(src=1, dst=2, kind="Ping",
                             payload={"x": 1, "y": "abc"}))
        sim_async, asynchronous = _make_transport()
        asynchronous.register(2, _Echo())
        asynchronous.send_async(
            Message(src=1, dst=2, kind="Ping",
                    payload={"x": 1, "y": "abc"}),
            on_reply=lambda reply: None)
        sim_async.run()
        for counter in ("net.bytes.sent", "net.bytes.sent.Ping",
                        "net.bytes.sent.Echo", "net.msgs.sent"):
            assert sim_async.metrics.counter_value(counter) == \
                sim_sync.metrics.counter_value(counter)


class TestRequestAsync:
    def test_reply_outcome(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={"x": 1}))
        assert transport.inflight(2) == 1
        simulator.run()
        assert future.done
        outcome = future.value
        assert outcome.ok
        assert outcome.reply.payload == {"x": 1}
        assert outcome.rtt == pytest.approx(0.2)
        assert transport.inflight(2) == 0
        assert transport.total_inflight() == 0

    def test_one_way_resolves_on_delivery(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="OneWay", payload={}))
        simulator.run()
        assert future.value.ok
        assert future.value.reply is None
        assert future.value.rtt == pytest.approx(0.1)

    def test_drop_surfaced_not_raised(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}))
        transport.unregister(2)
        simulator.run()
        assert future.value.status == "dropped"
        assert future.value.reply is None
        assert transport.total_inflight() == 0

    def test_timeout(self):
        simulator, transport = _make_transport()
        # No endpoint for 9 is ever registered *and* nothing drops it:
        # register, send, then swap in a handler that never replies via
        # a slow destination.  Simplest deterministic case: destination
        # alive, but timeout shorter than the one-way latency.
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            timeout=0.05)
        simulator.run()
        assert future.value.status == "timeout"
        assert transport.total_inflight() == 0

    def test_late_reply_after_timeout_is_discarded(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            timeout=0.15)    # after delivery (0.1), before reply (0.2)
        simulator.run()
        assert future.value.status == "timeout"
        # The reply still travelled (bytes accounted) but the outcome
        # is stable.
        assert simulator.metrics.counter_value("net.bytes.sent.Echo") > 0

    def test_reply_to_departed_requester_is_dropped(self):
        # The requester unregisters while the reply is in flight: the
        # outcome is a drop, not a reply delivered to a dead peer.
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}))
        # Request delivered at 0.1; reply lands at 0.2.  Depart at 0.15.
        simulator.schedule(0.15, lambda: transport.unregister(1))
        simulator.run()
        assert future.value.status == "dropped"
        assert transport.total_inflight() == 0

    def test_request_ids_are_unique(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        first = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}))
        second = transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload={}))
        assert transport.inflight(2) == 2
        simulator.run()
        assert first.value.request_id != second.value.request_id


class TestServiceModel:
    """The bounded per-endpoint service queue (congestion model)."""

    def _make(self, rate=10.0, capacity=2, reject_cost=0.0):
        simulator, transport = _make_transport(register_requester=True)
        transport.configure_service_model(rate, capacity, reject_cost)
        transport.register(2, _Echo())
        return simulator, transport

    def _ping(self, transport, payload=None):
        return transport.request_async(
            Message(src=1, dst=2, kind="Ping", payload=payload or {}))

    def test_service_adds_queueing_delay(self):
        simulator, transport = self._make(rate=10.0, capacity=8)
        first = self._ping(transport)
        second = self._ping(transport)
        simulator.run()
        # link 0.1 + service 0.1 + reply 0.1 = 0.3; the second request
        # additionally waits for the first one's full service slot.
        assert first.value.rtt == pytest.approx(0.3)
        assert second.value.rtt == pytest.approx(0.4)

    def test_overflow_surfaced_with_return_delay(self):
        simulator, transport = self._make(rate=1.0, capacity=1)
        futures = [self._ping(transport) for _ in range(3)]
        simulator.run_until(0.25)
        # All three arrive at 0.1: one enters service, one queues, the
        # third overflows — and its notification pays the return link
        # latency (resolved at 0.2, never instantly at 0.1).
        statuses = [future.value.status for future in futures
                    if future.done]
        assert statuses == ["overflow"]
        assert futures[2].value.rtt == pytest.approx(0.2)
        assert transport.queue_drops_total() == 1

    def test_inactive_by_default(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        assert not transport.service_model_active
        future = self._ping(transport)
        simulator.run()
        # No service delay: plain 0.2 round trip.
        assert future.value.rtt == pytest.approx(0.2)

    def test_departure_while_queued_is_a_drop(self):
        simulator, transport = self._make(rate=1.0, capacity=4)
        first = self._ping(transport)
        second = self._ping(transport)
        # Both queued at 0.1; the endpoint departs at 0.5 — before the
        # second one's service (1.1) completes.
        simulator.schedule(0.5, lambda: transport.unregister(2))
        simulator.run()
        assert first.value.status == "dropped"
        assert second.value.status == "dropped"

    def test_service_stats_aggregate(self):
        simulator, transport = self._make(rate=1.0, capacity=1)
        for _ in range(3):
            self._ping(transport)
        simulator.run()
        stats = transport.service_stats()
        assert stats["arrived"] == 3
        assert stats["dropped"] == 1
        assert stats["completed"] == 2
        assert stats["queued"] == 0
        assert transport.service_queue_length(2) == 0

    def test_reject_cost_consumes_capacity(self):
        # Two servers, same offered pattern; the one paying reject cost
        # finishes its useful work later.
        def completion_time(reject_cost):
            simulator, transport = self._make(rate=10.0, capacity=1,
                                              reject_cost=reject_cost)
            futures = [self._ping(transport) for _ in range(4)]
            simulator.run()
            return max(future.value.rtt for future in futures
                       if future.value.status == "ok")
        assert completion_time(0.5) > completion_time(0.0)

    def test_invalid_configuration_rejected(self):
        _simulator, transport = _make_transport()
        with pytest.raises(ValueError):
            transport.configure_service_model(-1.0, 4)
        with pytest.raises(ValueError):
            transport.configure_service_model(5.0, 0)
        with pytest.raises(ValueError):
            transport.configure_service_model(5.0, 4, reject_cost=-0.1)


class TestInflightAccounting:
    """Per-destination in-flight counts must return to zero on *every*
    request_async resolution path — a leak here would starve the
    congestion controller's window bookkeeping forever.

    (Audit note: the ``finish()`` guard on ``future.done`` makes each
    path decrement exactly once; these tests pin that invariant.)
    """

    def test_counts_while_in_flight(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        transport.request_async(Message(src=1, dst=2, kind="Ping"))
        transport.request_async(Message(src=1, dst=2, kind="Ping"))
        assert transport.inflight(2) == 2
        assert transport.total_inflight() == 2
        simulator.run()
        assert transport.inflight(2) == 0
        assert transport.total_inflight() == 0

    def test_zero_after_timeout_and_late_reply(self):
        # Timeout fires at 0.05, the reply lands at 0.2: the late reply
        # must not decrement a second time (no negative/garbage counts).
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping"), timeout=0.05)
        simulator.run_until(0.1)
        assert future.value.status == "timeout"
        assert transport.total_inflight() == 0
        simulator.run()
        assert future.value.status == "timeout"
        assert transport.total_inflight() == 0

    def test_zero_after_churn_drop(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping"))
        transport.unregister(2)  # departs before delivery at 0.1
        simulator.run()
        assert future.value.status == "dropped"
        assert transport.total_inflight() == 0

    def test_zero_after_service_queue_overflow(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.configure_service_model(1.0, 1)
        transport.register(2, _Echo())
        futures = [transport.request_async(
            Message(src=1, dst=2, kind="Ping")) for _ in range(3)]
        simulator.run()
        statuses = sorted(future.value.status for future in futures)
        assert "overflow" in statuses
        assert transport.inflight(2) == 0
        assert transport.total_inflight() == 0

    def test_zero_after_reply_leg_drop(self):
        # The requester departs while its request is in flight; the
        # reply cannot be delivered, yet the count still drains.
        simulator, transport = _make_transport(register_requester=True)
        transport.register(2, _Echo())
        future = transport.request_async(
            Message(src=1, dst=2, kind="Ping"))
        simulator.schedule(0.15, lambda: transport.unregister(1))
        simulator.run()
        assert future.done
        assert future.value.status == "dropped"
        assert transport.total_inflight() == 0

    def test_zero_after_departed_while_queued(self):
        simulator, transport = _make_transport(register_requester=True)
        transport.configure_service_model(1.0, 4)
        transport.register(2, _Echo())
        futures = [transport.request_async(
            Message(src=1, dst=2, kind="Ping")) for _ in range(2)]
        simulator.schedule(0.5, lambda: transport.unregister(2))
        simulator.run()
        assert all(future.value.status == "dropped"
                   for future in futures)
        assert transport.total_inflight() == 0

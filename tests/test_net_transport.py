"""Tests for latency models and the transport."""

import random

import pytest

from repro.net.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.net.message import Message
from repro.net.transport import DeliveryError, Transport
from repro.sim.events import Simulator


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.2)
        assert model.delay(random.Random(0), 1, 2, 100) == 0.2

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)

    def test_uniform_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = random.Random(1)
        for _ in range(200):
            delay = model.delay(rng, 1, 2, 10)
            assert 0.01 <= delay <= 0.05

    def test_uniform_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_positive(self):
        model = LogNormalLatency()
        rng = random.Random(2)
        assert all(model.delay(rng, 1, 2, 100) > 0 for _ in range(100))

    def test_lognormal_serialization_term(self):
        model = LogNormalLatency(median_seconds=0.01, sigma=0.0,
                                 bytes_per_second=1000.0)
        rng = random.Random(3)
        small = model.delay(rng, 1, 2, 0)
        large = model.delay(rng, 1, 2, 10_000)
        assert large == pytest.approx(small + 10.0)

    def test_lognormal_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median_seconds=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(sigma=-1)
        with pytest.raises(ValueError):
            LogNormalLatency(bytes_per_second=0)


class _Echo:
    """Replies to every message with an Echo of the payload."""

    def __init__(self):
        self.received = []

    def on_message(self, message):
        self.received.append(message)
        if message.kind == "OneWay":
            return None
        return message.reply("Echo", dict(message.payload))


def _make_transport():
    simulator = Simulator()
    transport = Transport(simulator, ConstantLatency(0.1),
                          random.Random(0))
    return simulator, transport


class TestTransportSync:
    def test_request_reply(self):
        _sim, transport = _make_transport()
        echo = _Echo()
        transport.register(2, echo)
        reply, rtt = transport.request(
            Message(src=1, dst=2, kind="Ping", payload={"x": 1}))
        assert reply is not None
        assert reply.payload == {"x": 1}
        assert rtt == pytest.approx(0.2)  # two constant 0.1s legs

    def test_one_way_rtt_single_leg(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        reply, rtt = transport.request(
            Message(src=1, dst=2, kind="OneWay", payload={}))
        assert reply is None
        assert rtt == pytest.approx(0.1)

    def test_unknown_destination_raises(self):
        _sim, transport = _make_transport()
        with pytest.raises(DeliveryError):
            transport.request(Message(src=1, dst=99, kind="Ping"))

    def test_bytes_accounted_both_directions(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        message = Message(src=1, dst=2, kind="Ping", payload={"x": 1})
        request_size = message.size_bytes()
        transport.request(message)
        total = simulator.metrics.counter_value("net.bytes.sent")
        assert total > request_size  # reply accounted too
        assert simulator.metrics.counter_value(
            "net.bytes.sent.Ping") == request_size
        assert simulator.metrics.counter_value("net.bytes.sent.Echo") > 0
        assert simulator.metrics.counter_value("net.msgs.sent") == 2

    def test_per_peer_inbound_counters(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.request(Message(src=1, dst=2, kind="Ping", payload={}))
        assert transport.msgs_in[2] == 1
        assert transport.bytes_in[2] > 0
        # The reply was addressed to 1.
        assert transport.msgs_in.get(1) == 1

    def test_reset_load_counters(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.request(Message(src=1, dst=2, kind="Ping", payload={}))
        transport.reset_load_counters()
        assert transport.msgs_in[2] == 0
        assert transport.bytes_in[2] == 0

    def test_send_local_no_bytes(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        reply = transport.send_local(
            Message(src=2, dst=2, kind="Ping", payload={}))
        assert reply is not None
        assert simulator.metrics.counter_value("net.bytes.sent") == 0

    def test_unregister(self):
        _sim, transport = _make_transport()
        transport.register(2, _Echo())
        transport.unregister(2)
        assert not transport.is_registered(2)
        with pytest.raises(DeliveryError):
            transport.request(Message(src=1, dst=2, kind="Ping"))


class TestTransportAsync:
    def test_async_delivery_after_latency(self):
        simulator, transport = _make_transport()
        echo = _Echo()
        transport.register(2, echo)
        replies = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            on_reply=replies.append)
        assert echo.received == []  # not yet delivered
        simulator.run()
        assert len(echo.received) == 1
        assert len(replies) == 1
        assert simulator.now == pytest.approx(0.2)

    def test_async_drop_on_departed_peer(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        drops = []
        transport.send_async(
            Message(src=1, dst=2, kind="Ping", payload={}),
            on_drop=drops.append)
        transport.unregister(2)  # peer leaves before delivery
        simulator.run()
        assert len(drops) == 1

    def test_async_without_reply_callback(self):
        simulator, transport = _make_transport()
        transport.register(2, _Echo())
        transport.send_async(Message(src=1, dst=2, kind="Ping",
                                     payload={}))
        simulator.run()  # must not raise
        assert simulator.metrics.counter_value("net.msgs.sent") == 1

"""Focused tests on the query trace's accounting guarantees."""

import pytest

from repro.core.lattice import ProbeStatus
from repro.core.retrieval import QueryTrace
from repro.core.keys import Key


class TestTraceAccounting:
    def test_bytes_by_kind_sums_to_bytes_sent(self, hdk_network,
                                              small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[4]))
        assert sum(trace.bytes_by_kind.values()) == trace.bytes_sent

    def test_probe_kinds_present(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[5]))
        assert trace.bytes_by_kind.get("ProbeKey", 0) > 0
        assert trace.bytes_by_kind.get("ProbeReply", 0) > 0
        if trace.lookup_hops:
            assert trace.bytes_by_kind.get("LookupHop", 0) > 0

    def test_no_feedback_in_hdk_mode(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[6]))
        assert "PopularityFeedback" not in trace.bytes_by_kind

    def test_feedback_in_qdi_mode(self, qdi_network, small_workload):
        origin = qdi_network.peer_ids()[0]
        # A multi-term query against the single-term base index misses
        # its combinations -> feedback goes out.
        query = list(small_workload.pool[7])
        _results, trace = qdi_network.query(origin, query)
        statuses = dict(trace.probes)
        missing_multi = [key for key, status in statuses.items()
                         if status == ProbeStatus.MISSING
                         and len(key) > 1]
        if missing_multi:
            assert trace.bytes_by_kind.get("PopularityFeedback", 0) > 0

    def test_summary_fields(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[8]))
        summary = trace.summary()
        assert summary["terms"] == float(len(trace.query))
        assert summary["probed"] == float(trace.probed_count)
        assert summary["bytes"] == float(trace.bytes_sent)
        assert summary["results"] == float(len(trace.results))

    def test_probes_cover_full_lattice(self, hdk_network,
                                       small_workload):
        origin = hdk_network.peer_ids()[0]
        query = list(small_workload.pool[9])
        _results, trace = hdk_network.query(origin, query)
        assert len(trace.probes) == 2 ** len(trace.query) - 1
        assert trace.probed_count + trace.skipped_count == \
            len(trace.probes)

    def test_trace_query_is_canonical(self, hdk_network,
                                      small_workload):
        origin = hdk_network.peer_ids()[0]
        terms = list(small_workload.pool[3])
        _results, forward = hdk_network.query(origin, terms)
        _results, backward = hdk_network.query(origin,
                                               list(reversed(terms)))
        assert forward.query == backward.query == Key(terms)


class TestQueryTraceDataclass:
    def test_empty_trace_counts(self):
        trace = QueryTrace(query=Key(["a"]), origin=1)
        assert trace.probed_count == 0
        assert trace.skipped_count == 0
        assert trace.summary()["probed"] == 0.0

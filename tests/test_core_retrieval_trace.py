"""Focused tests on the query trace's accounting guarantees."""

import pytest

from repro.core.config import AlvisConfig
from repro.core.lattice import ProbeStatus
from repro.core.network import AlvisNetwork
from repro.core.retrieval import QueryTrace
from repro.core.keys import Key


class TestTraceAccounting:
    def test_bytes_by_kind_sums_to_bytes_sent(self, hdk_network,
                                              small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[4]))
        assert sum(trace.bytes_by_kind.values()) == trace.bytes_sent

    def test_probe_kinds_present(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[5]))
        assert trace.bytes_by_kind.get("ProbeKey", 0) > 0
        assert trace.bytes_by_kind.get("ProbeReply", 0) > 0
        if trace.lookup_hops:
            assert trace.bytes_by_kind.get("LookupHop", 0) > 0

    def test_no_feedback_in_hdk_mode(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[6]))
        assert "PopularityFeedback" not in trace.bytes_by_kind

    def test_feedback_in_qdi_mode(self, qdi_network, small_workload):
        origin = qdi_network.peer_ids()[0]
        # A multi-term query against the single-term base index misses
        # its combinations -> feedback goes out.
        query = list(small_workload.pool[7])
        _results, trace = qdi_network.query(origin, query)
        statuses = dict(trace.probes)
        missing_multi = [key for key, status in statuses.items()
                         if status == ProbeStatus.MISSING
                         and len(key) > 1]
        if missing_multi:
            assert trace.bytes_by_kind.get("PopularityFeedback", 0) > 0

    def test_summary_fields(self, hdk_network, small_workload):
        origin = hdk_network.peer_ids()[0]
        _results, trace = hdk_network.query(
            origin, list(small_workload.pool[8]))
        summary = trace.summary()
        assert summary["terms"] == float(len(trace.query))
        assert summary["probed"] == float(trace.probed_count)
        assert summary["bytes"] == float(trace.bytes_sent)
        assert summary["results"] == float(len(trace.results))

    def test_probes_cover_full_lattice(self, hdk_network,
                                       small_workload):
        origin = hdk_network.peer_ids()[0]
        query = list(small_workload.pool[9])
        _results, trace = hdk_network.query(origin, query)
        assert len(trace.probes) == 2 ** len(trace.query) - 1
        assert trace.probed_count + trace.skipped_count == \
            len(trace.probes)

    def test_trace_query_is_canonical(self, hdk_network,
                                      small_workload):
        origin = hdk_network.peer_ids()[0]
        terms = list(small_workload.pool[3])
        _results, forward = hdk_network.query(origin, terms)
        _results, backward = hdk_network.query(origin,
                                               list(reversed(terms)))
        assert forward.query == backward.query == Key(terms)


class TestQueryTraceDataclass:
    def test_empty_trace_counts(self):
        trace = QueryTrace(query=Key(["a"]), origin=1)
        assert trace.probed_count == 0
        assert trace.skipped_count == 0
        assert trace.pruned_count == 0
        assert trace.cache_hit_rate == 0.0
        assert trace.summary()["probed"] == 0.0
        assert trace.summary()["pruned"] == 0.0


class TestByteAccountingReconciliation:
    """Regression tests for the bytes_by_kind vs bytes_sent audit:
    skipped/pruned/cache-served lattice nodes must never contribute
    probe bytes, and the two totals must reconcile in every engine
    configuration."""

    def _probe_message_count(self, network):
        metrics = network.simulator.metrics
        return (metrics.counter_value("net.msgs.sent.ProbeKey")
                + metrics.counter_value("net.msgs.sent.ProbeBatch"))

    def test_skipped_probes_send_no_probe_messages(self, hdk_network,
                                                   small_workload):
        origin = hdk_network.peer_ids()[0]
        for query in small_workload.pool[:10]:
            before = self._probe_message_count(hdk_network)
            _results, trace = hdk_network.query(origin, list(query))
            sent = self._probe_message_count(hdk_network) - before
            remote_probed = sum(
                1 for key, status in trace.probes
                if status not in (ProbeStatus.SKIPPED, ProbeStatus.PRUNED)
                and hdk_network.owner_peer_of_key(key.key_id) != origin)
            # One ProbeKey message per remote probed node; skipped nodes
            # contribute nothing.
            assert sent == remote_probed
            if trace.skipped_count == len(trace.probes):
                assert trace.bytes_by_kind.get("ProbeKey", 0) == 0

    @pytest.mark.parametrize("overrides", [
        {},
        {"batch_lookups": True},
        {"cache_bytes": 64 * 1024},
        {"batch_lookups": True, "cache_bytes": 64 * 1024,
         "topk_early_stop": True},
    ])
    def test_totals_reconcile_in_every_engine_config(
            self, small_corpus, small_workload, overrides):
        network = AlvisNetwork(num_peers=10,
                               config=AlvisConfig(**overrides), seed=2)
        network.distribute_documents(small_corpus.documents())
        network.build_index(mode="hdk")
        origin = network.peer_ids()[0]
        for query in small_workload.pool[:6] * 2:   # repeats hit caches
            _results, trace = network.query(origin, list(query))
            assert sum(trace.bytes_by_kind.values()) == trace.bytes_sent
            assert all(value > 0
                       for value in trace.bytes_by_kind.values())

    def test_cache_served_query_accounts_zero_bytes(self, small_corpus,
                                                    small_workload):
        network = AlvisNetwork(
            num_peers=10,
            config=AlvisConfig(batch_lookups=True,
                               cache_bytes=64 * 1024), seed=2)
        network.distribute_documents(small_corpus.documents())
        network.build_index(mode="hdk")
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[0])
        network.query(origin, query)
        before = network.bytes_sent_total()
        _results, warm = network.query(origin, query)
        assert network.bytes_sent_total() == before
        assert warm.bytes_sent == 0
        assert warm.bytes_by_kind == {}
        assert sum(warm.bytes_by_kind.values()) == warm.bytes_sent


class TestRefineDepartedOwner:
    """Sync-path failure parity: a document owner that departs between
    the probe and the refinement round-trip must degrade gracefully
    (keep the approximate scores), matching the async runtime's
    ``_refine`` — not crash the query with a DeliveryError."""

    def _network(self, small_corpus):
        network = AlvisNetwork(
            num_peers=10,
            config=AlvisConfig(refine_with_local_engines=True,
                               refine_pool_factor=3,
                               cache_bytes=64 * 1024), seed=3)
        network.distribute_documents(small_corpus.documents())
        network.build_index(mode="hdk")
        return network

    def test_refine_survives_departed_owner(self, small_corpus,
                                            small_workload):
        network = self._network(small_corpus)
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[2])
        results, _trace = network.query(origin, query, refine=True)
        assert results
        owners = {network.doc_owner(document.doc_id)
                  for document in results}
        owners.discard(origin)
        owners.discard(None)
        assert owners, "need a remote document owner for this test"
        # Half-dead departure: gone from the transport (requests drop)
        # but still the registered doc owner — exactly the mid-query
        # churn window.  The cache serves the probes, so the query
        # reaches refinement and must survive the dead owner there.
        departed = sorted(owners)[0]
        network.transport.unregister(departed)
        results_after, trace = network.query(origin, query, refine=True)
        assert results_after  # graceful: approximate scores kept
        assert {document.doc_id for document in results_after} == \
            {document.doc_id for document in results}
        assert trace.request_messages > 0

    def test_refined_scores_kept_for_live_owners(self, small_corpus,
                                                 small_workload):
        network = self._network(small_corpus)
        origin = network.peer_ids()[0]
        query = list(small_workload.pool[2])
        baseline, _trace = network.query(origin, query, refine=True)
        departed = sorted({network.doc_owner(document.doc_id)
                           for document in baseline}
                          - {origin, None})[0]
        network.transport.unregister(departed)
        refined, _trace = network.query(origin, query, refine=True)
        # Documents owned by live peers still carry exact scores.
        exact = {document.doc_id: document.score
                 for document in baseline
                 if network.doc_owner(document.doc_id) != departed}
        for document in refined:
            if document.doc_id in exact:
                assert document.score == pytest.approx(
                    exact[document.doc_id])

"""Tests for the scenario atlas (``repro.scenarios``).

The layer's contract: a named scenario is a *declarative* artifact — a
timeline plus pass criteria — and running one is deterministic under a
fixed seed, byte-identical reports included, through both the Python
API and the ``repro scenario`` CLI.
"""

import io
import json

import pytest

from repro.cli import main
from repro.scenarios import (PassCriteria, Scenario, ScenarioRunner,
                             WorkloadSpec, get_scenario, scenario_names)
from repro.scenarios.spec import (FlashCrowd, GracefulDeparture,
                                  JoinWave, Partition, SlowPeers)

EXPECTED_NAMES = ["baseline_poisson", "churn_storm", "flash_crowd",
                  "graceful_drain", "partition_heal", "slow_minority"]


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_atlas_contents(self):
        assert scenario_names() == EXPECTED_NAMES

    def test_every_scenario_declares_criteria(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            criteria = scenario.criteria
            bounds = (criteria.min_recall_at_k, criteria.max_p99_latency,
                      criteria.min_goodput_qps,
                      criteria.max_handover_bytes)
            assert any(bound is not None for bound in bounds), \
                f"{name} declares no pass criteria"
            assert scenario.description

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="baseline_poisson"):
            get_scenario("nope")

    def test_scaled_overrides(self):
        scenario = get_scenario("churn_storm")
        scaled = scenario.scaled(num_peers=24, queries=10)
        assert scaled.num_peers == 24
        assert scaled.workload.queries == 10
        assert scaled.name == scenario.name
        assert scaled.timeline == scenario.timeline
        # None means "keep the spec's own sizing".
        same = scenario.scaled()
        assert same == scenario


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

class TestSpecValidation:
    def test_event_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            JoinWave(at=0.1, count=0)
        with pytest.raises(ValueError):
            GracefulDeparture(at=0.1, count=-1)
        with pytest.raises(ValueError):
            FlashCrowd(at=0.1, queries=0, arrival_rate=100.0)

    def test_partition_fraction_bounds(self):
        with pytest.raises(ValueError):
            Partition(at=0.1, fraction=0.0)
        with pytest.raises(ValueError):
            Partition(at=0.1, fraction=1.0)

    def test_slow_peers_fraction_bounds(self):
        with pytest.raises(ValueError):
            SlowPeers(at=0.0, fraction=1.5)

    def test_criteria_evaluation(self):
        criteria = PassCriteria(min_recall_at_k=0.9,
                                max_p99_latency=0.5)
        results = criteria.evaluate(recall_at_k=0.95, latency_p99=0.7,
                                    goodput_qps=10.0, handover_bytes=0,
                                    completed_fraction=1.0)
        by_name = {result.name: result for result in results}
        assert by_name["recall_at_k"].passed
        assert not by_name["p99_latency"].passed
        assert "goodput_qps" not in by_name   # undeclared: not checked
        assert "0.7000 <= 0.5000" in str(by_name["p99_latency"])


# ----------------------------------------------------------------------
# Running scenarios
# ----------------------------------------------------------------------

def run_small_churn(seed=0):
    scenario = get_scenario("churn_storm").scaled(num_peers=12,
                                                  queries=12)
    return ScenarioRunner(scenario, seed=seed).run()


class TestRunner:
    def test_report_shape(self):
        report = run_small_churn()
        assert report.scenario == "churn_storm"
        assert report.queries_submitted == 12
        assert report.queries_completed == 12
        assert report.crashes >= 1
        assert report.joins >= 1
        payload = report.to_dict()
        assert payload["criteria"], "criteria missing from the dict form"
        assert isinstance(report.render(), str)
        assert "churn_storm" in report.render()
        # The JSON form round-trips.
        assert json.loads(report.to_json())["scenario"] == "churn_storm"

    def test_identical_reports_across_runs(self):
        first = run_small_churn()
        second = run_small_churn()
        assert first.to_json() == second.to_json()

    def test_seed_changes_the_story(self):
        assert run_small_churn(seed=0).to_json() != \
            run_small_churn(seed=7).to_json()

    def test_custom_scenario(self):
        scenario = Scenario(
            name="tiny", description="two-peer smoke",
            num_peers=6, num_documents=30, vocabulary_size=600,
            num_topics=3, pool_size=8,
            workload=WorkloadSpec(queries=5, arrival_rate=50.0),
            criteria=PassCriteria(min_recall_at_k=0.5))
        report = ScenarioRunner(scenario, seed=3).run()
        assert report.queries_completed == 5


# ----------------------------------------------------------------------
# The CLI surface
# ----------------------------------------------------------------------

def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_list(self):
        code, text = run_cli(["scenario", "list"])
        assert code == 0
        for name in EXPECTED_NAMES:
            assert name in text

    def test_run_is_deterministic(self):
        argv = ["scenario", "run", "churn_storm", "--seed", "0",
                "--json", "-"]
        code_a, text_a = run_cli(argv)
        code_b, text_b = run_cli(argv)
        assert code_a == code_b == 0     # churn_storm passes at seed 0
        assert text_a == text_b

    def test_run_scaled_down(self):
        code, text = run_cli(["scenario", "run", "baseline_poisson",
                              "--seed", "0", "--peers", "10",
                              "--queries", "8"])
        assert "baseline_poisson" in text
        assert "8" in text

    def test_unknown_scenario_exits_2(self):
        code, _text = run_cli(["scenario", "run", "nope"])
        assert code == 2

    def test_run_without_name_exits_2(self):
        code, _text = run_cli(["scenario", "run"])
        assert code == 2

    def test_json_to_file(self, tmp_path):
        target = tmp_path / "report.json"
        code, _text = run_cli(["scenario", "run", "baseline_poisson",
                               "--seed", "0", "--peers", "10",
                               "--queries", "8", "--json",
                               str(target)])
        payload = json.loads(target.read_text())
        assert payload["scenario"] == "baseline_poisson"
        assert payload["queries_submitted"] == 8

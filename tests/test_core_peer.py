"""Unit tests for the peer's message handlers (protocol conformance)."""

import pytest

from repro.core import protocol
from repro.core.config import AlvisConfig
from repro.core.global_index import KeyEntry
from repro.core.keys import Key
from repro.core.peer import AlvisPeer
from repro.ir.documents import Document
from repro.ir.postings import Posting, PostingList
from repro.net.message import Message


@pytest.fixture()
def peer():
    instance = AlvisPeer(peer_id=7, config=AlvisConfig())
    instance.publish_document(Document(
        doc_id=1, title="Alpha", text="alpha beta gamma alpha"))
    instance.publish_document(Document(
        doc_id=2, title="Beta", text="beta delta epsilon"))
    return instance


def _send(peer, kind, payload):
    return peer.on_message(Message(src=99, dst=peer.peer_id, kind=kind,
                                   payload=payload))


class TestDispatch:
    def test_unknown_kind_rejected(self, peer):
        with pytest.raises(ValueError):
            _send(peer, "Bogus", {})

    def test_lookup_hop_is_silent(self, peer):
        assert _send(peer, protocol.LOOKUP_HOP, {"key_id": 5}) is None


class TestStatisticsHandlers:
    def test_df_publish_get_roundtrip(self, peer):
        assert _send(peer, protocol.DF_PUBLISH,
                     {"dfs": {"x": 3, "y": 1}}) is None
        reply = _send(peer, protocol.DF_GET, {"terms": ["x", "y", "z"]})
        assert reply.kind == protocol.DF_REPLY
        assert reply.payload["dfs"] == {"x": 3, "y": 1, "z": 0}

    def test_collection_roundtrip(self, peer):
        _send(peer, protocol.COLLECTION_PUBLISH,
              {"peer": 1, "docs": 10, "terms": 400})
        _send(peer, protocol.COLLECTION_PUBLISH,
              {"peer": 2, "docs": 5, "terms": 100})
        reply = _send(peer, protocol.COLLECTION_GET, {})
        assert reply.payload == {"docs": 15, "terms": 500, "peers": 2}


class TestIndexHandlers:
    def test_publish_key_and_probe(self, peer):
        postings = PostingList([Posting(5, 1.0)])
        reply = _send(peer, protocol.PUBLISH_KEY, {
            "contributor": 3,
            "items": [{"key_terms": ["alpha"], "postings": postings,
                       "local_df": 1}]})
        assert reply.kind == protocol.PUBLISH_ACK
        assert reply.payload["accepted"] == 1
        probe = _send(peer, protocol.PROBE_KEY, {"key_terms": ["alpha"]})
        assert probe.payload["found"]
        assert probe.payload["postings"].doc_ids() == [5]

    def test_probe_missing_key(self, peer):
        probe = _send(peer, protocol.PROBE_KEY, {"key_terms": ["nope"]})
        assert not probe.payload["found"]
        assert probe.payload["postings"] is None

    def test_expand_notify_queues(self, peer):
        _send(peer, protocol.EXPAND_NOTIFY,
              {"key_terms": ["alpha"], "global_df": 999})
        assert peer.pending_expansions == [Key(["alpha"])]

    def test_contributors_get(self, peer):
        postings = PostingList([Posting(5, 1.0)])
        _send(peer, protocol.PUBLISH_KEY, {
            "contributor": 3,
            "items": [{"key_terms": ["alpha"], "postings": postings,
                       "local_df": 4}]})
        reply = _send(peer, protocol.CONTRIBUTORS_GET, {"term": "alpha"})
        assert reply.payload["contributors"] == {3: 4}

    def test_contributors_get_unknown_term(self, peer):
        reply = _send(peer, protocol.CONTRIBUTORS_GET, {"term": "zzz"})
        assert reply.payload["contributors"] == {}

    def test_harvest_key(self, peer):
        reply = _send(peer, protocol.HARVEST_KEY,
                      {"key_terms": ["alpha", "beta"], "k": 5})
        assert reply.kind == protocol.HARVEST_REPLY
        assert reply.payload["postings"].doc_ids() == [1]
        assert reply.payload["local_df"] == 1

    def test_harvest_respects_k(self, peer):
        reply = _send(peer, protocol.HARVEST_KEY,
                      {"key_terms": ["beta"], "k": 1})
        assert len(reply.payload["postings"]) == 1
        assert reply.payload["local_df"] == 2

    def test_handover_installs_entries(self, peer):
        entry = KeyEntry(key=Key(["zeta"]),
                         postings=PostingList([Posting(9, 1.0)]),
                         global_df=1, contributors={2: 1})
        _send(peer, protocol.HANDOVER, {"entries": [entry]})
        assert peer.fragment.get(Key(["zeta"])) is entry


class TestRetrievalHandlers:
    def test_refine_query_scores_owned_docs_only(self, peer):
        reply = _send(peer, protocol.REFINE_QUERY,
                      {"terms": ["alpha"], "doc_ids": [1, 2, 999]})
        scores = reply.payload["scores"]
        assert set(scores) == {1, 2}
        assert scores[1] > scores[2] == 0.0

    def test_doc_fetch_public(self, peer):
        reply = _send(peer, protocol.DOC_FETCH,
                      {"doc_id": 1, "credentials": None,
                       "terms": ["alpha"]})
        assert reply.payload["ok"]
        assert reply.payload["title"] == "Alpha"
        assert "alpha" in reply.payload["snippet"]

    def test_doc_fetch_not_found(self, peer):
        reply = _send(peer, protocol.DOC_FETCH,
                      {"doc_id": 12345, "credentials": None})
        assert not reply.payload["ok"]
        assert reply.payload["error"] == "not-found"

    def test_doc_fetch_access_denied(self, peer):
        from repro.core.access import AccessPolicy
        peer.access.set_policy(1, AccessPolicy.password("u", "p"))
        denied = _send(peer, protocol.DOC_FETCH,
                       {"doc_id": 1, "credentials": None})
        assert denied.payload["error"] == "access-denied"
        granted = _send(peer, protocol.DOC_FETCH,
                        {"doc_id": 1, "credentials": ["u", "p"]})
        assert granted.payload["ok"]

    def test_feedback_ignored_without_qdi(self, peer):
        assert _send(peer, protocol.FEEDBACK,
                     {"key_terms": ["a", "b"], "redundant": False}) is None


class TestLocalManagement:
    def test_publish_sets_owner(self, peer):
        assert peer.engine.store.get(1).owner_peer == 7

    def test_unpublish(self, peer):
        peer.unpublish_document(1)
        assert peer.engine.store.get(1) is None
        assert peer.engine.num_documents == 1

    def test_local_df_contributions(self, peer):
        contributions = peer.local_df_contributions()
        assert contributions["alpha"] == 1
        assert contributions["beta"] == 2

    def test_collection_report(self, peer):
        docs, terms = peer.collection_report()
        assert docs == 2
        assert terms == 7

"""Cross-backend equivalence: simulator vs a real multi-process cluster.

Spawns an actual second OS process hosting half the peers, runs the
same fixed-seed query set against the discrete-event simulator and over
localhost UDP, and asserts identical top-k result lists — the
acceptance bar for the pluggable-transport refactor.  Kept small (one
extra process, built-in sample corpus) so the whole file stays well
inside the CI smoke job's 90-second budget.
"""

import pytest

from repro.cluster import ClusterDriver, ClusterSpec, build_network
from repro.cluster.host import peers_for_host, state_fingerprint

SPEC = dict(num_peers=8, num_hosts=2, seed=7, mode="hdk",
            request_timeout=5.0)
QUERIES = [["peer", "retrieval"], ["index"], ["network", "peer"],
           ["document", "ranking"]]


def _top_k(results):
    return [(document.doc_id, round(document.score, 9))
            for document in results]


@pytest.fixture(scope="module")
def sim_reference():
    """Top-k lists from the default (simulator) backend."""
    network = build_network(ClusterSpec(**SPEC))
    origin = sorted(network.peer_ids())[0]
    return origin, [_top_k(network.query(origin, query)[0])
                    for query in QUERIES]


@pytest.fixture(scope="module")
def cluster():
    driver = ClusterDriver(ClusterSpec(**SPEC))
    driver.start(join_timeout=60.0)
    yield driver
    driver.close()


class TestDeterministicBuild:
    def test_twin_builds_share_a_fingerprint(self):
        spec = ClusterSpec(**SPEC)
        assert state_fingerprint(build_network(spec)) == \
            state_fingerprint(build_network(spec))

    def test_positional_assignment_partitions_peers(self):
        network = build_network(ClusterSpec(**SPEC))
        slices = [peers_for_host(network, host, 2) for host in range(2)]
        assert sorted(slices[0] + slices[1]) == sorted(network.peer_ids())
        assert not set(slices[0]) & set(slices[1])


class TestCrossBackendEquivalence:
    def test_hosts_joined_with_matching_state(self, cluster):
        assert set(cluster._hosts) == {1}
        _addr, fingerprint = cluster._hosts[1]
        assert fingerprint == cluster.fingerprint

    def test_sync_top_k_identical_to_simulator(self, cluster,
                                               sim_reference):
        origin, expected = sim_reference
        for query, reference in zip(QUERIES, expected):
            results, trace = cluster.run_query(origin, query)
            assert _top_k(results) == reference
            assert trace.dropped_count == 0

    def test_async_top_k_identical_to_simulator(self, cluster,
                                                sim_reference):
        origin, expected = sim_reference
        jobs = cluster.run_open_workload(
            QUERIES, origins=[origin], arrival_rate=100.0, timeout=60.0)
        assert [_top_k(job.results) for job in jobs] == expected
        assert all(job.done for job in jobs)
        # Wall-clock latencies: non-negative, and zero only for queries
        # served entirely from the probe cache the sync pass warmed.
        assert all(job.trace.latency >= 0 for job in jobs)

    def test_traffic_really_crossed_the_wire(self, cluster):
        assert cluster.transport.datagrams_sent > 0
        assert cluster.transport.datagrams_received > 0
        assert cluster.transport.decode_errors == 0

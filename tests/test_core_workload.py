"""Tests for the redesigned workload API (``repro.core.workload``).

The load-bearing properties: the legacy ``run_queries`` signature is now
a thin shim over ``Workload``/``run_workload`` with *identical* traffic
and traces under a fixed seed, and origin selection no longer shares an
RNG stream with interarrival gaps (the old coupling made arrival times
depend on whether origins were pinned).
"""

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.core.workload import (PoissonArrivals, RoundRobinOrigins,
                                 Submission, UniformOrigins, Workload)
from repro.corpus import sample_documents
from repro.util.rng import make_rng

QUERIES = ["scalable peer retrieval",
           "posting list truncation",
           "congestion control",
           "latent semantic indexing"]


def build_network(**overrides):
    overrides.setdefault("async_queries", True)
    config = AlvisConfig(**overrides)
    network = AlvisNetwork(num_peers=8, config=config, seed=42)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network


def doc_ids(jobs):
    return [[document.doc_id for document in job.results]
            for job in jobs]


def trace_fingerprint(jobs):
    return [(job.origin, tuple(job.terms), job.trace.started_at,
             job.trace.latency, job.trace.bytes_sent,
             job.trace.probes) for job in jobs]


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

class TestSpecs:
    def test_poisson_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError, match="arrival_rate"):
            PoissonArrivals(rate=-3.0)

    def test_round_robin_needs_origins(self):
        with pytest.raises(ValueError, match="origins"):
            RoundRobinOrigins(())

    def test_round_robin_cycles(self):
        policy = RoundRobinOrigins((3, 7))
        rng = make_rng(0, "unused")
        picks = [policy.pick(rng, index, [0, 1, 2, 3, 7])
                 for index in range(5)]
        assert picks == [3, 7, 3, 7, 3]

    def test_compile_is_pure_and_ordered(self):
        workload = Workload(queries=(("a",), ("b",), ("c",)),
                            arrival=PoissonArrivals(rate=10.0),
                            origins=RoundRobinOrigins((1, 2)))
        submissions = workload.compile(make_rng(0, "arrivals"),
                                       make_rng(0, "origins"),
                                       [1, 2, 3], start=5.0)
        assert [s.query for s in submissions] == [("a",), ("b",), ("c",)]
        assert [s.origin for s in submissions] == [1, 2, 1]
        assert all(isinstance(s, Submission) for s in submissions)
        arrivals = [s.at for s in submissions]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 5.0


# ----------------------------------------------------------------------
# Shim equivalence: old signature == new API, byte for byte
# ----------------------------------------------------------------------

class TestShimEquivalence:
    def test_uniform_origins_identical(self):
        old = build_network()
        new = build_network()
        old_jobs = old.run_queries(QUERIES, arrival_rate=40.0)
        new_jobs = new.run_workload(
            Workload(queries=tuple(QUERIES),
                     arrival=PoissonArrivals(rate=40.0),
                     origins=UniformOrigins()))
        assert doc_ids(old_jobs) == doc_ids(new_jobs)
        assert trace_fingerprint(old_jobs) == trace_fingerprint(new_jobs)
        assert old.bytes_by_kind() == new.bytes_by_kind()

    def test_pinned_origins_identical(self):
        old = build_network()
        new = build_network()
        origins = old.peer_ids()[:3]
        old_jobs = old.run_queries(QUERIES, origins=origins,
                                   arrival_rate=40.0)
        new_jobs = new.run_workload(
            Workload(queries=tuple(QUERIES),
                     arrival=PoissonArrivals(rate=40.0),
                     origins=RoundRobinOrigins(tuple(origins))))
        assert doc_ids(old_jobs) == doc_ids(new_jobs)
        assert trace_fingerprint(old_jobs) == trace_fingerprint(new_jobs)
        assert old.bytes_by_kind() == new.bytes_by_kind()

    def test_requires_async_queries(self):
        network = build_network(async_queries=False)
        with pytest.raises(ValueError, match="async_queries"):
            network.run_queries(QUERIES)


# ----------------------------------------------------------------------
# The RNG-stream bugfix: origin choice no longer perturbs arrivals
# ----------------------------------------------------------------------

class TestStreamSeparation:
    def test_arrival_times_independent_of_origin_policy(self):
        """Pinning origins must not change *when* queries arrive.

        In the old ``run_queries`` the uniform origin draws and the
        exponential gap draws interleaved on one stream, so the two
        call forms produced different arrival schedules.  With derived
        per-purpose streams the schedules are identical.
        """
        uniform = build_network()
        pinned = build_network()
        uniform_jobs = uniform.run_queries(QUERIES, arrival_rate=40.0)
        pinned_jobs = pinned.run_queries(
            QUERIES, origins=pinned.peer_ids()[:2], arrival_rate=40.0)
        assert [job.trace.started_at for job in uniform_jobs] == \
            [job.trace.started_at for job in pinned_jobs]

    def test_consecutive_workloads_use_fresh_streams(self):
        network = build_network()
        first = network.run_queries(QUERIES, arrival_rate=40.0)
        second = network.run_queries(QUERIES, arrival_rate=40.0)
        # Different derived streams: same queries, fresh schedule.
        gaps_first = [job.trace.started_at for job in first]
        start = gaps_first[-1]
        gaps_second = [job.trace.started_at - start for job in second]
        assert gaps_first != gaps_second
        # But both complete with identical result sets per query.
        assert doc_ids(first) == doc_ids(second)

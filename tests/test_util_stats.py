"""Tests for repro.util.stats."""

import math
import random

import pytest

from repro.util.stats import (
    RunningStats,
    gini_coefficient,
    max_over_mean,
    percentile,
    summarize,
)


class TestPercentile:
    def test_median_even(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 0, 100]) > 0.7

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_bounded(self):
        rng = random.Random(0)
        for _ in range(20):
            values = [rng.random() * 10 for _ in range(30)]
            g = gini_coefficient(values)
            assert 0 <= g < 1

    def test_scale_invariant(self):
        values = [1, 2, 3, 4, 5]
        scaled = [10 * v for v in values]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(scaled))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])


class TestMaxOverMean:
    def test_balanced_is_one(self):
        assert max_over_mean([4, 4, 4]) == pytest.approx(1.0)

    def test_hot_spot(self):
        assert max_over_mean([1, 1, 10]) == pytest.approx(2.5)

    def test_all_zero(self):
        assert max_over_mean([0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_over_mean([])


class TestSummarize:
    def test_fields_present(self):
        report = summarize([1, 2, 3])
        for field in ("n", "mean", "std", "min", "p50", "p90", "p99",
                      "max"):
            assert field in report

    def test_values(self):
        report = summarize([2, 4, 6])
        assert report["mean"] == pytest.approx(4.0)
        assert report["min"] == 2
        assert report["max"] == 6
        assert report["n"] == 3

    def test_std_population(self):
        report = summarize([1, 3])
        assert report["std"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRunningStats:
    def test_matches_batch_computation(self):
        rng = random.Random(1)
        values = [rng.gauss(5, 2) for _ in range(1000)]
        running = RunningStats()
        running.add_all(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert running.mean == pytest.approx(mean)
        assert running.variance == pytest.approx(variance)
        assert running.std == pytest.approx(math.sqrt(variance))
        assert running.minimum == min(values)
        assert running.maximum == max(values)
        assert running.count == 1000

    def test_empty_raises(self):
        empty = RunningStats()
        with pytest.raises(ValueError):
            _ = empty.mean
        with pytest.raises(ValueError):
            _ = empty.variance
        with pytest.raises(ValueError):
            _ = empty.minimum

    def test_merge_equivalent_to_union(self):
        rng = random.Random(2)
        first = [rng.random() for _ in range(100)]
        second = [rng.random() * 3 for _ in range(57)]
        a = RunningStats()
        a.add_all(first)
        b = RunningStats()
        b.add_all(second)
        merged = a.merge(b)
        combined = RunningStats()
        combined.add_all(first + second)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add_all([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)
        merged2 = RunningStats().merge(a)
        assert merged2.count == 2

"""Tests for the per-peer global-index fragment."""

import pytest

from repro.core.global_index import GlobalIndexFragment, KeyEntry
from repro.core.keys import Key
from repro.ir.postings import Posting, PostingList


def _postings(*doc_ids, df=None):
    plist = PostingList([Posting(doc_id, 1.0 / (doc_id + 1))
                         for doc_id in doc_ids])
    if df is not None:
        plist = PostingList(plist.entries, global_df=df)
    return plist


class TestPublish:
    def test_single_contributor(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        key = Key(["a"])
        entry = fragment.publish(key, _postings(1, 2), local_df=2,
                                 contributor=7)
        assert entry.global_df == 2
        assert entry.contributors == {7: 2}
        assert entry.postings.doc_ids() == [1, 2]
        assert not entry.postings.truncated

    def test_aggregation_across_contributors(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        key = Key(["a"])
        fragment.publish(key, _postings(1), local_df=1, contributor=7)
        entry = fragment.publish(key, _postings(2, 3), local_df=2,
                                 contributor=8)
        assert entry.global_df == 3
        assert set(entry.postings.doc_ids()) == {1, 2, 3}
        assert entry.contributors == {7: 1, 8: 2}

    def test_republish_is_idempotent_on_df(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        key = Key(["a"])
        fragment.publish(key, _postings(1, 2), local_df=2, contributor=7)
        entry = fragment.publish(key, _postings(1, 2), local_df=2,
                                 contributor=7)
        assert entry.global_df == 2
        assert entry.contributors == {7: 2}

    def test_truncation_enforced(self):
        fragment = GlobalIndexFragment(truncation_k=2)
        key = Key(["a"])
        entry = fragment.publish(key, _postings(1, 2, 3, 4), local_df=4,
                                 contributor=7)
        assert len(entry.postings) == 2
        assert entry.postings.global_df == 4
        assert entry.postings.truncated

    def test_truncation_keeps_best_scores_across_publishes(self):
        fragment = GlobalIndexFragment(truncation_k=2)
        key = Key(["a"])
        low = PostingList([Posting(10, 0.1), Posting(11, 0.2)])
        high = PostingList([Posting(20, 0.9), Posting(21, 0.8)])
        fragment.publish(key, low, local_df=2, contributor=1)
        entry = fragment.publish(key, high, local_df=2, contributor=2)
        assert entry.postings.doc_ids() == [20, 21]
        assert entry.global_df == 4

    def test_invalid_truncation_k(self):
        with pytest.raises(ValueError):
            GlobalIndexFragment(truncation_k=0)


class TestPopularityAndEviction:
    def test_record_creates_shadow_entry(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["x", "y"])
        assert fragment.record_popularity(key) == 1.0
        assert fragment.record_popularity(key) == 2.0
        entry = fragment.get(key)
        assert entry is not None
        assert not entry.postings

    def test_decay(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["x"])
        fragment.record_popularity(key, weight=4.0)
        fragment.decay_popularity(0.5)
        assert fragment.get(key).popularity == pytest.approx(2.0)

    def test_decay_invalid_factor(self):
        with pytest.raises(ValueError):
            GlobalIndexFragment(truncation_k=5).decay_popularity(1.5)

    def test_evict_shadow_entries(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["x", "y"])
        fragment.record_popularity(key, weight=0.1)
        evicted = fragment.evict_below(0.5)
        assert evicted == [key]
        assert fragment.get(key) is None

    def test_evict_on_demand_keys_only(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        hdk_key = Key(["a", "b"])
        qdi_key = Key(["c", "d"])
        single = Key(["e"])
        fragment.publish(hdk_key, _postings(1), 1, contributor=1)
        fragment.publish(qdi_key, _postings(2), 1, contributor=1,
                         on_demand=True)
        fragment.publish(single, _postings(3), 1, contributor=1,
                         on_demand=True)
        evicted = fragment.evict_below(0.5)
        assert qdi_key in evicted        # on-demand multi-term: evictable
        assert hdk_key not in evicted    # HDK backbone: kept
        assert single not in evicted     # single-term: kept

    def test_popular_on_demand_key_survives(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["c", "d"])
        fragment.publish(key, _postings(2), 1, contributor=1,
                         on_demand=True)
        fragment.record_popularity(key, weight=3.0)
        assert fragment.evict_below(0.5) == []


class TestSameRoundProtection:
    """The record→decay→evict contract: keys bumped in the current
    round are passed as a protect set and survive that round's decay
    and eviction untouched (regression for the maintenance-order bug
    where same-round feedback was halved and then evicted)."""

    def test_decay_skips_protected_keys(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        bumped = Key(["x", "y"])
        stale = Key(["u", "v"])
        fragment.record_popularity(bumped, weight=1.0)
        fragment.record_popularity(stale, weight=1.0)
        fragment.decay_popularity(0.5, protect={bumped})
        assert fragment.get(bumped).popularity == pytest.approx(1.0)
        assert fragment.get(stale).popularity == pytest.approx(0.5)

    def test_same_round_feedback_survives_maintenance(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["x", "y"])
        fragment.record_popularity(key, weight=1.0)
        protect = {key}
        # Without protection 1.0 would decay to 0.5 < 0.6 and the shadow
        # entry would be dropped by the very round its feedback arrived
        # in; the explicit order keeps it alive.
        fragment.decay_popularity(0.5, protect=protect)
        assert fragment.evict_below(0.6, protect=protect) == []
        assert fragment.get(key) is not None
        assert fragment.get(key).popularity == pytest.approx(1.0)
        # Next round, unbumped: it ages and goes as usual.
        fragment.decay_popularity(0.5)
        assert fragment.evict_below(0.6) == [key]

    def test_eviction_protection_only_lasts_one_round(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        key = Key(["c", "d"])
        fragment.publish(key, _postings(2), 1, contributor=1,
                         on_demand=True)
        fragment.record_popularity(key, weight=0.4)
        assert fragment.evict_below(0.5, protect={key}) == []
        assert fragment.evict_below(0.5) == [key]


class TestStorageAndHandover:
    def test_storage_accounting(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        assert fragment.storage_bytes() == 0
        fragment.publish(Key(["a"]), _postings(1, 2), 2, contributor=1)
        assert fragment.storage_bytes() > 0
        assert fragment.postings_stored() == 2

    def test_entries_in_range(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        keys = [Key([f"t{index}"]) for index in range(30)]
        for key in keys:
            fragment.publish(key, _postings(1), 1, contributor=1)
        lo = keys[0].key_id
        hi = keys[1].key_id
        inside = fragment.entries_in_range(lo, hi)
        for entry in inside:
            from repro.dht.idspace import clockwise_distance
            offset = clockwise_distance(lo, entry.key.key_id)
            assert 0 < offset <= clockwise_distance(lo, hi)

    def test_extract_range_removes(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        keys = [Key([f"t{index}"]) for index in range(10)]
        for key in keys:
            fragment.publish(key, _postings(1), 1, contributor=1)
        total = len(fragment)
        # Extract everything: the full ring interval (lo == hi covers all
        # but lo itself; use two sweeps).
        anchor = keys[0].key_id
        moved = fragment.extract_range(anchor, (anchor - 1) % (2 ** 64))
        assert len(moved) + len(fragment) == total

    def test_install_and_remove(self):
        fragment = GlobalIndexFragment(truncation_k=10)
        entry = KeyEntry(key=Key(["z"]), postings=_postings(1),
                         global_df=1, contributors={3: 1})
        fragment.install(entry)
        assert fragment.get(Key(["z"])) is entry
        removed = fragment.remove(Key(["z"]))
        assert removed is entry
        with pytest.raises(KeyError):
            fragment.remove(Key(["z"]))

    def test_wire_size_positive(self):
        entry = KeyEntry(key=Key(["z"]), postings=_postings(1, 2),
                         global_df=2, contributors={3: 2})
        assert entry.wire_size() > 0
        assert entry.wire_size() == entry.storage_bytes()

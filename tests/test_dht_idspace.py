"""Tests for the identifier space and key hashing."""

import random

import pytest

from repro.dht.hashing import hash_string, hash_terms
from repro.dht.idspace import (
    ID_BITS,
    ID_SPACE,
    clockwise_distance,
    in_interval,
    random_id,
)


class TestClockwiseDistance:
    def test_forward(self):
        assert clockwise_distance(10, 15) == 5

    def test_wrapping(self):
        assert clockwise_distance(15, 10) == ID_SPACE - 5

    def test_zero(self):
        assert clockwise_distance(7, 7) == 0

    def test_asymmetric(self):
        a, b = 100, 200
        assert clockwise_distance(a, b) + clockwise_distance(b, a) \
            == ID_SPACE

    def test_full_range(self):
        assert clockwise_distance(0, ID_SPACE - 1) == ID_SPACE - 1


class TestInInterval:
    def test_simple_inside(self):
        assert in_interval(5, 3, 8)

    def test_left_end_exclusive(self):
        assert not in_interval(3, 3, 8)

    def test_right_end_inclusive_by_default(self):
        assert in_interval(8, 3, 8)

    def test_right_end_exclusive_option(self):
        assert not in_interval(8, 3, 8, inclusive_right=False)

    def test_outside(self):
        assert not in_interval(9, 3, 8)

    def test_wrapped_interval(self):
        assert in_interval(1, 250, 10)
        assert in_interval(255, 250, 10)
        assert not in_interval(100, 250, 10)

    def test_degenerate_interval_spans_ring(self):
        assert in_interval(5, 3, 3)
        assert in_interval(3, 3, 3)  # right end inclusive
        assert not in_interval(3, 3, 3, inclusive_right=False)


class TestRandomId:
    def test_in_range(self):
        rng = random.Random(0)
        for _ in range(100):
            value = random_id(rng)
            assert 0 <= value < ID_SPACE

    def test_deterministic(self):
        assert random_id(random.Random(7)) == random_id(random.Random(7))


class TestHashing:
    def test_hash_string_in_range(self):
        for value in ("", "a", "hello world", "x" * 1000):
            assert 0 <= hash_string(value) < ID_SPACE

    def test_hash_string_deterministic(self):
        assert hash_string("abc") == hash_string("abc")

    def test_hash_string_spreads(self):
        values = {hash_string(f"term-{index}") for index in range(1000)}
        assert len(values) == 1000

    def test_hash_terms_order_independent(self):
        assert hash_terms(["b", "a"]) == hash_terms(["a", "b"])
        assert hash_terms(["c", "a", "b"]) == hash_terms(["b", "c", "a"])

    def test_hash_terms_distinct_combinations_differ(self):
        assert hash_terms(["a"]) != hash_terms(["a", "b"])
        assert hash_terms(["a", "b"]) != hash_terms(["a", "c"])

    def test_hash_terms_no_separator_collision(self):
        # ("ab",) must not collide with ("a", "b").
        assert hash_terms(["ab"]) != hash_terms(["a", "b"])

    def test_roughly_uniform(self):
        # Bucket 4096 hashes into 16 bins; expect no pathological skew.
        bins = [0] * 16
        for index in range(4096):
            bins[hash_string(f"k{index}") >> (ID_BITS - 4)] += 1
        assert max(bins) < 2.0 * (4096 / 16)
        assert min(bins) > 0.4 * (4096 / 16)

"""Tests for index-fragment persistence."""

import json

import pytest

from repro.core.global_index import GlobalIndexFragment, KeyEntry
from repro.core.keys import Key
from repro.core.network import AlvisNetwork
from repro.core.persistence import (
    entry_from_dict,
    entry_to_dict,
    fragment_from_dict,
    fragment_to_dict,
    load_fragment,
    load_network_index,
    save_fragment,
    save_network_index,
)
from repro.corpus.loader import sample_documents
from repro.ir.postings import Posting, PostingList


def _entry():
    return KeyEntry(
        key=Key(["alpha", "beta"]),
        postings=PostingList([Posting(1, 2.5), Posting(2, 1.0)],
                             global_df=7),
        global_df=7,
        contributors={11: 4, 22: 3},
        popularity=1.5,
        on_demand=True,
    )


class TestEntryRoundtrip:
    def test_roundtrip_preserves_fields(self):
        original = _entry()
        restored = entry_from_dict(entry_to_dict(original))
        assert restored.key == original.key
        assert restored.postings.doc_ids() == original.postings.doc_ids()
        assert restored.postings.global_df == 7
        assert restored.postings.truncated
        assert restored.global_df == 7
        assert restored.contributors == {11: 4, 22: 3}
        assert restored.popularity == 1.5
        assert restored.on_demand

    def test_dict_is_json_safe(self):
        json.dumps(entry_to_dict(_entry()))

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            entry_from_dict({"key": ["a"]})


class TestFragmentRoundtrip:
    def test_roundtrip(self):
        fragment = GlobalIndexFragment(truncation_k=5)
        fragment.install(_entry())
        fragment.publish(Key(["gamma"]),
                         PostingList([Posting(3, 0.5)]), 1,
                         contributor=9)
        restored = fragment_from_dict(fragment_to_dict(fragment))
        assert restored.truncation_k == 5
        assert len(restored) == 2
        assert restored.get(Key(["alpha", "beta"])) is not None
        assert restored.get(Key(["gamma"])).contributors == {9: 1}

    def test_unknown_version_rejected(self):
        data = fragment_to_dict(GlobalIndexFragment(truncation_k=5))
        data["version"] = 99
        with pytest.raises(ValueError):
            fragment_from_dict(data)

    def test_file_roundtrip(self, tmp_path):
        fragment = GlobalIndexFragment(truncation_k=5)
        fragment.install(_entry())
        path = str(tmp_path / "fragment.json")
        save_fragment(fragment, path)
        restored = load_fragment(path)
        assert len(restored) == 1


class TestNetworkIndexRoundtrip:
    def test_save_restore_preserves_query_results(self, tmp_path):
        network = AlvisNetwork(num_peers=5, seed=81)
        network.distribute_documents(sample_documents())
        network.build_index(mode="hdk")
        origin = network.peer_ids()[0]
        baseline, _ = network.query(origin, "document digest")
        path = str(tmp_path / "index.json")
        save_network_index(network, path)
        # Simulate restart: wipe every fragment, then restore.
        for peer in network.peers():
            peer.fragment = GlobalIndexFragment(
                network.config.truncation_k)
        empty, _ = network.query(origin, "document digest")
        assert empty == []
        restored = load_network_index(network, path)
        assert restored == 5
        assert network.mode == "hdk"
        after, _ = network.query(origin, "document digest")
        assert [doc.doc_id for doc in after] == \
            [doc.doc_id for doc in baseline]

    def test_departed_peers_skipped(self, tmp_path):
        network = AlvisNetwork(num_peers=5, seed=82)
        network.distribute_documents(sample_documents())
        network.build_index(mode="hdk")
        path = str(tmp_path / "index.json")
        save_network_index(network, path)
        network.fail_peer(network.peer_ids()[0])
        restored = load_network_index(network, path)
        assert restored == 4

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "fragments": {}}))
        network = AlvisNetwork(num_peers=2, seed=83)
        with pytest.raises(ValueError):
            load_network_index(network, str(path))

"""Tests for query-lattice exploration — including the paper's Figure 1
example verbatim."""

import pytest

from repro.core.keys import Key
from repro.core.lattice import LatticeExplorer, ProbeStatus
from repro.ir.postings import Posting, PostingList


def _index_probe(index):
    """Build a probe function over {Key: PostingList}."""
    def probe(key):
        postings = index.get(key)
        if postings is None:
            return False, None
        return True, postings
    return probe


def _complete(*doc_ids):
    return PostingList([Posting(doc_id, 1.0) for doc_id in doc_ids])


def _truncated(*doc_ids, df=100):
    return PostingList([Posting(doc_id, 1.0) for doc_id in doc_ids],
                       global_df=df)


class TestFigureOne:
    """The exact scenario of Figure 1: query {a,b,c}; bc is indexed with a
    truncated list; ab and ac are not indexed; single terms indexed with
    truncated lists.  Expected: abc, ab, ac, bc, a probed; b, c skipped."""

    def _outcome(self):
        index = {
            Key(["b", "c"]): _truncated(1, 2),
            Key(["a"]): _truncated(3),
            Key(["b"]): _truncated(1),
            Key(["c"]): _truncated(2),
        }
        explorer = LatticeExplorer(prune_on_truncated=True)
        return explorer.explore(["a", "b", "c"], _index_probe(index))

    def test_statuses(self):
        outcome = self._outcome()
        status = {record.key: record.status for record in outcome.records}
        assert status[Key(["a", "b", "c"])] == ProbeStatus.MISSING
        assert status[Key(["a", "b"])] == ProbeStatus.MISSING
        assert status[Key(["a", "c"])] == ProbeStatus.MISSING
        assert status[Key(["b", "c"])] == ProbeStatus.TRUNCATED
        assert status[Key(["a"])] == ProbeStatus.TRUNCATED
        assert status[Key(["b"])] == ProbeStatus.SKIPPED
        assert status[Key(["c"])] == ProbeStatus.SKIPPED

    def test_counts(self):
        outcome = self._outcome()
        assert outcome.probed_count == 5
        assert outcome.skipped_count == 2

    def test_result_is_union_of_bc_and_a(self):
        outcome = self._outcome()
        assert set(outcome.retrieved) == {Key(["b", "c"]), Key(["a"])}


class TestDominationPruning:
    def test_untruncated_full_query_skips_everything(self):
        index = {Key(["a", "b", "c"]): _complete(1, 2, 3)}
        outcome = LatticeExplorer().explore(["a", "b", "c"],
                                            _index_probe(index))
        assert outcome.probed_count == 1
        assert outcome.skipped_count == 6

    def test_untruncated_pruning_always_on(self):
        # Even with prune_on_truncated=False, complete lists prune.
        index = {Key(["a", "b"]): _complete(1), Key(["a"]): _complete(1),
                 Key(["b"]): _complete(1), Key(["c"]): _complete(9)}
        explorer = LatticeExplorer(prune_on_truncated=False)
        outcome = explorer.explore(["a", "b", "c"], _index_probe(index))
        status = {record.key: record.status for record in outcome.records}
        assert status[Key(["a"])] == ProbeStatus.SKIPPED
        assert status[Key(["b"])] == ProbeStatus.SKIPPED
        assert status[Key(["c"])] == ProbeStatus.UNTRUNCATED

    def test_no_truncated_pruning_when_disabled(self):
        index = {Key(["a", "b"]): _truncated(1),
                 Key(["a"]): _complete(1, 2),
                 Key(["b"]): _complete(1, 3)}
        explorer = LatticeExplorer(prune_on_truncated=False)
        outcome = explorer.explore(["a", "b"], _index_probe(index))
        # Truncated ab does not prune; a and b are probed.
        assert outcome.probed_count == 3
        assert outcome.skipped_count == 0

    def test_truncated_pruning_when_enabled(self):
        index = {Key(["a", "b"]): _truncated(1),
                 Key(["a"]): _complete(1, 2),
                 Key(["b"]): _complete(1, 3)}
        explorer = LatticeExplorer(prune_on_truncated=True)
        outcome = explorer.explore(["a", "b"], _index_probe(index))
        assert outcome.probed_count == 1
        assert outcome.skipped_count == 2


class TestExplorationMisc:
    def test_single_term_query(self):
        index = {Key(["a"]): _complete(1)}
        outcome = LatticeExplorer().explore(["a"], _index_probe(index))
        assert outcome.probed_count == 1
        assert outcome.retrieved[Key(["a"])].doc_ids() == [1]

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            LatticeExplorer().explore([], _index_probe({}))

    def test_duplicate_terms_collapsed(self):
        index = {Key(["a"]): _complete(1)}
        outcome = LatticeExplorer().explore(["a", "a"],
                                            _index_probe(index))
        assert outcome.query == Key(["a"])
        assert outcome.probed_count == 1

    def test_max_lattice_terms_bounds_query(self):
        explorer = LatticeExplorer(max_lattice_terms=3)
        probed = []

        def probe(key):
            probed.append(key)
            return False, None

        outcome = explorer.explore(["a", "b", "c", "d", "e"], probe)
        assert len(outcome.query) == 3
        assert len(probed) == 7  # 2^3 - 1

    def test_missing_everything(self):
        outcome = LatticeExplorer().explore(["a", "b"], _index_probe({}))
        assert outcome.probed_count == 3
        assert outcome.retrieved == {}
        assert len(outcome.missing_keys()) == 3

    def test_covered_by_untruncated(self):
        index = {Key(["a", "b"]): _complete(1)}
        outcome = LatticeExplorer().explore(["a", "b", "c"],
                                            _index_probe(index))
        assert outcome.covered_by_untruncated(Key(["a"]))
        assert outcome.covered_by_untruncated(Key(["a", "b"]))
        assert not outcome.covered_by_untruncated(Key(["c"]))
        assert not outcome.covered_by_untruncated(Key(["a", "b", "c"]))

    def test_records_in_descending_size_order(self):
        outcome = LatticeExplorer().explore(["a", "b", "c"],
                                            _index_probe({}))
        sizes = [len(record.key) for record in outcome.records]
        assert sizes == sorted(sizes, reverse=True)

    def test_invalid_max_terms_rejected(self):
        with pytest.raises(ValueError):
            LatticeExplorer(max_lattice_terms=0)

"""RPL03x wire-schema checker + the golden schema-extraction test."""

from __future__ import annotations

from pathlib import Path

from repro.lint.checkers import wire_schema
from repro.lint.source import Project
from repro.net import protocol, wire
from repro.core import replication
from repro.core.peer import AlvisPeer

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(project):
    return list(wire_schema.check(project))


def by_code(findings, code):
    return [f for f in findings if f.code == code]


# ----------------------------------------------------------------------
# Golden test: the statically-extracted schema IS the live codec schema.
# ----------------------------------------------------------------------

def test_extracted_schema_matches_live_codec():
    project = Project.load([REPO_ROOT / "src"], REPO_ROOT)
    assert wire_schema.extracted_message_kinds(project) == \
        wire.message_kinds()


def test_message_kinds_covers_every_protocol_constant():
    kinds = set(wire.message_kinds())
    for name in protocol.__all__:
        value = getattr(protocol, name)
        if not isinstance(value, str):
            continue  # grouping tuples (INDEXING_KINDS, ...), not kinds
        assert value in kinds or value in wire_schema.SIM_ONLY_KINDS, \
            f"{name} has neither a wire schema nor a sim-only declaration"


# ----------------------------------------------------------------------
# Regression: the ReplicaPush literal drift (fixed in this change).
# ----------------------------------------------------------------------

def test_replica_push_has_one_definition():
    # Before the fix, core/replication.py defined its own
    # REPLICA_PUSH = "ReplicaPush" and core/peer.py keyed the handler
    # by a string literal — three independent spellings of one kind.
    assert replication.REPLICA_PUSH is protocol.REPLICA_PUSH
    assert protocol.REPLICA_PUSH in AlvisPeer._HANDLER_NAMES


def test_literal_handler_key_is_flagged(lint_project):
    # The exact pre-fix shape of core/peer.py.
    project = lint_project({
        "net/protocol.py": 'REPLICA_PUSH = "ReplicaPush"\n',
        "net/wire.py": """\
            _SCHEMAS = {}
            _KIND_ORDER = ()
            """,
        "core/peer.py": """\
            class AlvisPeer:
                _HANDLER_NAMES = {
                    "ReplicaPush": "_on_replica_push",
                }

                def _on_replica_push(self, message):
                    pass
            """})
    flagged = by_code(run(project), "RPL032")
    assert any(f.symbol == "ReplicaPush" for f in flagged)


# ----------------------------------------------------------------------
# Fixture tests per code.
# ----------------------------------------------------------------------

# A minimal consistent pair used as the base of the drift fixtures; the
# checker's SIM_ONLY_KINDS names real repo kinds, so fixture protocols
# declare them too to keep RPL036/RPL031 noise out of unrelated tests.
SIM_ONLY_DECLS = "\n".join(
    f'{kind.upper()} = "{kind}"' for kind in sorted(
        wire_schema.SIM_ONLY_KINDS)) + "\n"

CONSISTENT_WIRE = """\
    from repro.net import protocol

    _SCHEMAS = {
        protocol.LOOKUP: {"key": None, "hops": None},
        protocol.PROBE: {"key": None},
    }

    _KIND_ORDER = (protocol.LOOKUP, protocol.PROBE)
    """


def make(lint_project, wire_text=CONSISTENT_WIRE, peer_text=None,
         extra=None):
    files = {
        "net/protocol.py":
            'LOOKUP = "Lookup"\nPROBE = "Probe"\n' + SIM_ONLY_DECLS,
        "net/wire.py": wire_text,
    }
    if peer_text is not None:
        files["core/peer.py"] = peer_text
    if extra:
        files.update(extra)
    return lint_project(files)


def test_consistent_fixture_is_clean(lint_project):
    assert run(make(lint_project)) == []


def test_schema_without_tag_is_rpl030(lint_project):
    project = make(lint_project, wire_text="""\
        from repro.net import protocol

        _SCHEMAS = {
            protocol.LOOKUP: {"key": None},
            protocol.PROBE: {"key": None},
        }

        _KIND_ORDER = (protocol.LOOKUP,)
        """)
    (finding,) = by_code(run(project), "RPL030")
    assert finding.symbol == "Probe"


def test_tag_without_schema_and_duplicate_tag_are_rpl030(lint_project):
    project = make(lint_project, wire_text="""\
        from repro.net import protocol

        _SCHEMAS = {
            protocol.LOOKUP: {"key": None},
        }

        _KIND_ORDER = (protocol.LOOKUP, protocol.LOOKUP, protocol.PROBE)
        """)
    symbols = sorted(f.symbol for f in by_code(run(project), "RPL030"))
    assert symbols == ["Lookup", "Probe"]


def test_kind_without_schema_or_declaration_is_rpl031(lint_project):
    project = lint_project({
        "net/protocol.py": 'LOOKUP = "Lookup"\nNEW = "NewKind"\n'
                           + SIM_ONLY_DECLS,
        "net/wire.py": """\
            from repro.net import protocol

            _SCHEMAS = {protocol.LOOKUP: {"key": None}}
            _KIND_ORDER = (protocol.LOOKUP,)
            """})
    (finding,) = by_code(run(project), "RPL031")
    assert finding.symbol == "NewKind"


def test_handler_naming_missing_method_is_rpl033(lint_project):
    project = make(lint_project, peer_text="""\
        from repro.net import protocol

        class AlvisPeer:
            _HANDLER_NAMES = {
                protocol.LOOKUP: "_on_lookup",
            }
        """)
    (finding,) = by_code(run(project), "RPL033")
    assert finding.symbol == "_on_lookup"


def test_handled_kind_without_schema_is_rpl034(lint_project):
    project = lint_project({
        "net/protocol.py": 'LOOKUP = "Lookup"\nEXTRA = "Extra"\n'
                           + SIM_ONLY_DECLS,
        "net/wire.py": """\
            from repro.net import protocol

            _SCHEMAS = {protocol.LOOKUP: {"key": None}}
            _KIND_ORDER = (protocol.LOOKUP,)
            """,
        "core/peer.py": """\
            from repro.net import protocol

            class AlvisPeer:
                _HANDLER_NAMES = {
                    protocol.EXTRA: "_on_extra",
                }

                def _on_extra(self, message):
                    pass
            """})
    found = run(project)
    assert [f.symbol for f in by_code(found, "RPL034")] == ["Extra"]
    # ... and EXTRA also lacks a schema entirely:
    assert [f.symbol for f in by_code(found, "RPL031")] == ["Extra"]


def test_payload_field_outside_schema_is_rpl035(lint_project):
    project = make(lint_project, extra={"core/x.py": """\
        from repro.net import protocol
        from repro.net.message import Message

        def build(src, dst):
            good = Message(src, dst, protocol.LOOKUP,
                           {"key": "k", "hops": 3})
            bad = Message(src, dst, protocol.LOOKUP,
                          {"key": "k", "ttl": 9})
            return good, bad

        def respond(message):
            return message.reply(protocol.PROBE, {"keyz": 1})
        """})
    symbols = sorted(f.symbol for f in by_code(run(project), "RPL035"))
    assert symbols == ["Lookup.ttl", "Probe.keyz"]


def test_sim_only_kind_payloads_are_not_checked(lint_project):
    # Sim-only kinds have no field table; arbitrary payloads are fine.
    project = make(lint_project, extra={"core/x.py": """\
        from repro.net import protocol
        from repro.net.message import Message

        def build(src, dst):
            return Message(src, dst, protocol.REPLICAPUSH,
                           {"anything": 1})
        """})
    assert by_code(run(project), "RPL035") == []


def test_stale_sim_only_declaration_is_rpl036(lint_project):
    # Fixture protocol omits the sim-only kinds entirely -> every
    # declaration is stale ("not a protocol kind").
    project = lint_project({
        "net/protocol.py": 'LOOKUP = "Lookup"\n',
        "net/wire.py": """\
            from repro.net import protocol

            _SCHEMAS = {protocol.LOOKUP: {"key": None}}
            _KIND_ORDER = (protocol.LOOKUP,)
            """})
    stale = by_code(run(project), "RPL036")
    assert sorted(f.symbol for f in stale) == \
        sorted(wire_schema.SIM_ONLY_KINDS)


def test_checker_skips_projects_without_the_codec(lint_project):
    project = lint_project({"core/x.py": "VALUE = 1\n"})
    assert run(project) == []

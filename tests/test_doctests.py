"""Run the doctest examples embedded in module docstrings.

Every public-API code example in a docstring is executable documentation;
this test keeps them honest.
"""

import doctest

import pytest

import repro.core.keys
import repro.corpus.loader
import repro.corpus.synthetic
import repro.dht.hashing
import repro.dht.idspace
import repro.eval.quality
import repro.ir.analysis
import repro.ir.query_language
import repro.ir.stemmer
import repro.ir.tokenizer
import repro.net.message
import repro.util.rng
import repro.util.stats
import repro.util.zipf

_MODULES = [
    repro.core.keys,
    repro.corpus.loader,
    repro.corpus.synthetic,
    repro.dht.hashing,
    repro.dht.idspace,
    repro.eval.quality,
    repro.ir.analysis,
    repro.ir.query_language,
    repro.ir.stemmer,
    repro.ir.tokenizer,
    repro.net.message,
    repro.util.rng,
    repro.util.stats,
    repro.util.zipf,
]


@pytest.mark.parametrize("module", _MODULES,
                         ids=[module.__name__ for module in _MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in {module.__name__}"


def test_doctests_actually_present():
    # Guard against the suite silently testing nothing.
    total = sum(doctest.testmod(module, verbose=False).attempted
                for module in _MODULES)
    assert total >= 15

"""Shared fixtures.

Networks are expensive to build (statistics phase + index construction),
so the fully built ones are module-scoped; tests must not mutate them
destructively (tests that need mutation build their own small network).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.ir.analysis import Analyzer


@pytest.fixture(scope="session")
def analyzer() -> Analyzer:
    return Analyzer()


@pytest.fixture(scope="session")
def small_corpus() -> SyntheticCorpus:
    """120 documents, 800-word vocabulary — enough for HDK expansion."""
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=120, vocabulary_size=800, num_topics=6, seed=3))


@pytest.fixture(scope="session")
def small_corpus_documents(small_corpus):
    return small_corpus.documents()


@pytest.fixture(scope="session")
def small_workload(small_corpus) -> QueryWorkload:
    return QueryWorkload.from_corpus(
        small_corpus, QueryWorkloadConfig(pool_size=40, seed=5))


@pytest.fixture(scope="module")
def hdk_network(small_corpus) -> AlvisNetwork:
    """A 10-peer network with a built HDK index over the small corpus."""
    network = AlvisNetwork(num_peers=10, config=AlvisConfig(), seed=2)
    network.distribute_documents(small_corpus.documents())
    network.build_index(mode="hdk")
    return network


@pytest.fixture(scope="module")
def qdi_network(small_corpus) -> AlvisNetwork:
    """A 10-peer network in QDI mode (single-term base, managers on)."""
    config = AlvisConfig(qdi_activation_threshold=2)
    network = AlvisNetwork(num_peers=10, config=config, seed=2)
    network.distribute_documents(small_corpus.documents())
    network.build_index(mode="qdi")
    return network


@pytest.fixture()
def lint_project(tmp_path):
    """Factory fixture for lint tests: build a throwaway project tree.

    ``build({"sim/x.py": "...", ...})`` writes the (dedented) sources
    under ``tmp_path/src/repro/`` — so scope rules keyed on the position
    inside the repro package apply exactly as in the real tree — and
    returns the loaded :class:`repro.lint.source.Project`.  Paths with a
    leading ``./`` are written relative to the project root instead
    (for files outside the package, e.g. benchmarks).
    """
    from repro.lint.source import Project

    def build(files):
        for rel, text in files.items():
            if rel.startswith("./"):
                path = tmp_path / rel[2:]
            else:
                path = tmp_path / "src" / "repro" / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return Project.load([tmp_path], tmp_path)

    return build


@pytest.fixture()
def tiny_network() -> AlvisNetwork:
    """A fresh 6-peer network over the built-in sample documents.

    Function-scoped: safe to mutate (churn, incremental publishing...).
    """
    network = AlvisNetwork(num_peers=6, seed=4)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network

"""Tests for the single-term baseline and the centralized reference."""

import pytest

from repro.baselines.centralized import CentralizedEngine
from repro.baselines.single_term import SingleTermNetwork
from repro.corpus.loader import sample_documents
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.ir.analysis import Analyzer


@pytest.fixture(scope="module")
def baseline_corpus():
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=80, vocabulary_size=500, seed=23))


@pytest.fixture(scope="module")
def baseline_net(baseline_corpus):
    network = SingleTermNetwork(num_peers=8, seed=24)
    network.distribute_documents(baseline_corpus.documents())
    network.run_statistics_phase()
    network.build_index()
    return network


@pytest.fixture(scope="module")
def centralized(baseline_corpus, baseline_net):
    # Index the same documents with the same assigned doc ids.
    docs = []
    for peer in baseline_net.peers():
        docs.extend(peer.engine.store)
    return CentralizedEngine(docs)


def _some_query(baseline_corpus, index=0, size=2):
    analyzer = Analyzer()
    terms = analyzer.analyze(
        " ".join(baseline_corpus.document_terms(index)))
    distinct = sorted(set(terms))
    return distinct[:size]


class TestCentralizedEngine:
    def test_counts(self, centralized):
        assert centralized.num_documents == 80

    def test_search_api(self, centralized, baseline_corpus):
        query = " ".join(_some_query(baseline_corpus))
        results = centralized.search(query, k=5)
        assert len(results) <= 5

    def test_conjunctive_subset_of_disjunctive_candidates(
            self, centralized, baseline_corpus):
        terms = _some_query(baseline_corpus, index=3)
        conjunctive = centralized.conjunctive_doc_ids(terms, k=50)
        disjunctive = centralized.top_doc_ids(terms, k=10 ** 6)
        assert set(conjunctive) <= set(disjunctive)


class TestSingleTermBaseline:
    def test_full_lists_stored(self, baseline_net, centralized):
        # Every posting of every term must be in the global index: the
        # total equals the number of (term, doc) pairs.
        expected = sum(
            centralized.engine.index.document_frequency(term)
            for term in centralized.engine.index.vocabulary())
        assert baseline_net.total_postings_stored() == expected

    def test_fetch_all_matches_centralized_conjunctive(
            self, baseline_net, centralized, baseline_corpus):
        for index in (0, 7, 19):
            terms = _some_query(baseline_corpus, index=index)
            trace = baseline_net.query(baseline_net.peer_ids()[0], terms,
                                       mode="fetch_all")
            expected = centralized.conjunctive_doc_ids(terms, k=10)
            assert [doc_id for doc_id, _ in trace.results] == expected

    def test_pipelined_equals_fetch_all(self, baseline_net,
                                        baseline_corpus):
        for index in (2, 11):
            terms = _some_query(baseline_corpus, index=index, size=3)
            a = baseline_net.query(baseline_net.peer_ids()[1], terms,
                                   mode="fetch_all")
            b = baseline_net.query(baseline_net.peer_ids()[1], terms,
                                   mode="pipelined")
            assert a.results == b.results

    def test_bytes_grow_with_posting_volume(self, baseline_net,
                                            baseline_corpus):
        analyzer = Analyzer()
        # One-term queries: wire bytes must scale with the list length.
        counts = {}
        for peer in baseline_net.peers():
            for term in peer.term_store:
                counts[term] = len(peer.term_store[term])
        frequent = max(counts, key=counts.get)
        rare = min(counts, key=counts.get)
        origin = baseline_net.peer_ids()[0]
        trace_frequent = baseline_net.query(origin, [frequent],
                                            mode="fetch_all")
        trace_rare = baseline_net.query(origin, [rare], mode="fetch_all")
        assert counts[frequent] > counts[rare]
        assert trace_frequent.bytes_sent > trace_rare.bytes_sent

    def test_pipelined_ships_less_for_frequent_pairs(self, baseline_net):
        # For two frequent terms, pipelined transfers bound the second
        # leg by the intersection size, so it moves fewer postings.
        counts = {}
        for peer in baseline_net.peers():
            for term, plist in peer.term_store.items():
                counts[term] = len(plist)
        frequent_terms = sorted(counts, key=counts.get,
                                reverse=True)[:2]
        origin = baseline_net.peer_ids()[2]
        fetch = baseline_net.query(origin, frequent_terms,
                                   mode="fetch_all")
        piped = baseline_net.query(origin, frequent_terms,
                                   mode="pipelined")
        assert piped.postings_transferred <= fetch.postings_transferred

    def test_empty_conjunction(self, baseline_net):
        # Terms that never co-occur: empty result, no crash.
        counts = {}
        for peer in baseline_net.peers():
            for term, plist in peer.term_store.items():
                counts.setdefault(term, set()).update(plist.doc_ids())
        terms = sorted(counts)
        disjoint_pair = None
        for i, a in enumerate(terms):
            for b in terms[i + 1:]:
                if not counts[a] & counts[b]:
                    disjoint_pair = [a, b]
                    break
            if disjoint_pair:
                break
        if disjoint_pair is None:
            pytest.skip("corpus has no disjoint term pair")
        trace = baseline_net.query(baseline_net.peer_ids()[0],
                                   disjoint_pair, mode="pipelined")
        assert trace.results == []

    def test_invalid_inputs(self, baseline_net):
        with pytest.raises(ValueError):
            baseline_net.query(baseline_net.peer_ids()[0], [],
                               mode="fetch_all")
        with pytest.raises(ValueError):
            baseline_net.query(baseline_net.peer_ids()[0], ["x"],
                               mode="bogus")
        with pytest.raises(ValueError):
            SingleTermNetwork(num_peers=0)


class TestScalabilityContrast:
    def test_alvis_bytes_do_not_grow_with_corpus_baseline_bytes_do(self):
        """The paper's headline scalability claim (experiment E2 in
        miniature): as the collection grows, per-query retrieval bytes
        grow for the single-term baseline but stay bounded for AlvisP2P.
        """
        from repro.core.config import AlvisConfig
        from repro.core.network import AlvisNetwork

        def frequent_pair(corpus):
            analyzer = Analyzer()
            counts = {}
            for index in range(corpus.num_documents):
                for term in set(analyzer.analyze(
                        " ".join(corpus.document_terms(index)))):
                    counts[term] = counts.get(term, 0) + 1
            ranked = sorted(counts, key=counts.get, reverse=True)
            return ranked[:2]

        results = {}
        for scale, num_docs in (("small", 60), ("large", 240)):
            corpus = SyntheticCorpus(SyntheticCorpusConfig(
                num_documents=num_docs, vocabulary_size=500, seed=29))
            terms = frequent_pair(corpus)
            baseline = SingleTermNetwork(num_peers=8, seed=30)
            baseline.distribute_documents(corpus.documents())
            baseline.run_statistics_phase()
            baseline.build_index()
            baseline_trace = baseline.query(baseline.peer_ids()[0],
                                            terms, mode="fetch_all")
            alvis = AlvisNetwork(num_peers=8, config=AlvisConfig(),
                                 seed=30)
            alvis.distribute_documents(corpus.documents())
            alvis.build_index(mode="hdk")
            _r, alvis_trace = alvis.query(alvis.peer_ids()[0], terms)
            results[scale] = (baseline_trace.bytes_sent,
                              alvis_trace.bytes_sent)
        baseline_growth = results["large"][0] / results["small"][0]
        alvis_growth = results["large"][1] / max(1, results["small"][1])
        assert baseline_growth > 2.0   # ~4x docs -> much more traffic
        assert alvis_growth < 2.0      # bounded by truncation

"""Tests for the congestion-control model (experiment E8's machinery)."""

import pytest

from repro.dht.congestion import (
    AimdSender,
    CongestionConfig,
    CongestionWindow,
    QueueingNode,
    UncontrolledSender,
)
from repro.sim.events import Simulator


def _setup(service_rate=100.0, queue_capacity=10):
    simulator = Simulator()
    config = CongestionConfig(service_rate=service_rate,
                              queue_capacity=queue_capacity,
                              network_delay=0.005)
    node = QueueingNode(simulator, config)
    return simulator, config, node


class TestQueueingNode:
    def test_single_request_completes(self):
        simulator, _config, node = _setup()
        done = []
        node.offer(lambda: done.append(1), lambda: done.append("drop"))
        simulator.run()
        assert done == [1]
        assert node.completed == 1
        assert node.dropped == 0

    def test_service_rate_paces_completions(self):
        simulator, _config, node = _setup(service_rate=10.0)
        finish_times = []
        for _ in range(3):
            node.offer(lambda: finish_times.append(simulator.now),
                       lambda: None)
        simulator.run()
        assert finish_times == pytest.approx([0.1, 0.2, 0.3])

    def test_queue_overflow_drops(self):
        simulator, _config, node = _setup(queue_capacity=2)
        drops = []
        completions = []
        # The server is idle, so the first offer starts service and the
        # queue holds the next two; the rest are dropped.
        for index in range(6):
            node.offer(lambda: completions.append(1),
                       lambda index=index: drops.append(index))
        assert node.dropped == 3
        simulator.run()
        assert len(completions) == 3
        assert drops == [3, 4, 5]

    def test_arrival_counter(self):
        _simulator, _config, node = _setup()
        for _ in range(4):
            node.offer(lambda: None, lambda: None)
        assert node.arrived == 4


class TestUncontrolledSender:
    def test_below_capacity_no_drops(self):
        simulator, config, node = _setup(service_rate=200.0,
                                         queue_capacity=50)
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=100.0)
        sender.start(duration=1.0)
        simulator.run()
        assert node.dropped == 0
        assert sender.acked == sender.sent

    def test_overload_causes_drops_and_retransmissions(self):
        simulator, config, node = _setup(service_rate=50.0,
                                         queue_capacity=5)
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=500.0)
        sender.start(duration=1.0)
        simulator.run_until(3.0)
        assert node.dropped > 0
        assert sender.retransmissions > 0

    def test_invalid_rate_rejected(self):
        simulator, config, node = _setup()
        with pytest.raises(ValueError):
            UncontrolledSender(simulator, node, config, offered_rate=0)


class TestAimdSender:
    def test_workload_fully_delivered(self):
        simulator, config, node = _setup(service_rate=100.0,
                                         queue_capacity=8)
        sender = AimdSender(simulator, node, config, workload=200)
        finished = []
        sender.start(on_finished=lambda: finished.append(simulator.now))
        simulator.run()
        assert sender.acked == 200
        assert sender.pending == 0
        assert sender.outstanding == 0
        assert len(finished) == 1

    def test_no_work_lost_despite_drops(self):
        simulator, config, node = _setup(service_rate=30.0,
                                         queue_capacity=2)
        sender = AimdSender(simulator, node, config, workload=100)
        sender.start()
        simulator.run()
        assert sender.acked == 100  # every drop was retried

    def test_window_decreases_on_drop(self):
        simulator, config, node = _setup(service_rate=20.0,
                                         queue_capacity=1)
        sender = AimdSender(simulator, node, config, workload=50)
        sender.start()
        simulator.run_until(0.2)
        if sender.drops:
            assert sender.window < config.max_window

    def test_window_never_below_one(self):
        simulator, config, node = _setup(service_rate=5.0,
                                         queue_capacity=1)
        sender = AimdSender(simulator, node, config, workload=60)
        sender.start()
        simulator.run()
        assert sender.window >= 1.0
        assert sender.acked == 60

    def test_goodput_tracks_service_capacity(self):
        # The controlled sender should keep the server busy: completion
        # time ~ workload / service_rate.
        simulator, config, node = _setup(service_rate=100.0,
                                         queue_capacity=10)
        sender = AimdSender(simulator, node, config, workload=300)
        end = []
        sender.start(on_finished=lambda: end.append(simulator.now))
        simulator.run()
        ideal = 300 / 100.0
        assert end[0] < ideal * 1.5

    def test_invalid_workload_rejected(self):
        simulator, config, node = _setup()
        with pytest.raises(ValueError):
            AimdSender(simulator, node, config, workload=0)


class TestCongestionCollapseContrast:
    def test_aimd_beats_uncontrolled_under_overload(self):
        """The E8 headline: under heavy overload, AIMD sustains goodput
        while the open-loop sender collapses into retransmission churn."""
        duration = 2.0
        # Uncontrolled at 10x capacity.
        sim_u, config_u, node_u = _setup(service_rate=50.0,
                                         queue_capacity=5)
        uncontrolled = UncontrolledSender(sim_u, node_u, config_u,
                                          offered_rate=500.0)
        uncontrolled.start(duration)
        sim_u.run_until(duration)
        uncontrolled_goodput = node_u.completed / duration
        waste_ratio = node_u.dropped / max(1, node_u.arrived)
        # AIMD with the same capacity and more than enough work.
        sim_c, config_c, node_c = _setup(service_rate=50.0,
                                         queue_capacity=5)
        controlled = AimdSender(sim_c, node_c, config_c, workload=1000)
        controlled.start()
        sim_c.run_until(duration)
        controlled_goodput = node_c.completed / duration
        controlled_waste = node_c.dropped / max(1, node_c.arrived)
        assert controlled_goodput >= 0.8 * 50.0
        assert controlled_waste < waste_ratio


class TestCongestionWindow:
    """The reusable AIMD core (also grafted onto the query runtime)."""

    def test_additive_increase_on_ack(self):
        window = CongestionWindow(initial=2.0, max_window=10.0)
        window.on_send()
        window.on_ack(now=0.0)
        assert window.window == pytest.approx(2.5)
        assert window.outstanding == 0
        assert window.acks == 1

    def test_can_send_respects_window(self):
        window = CongestionWindow(initial=2.0)
        assert window.can_send()
        window.on_send()
        window.on_send()
        assert not window.can_send()
        window.on_ack(now=0.0)
        assert window.can_send()

    def test_decrease_at_most_once_per_rtt(self):
        # A burst of drops inside one RTT is ONE congestion event.
        window = CongestionWindow(initial=16.0, rtt_estimate=0.1)
        for _ in range(4):
            window.on_send()
        window.on_drop(now=1.0)
        window.on_drop(now=1.04)
        window.on_drop(now=1.09)
        assert window.window == pytest.approx(8.0)
        assert window.decreases == 1
        assert window.drops == 3
        # A drop one RTT later is a fresh congestion event.
        window.on_drop(now=1.11)
        assert window.window == pytest.approx(4.0)
        assert window.decreases == 2

    def test_window_floor_and_cap(self):
        window = CongestionWindow(initial=2.0, max_window=2.5,
                                  rtt_estimate=0.1)
        window.on_send()
        window.on_ack(now=0.0)
        window.on_send()
        window.on_ack(now=0.0)
        assert window.window == pytest.approx(2.5)    # capped
        for step in range(5):
            window.on_send()
            window.on_drop(now=float(step))
        assert window.window == pytest.approx(1.0)    # floored

    def test_ack_and_drop_release_slots(self):
        window = CongestionWindow(initial=4.0)
        for _ in range(3):
            window.on_send()
        assert window.outstanding == 3
        window.on_ack(now=0.0)
        window.on_drop(now=0.0)
        assert window.outstanding == 1

    def test_srtt_learning(self):
        window = CongestionWindow(initial=2.0)
        window.on_send()
        window.on_ack(now=0.0, rtt_sample=0.2)
        assert window.srtt == pytest.approx(0.2)      # first sample seeds
        window.on_send()
        window.on_ack(now=0.0, rtt_sample=0.4)
        assert 0.2 < window.srtt < 0.4                # smoothed

    def test_trajectory_recorded(self):
        window = CongestionWindow(initial=2.0, rtt_estimate=0.1)
        window.on_send()
        window.on_ack(now=1.0)
        window.on_send()
        window.on_drop(now=2.0)
        times = [time for time, _w in window.trajectory]
        assert times == [1.0, 2.0]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CongestionWindow(initial=0.5, min_window=1.0)
        with pytest.raises(ValueError):
            CongestionWindow(initial=8.0, max_window=4.0)


class TestDropNotificationDelay:
    """Regression: the drop signal must travel back one network delay,
    not fire instantly at the node (senders must not learn of drops
    faster than of acks)."""

    def test_drop_callback_pays_network_delay(self):
        simulator, config, node = _setup(queue_capacity=1)
        node.offer(lambda: None, lambda: None)      # enters service
        node.offer(lambda: None, lambda: None)      # queued
        drop_times = []
        node.offer(lambda: None,
                   lambda: drop_times.append(simulator.now))
        # Counted at the node immediately, but the sender has not
        # heard yet.
        assert node.dropped == 1
        assert drop_times == []
        simulator.run()
        assert drop_times == pytest.approx([config.network_delay])


class TestAimdBurstCoalescing:
    """Regression: a burst of same-instant drops must halve the window
    once (one congestion event per RTT) and schedule ONE refill, not one
    per drop."""

    def _burst_setup(self, service_rate):
        simulator = Simulator()
        config = CongestionConfig(service_rate=service_rate,
                                  queue_capacity=1, network_delay=0.05,
                                  initial_window=8.0)
        node = QueueingNode(simulator, config)
        sender = AimdSender(simulator, node, config, workload=8)
        return simulator, config, node, sender

    def test_burst_drops_are_one_congestion_event(self):
        simulator, _config, node, sender = self._burst_setup(10.0)
        sender.start()
        # 8 sends arrive together at 0.05: one serves, one queues, six
        # drop; the drop signals land at 0.10, before any ack (0.20).
        simulator.run_until(0.16)
        assert sender.drops == 6
        assert sender.window == pytest.approx(4.0)   # halved ONCE

    def test_burst_refill_is_coalesced(self):
        simulator, _config, node, sender = self._burst_setup(1.0)
        sender.start()
        pumps = []
        original_pump = sender._pump

        def counting_pump():
            pumps.append(simulator.now)
            original_pump()

        sender._pump = counting_pump
        # Service takes 1s, so the only pump before 0.25 is what the
        # six same-instant drops (signalled at 0.10) scheduled for
        # 0.20 — coalesced into exactly one.
        simulator.run_until(0.25)
        assert sender.drops == 6
        assert len(pumps) == 1

    def test_work_conserved_through_burst(self):
        simulator, _config, node, sender = self._burst_setup(10.0)
        sender.start()
        simulator.run()
        assert sender.acked == 8
        assert sender.pending == 0


class TestUncontrolledCounters:
    """Regression: ``sent`` must count fresh sends only (the offered
    load), with retransmissions split out, and the scheduled send count
    must round rather than truncate."""

    def test_fractional_rate_rounds(self):
        simulator, config, node = _setup()
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=2.9)
        sender.start(duration=1.0)
        simulator.run()
        assert sender.sent == 3          # round(2.9), not int() -> 2

    def test_sent_excludes_retransmissions(self):
        simulator, config, node = _setup(service_rate=50.0,
                                         queue_capacity=5)
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=500.0)
        sender.start(duration=1.0)
        simulator.run()
        assert sender.sent == 500        # the offered load, exactly
        assert sender.retransmissions > 0
        assert sender.transmissions == \
            sender.sent + sender.retransmissions
        # Every fresh request was eventually delivered via retries.
        assert sender.acked == 500

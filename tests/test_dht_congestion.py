"""Tests for the congestion-control model (experiment E8's machinery)."""

import pytest

from repro.dht.congestion import (
    AimdSender,
    CongestionConfig,
    QueueingNode,
    UncontrolledSender,
)
from repro.sim.events import Simulator


def _setup(service_rate=100.0, queue_capacity=10):
    simulator = Simulator()
    config = CongestionConfig(service_rate=service_rate,
                              queue_capacity=queue_capacity,
                              network_delay=0.005)
    node = QueueingNode(simulator, config)
    return simulator, config, node


class TestQueueingNode:
    def test_single_request_completes(self):
        simulator, _config, node = _setup()
        done = []
        node.offer(lambda: done.append(1), lambda: done.append("drop"))
        simulator.run()
        assert done == [1]
        assert node.completed == 1
        assert node.dropped == 0

    def test_service_rate_paces_completions(self):
        simulator, _config, node = _setup(service_rate=10.0)
        finish_times = []
        for _ in range(3):
            node.offer(lambda: finish_times.append(simulator.now),
                       lambda: None)
        simulator.run()
        assert finish_times == pytest.approx([0.1, 0.2, 0.3])

    def test_queue_overflow_drops(self):
        simulator, _config, node = _setup(queue_capacity=2)
        drops = []
        completions = []
        # The server is idle, so the first offer starts service and the
        # queue holds the next two; the rest are dropped.
        for index in range(6):
            node.offer(lambda: completions.append(1),
                       lambda index=index: drops.append(index))
        assert node.dropped == 3
        simulator.run()
        assert len(completions) == 3
        assert drops == [3, 4, 5]

    def test_arrival_counter(self):
        _simulator, _config, node = _setup()
        for _ in range(4):
            node.offer(lambda: None, lambda: None)
        assert node.arrived == 4


class TestUncontrolledSender:
    def test_below_capacity_no_drops(self):
        simulator, config, node = _setup(service_rate=200.0,
                                         queue_capacity=50)
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=100.0)
        sender.start(duration=1.0)
        simulator.run()
        assert node.dropped == 0
        assert sender.acked == sender.sent

    def test_overload_causes_drops_and_retransmissions(self):
        simulator, config, node = _setup(service_rate=50.0,
                                         queue_capacity=5)
        sender = UncontrolledSender(simulator, node, config,
                                    offered_rate=500.0)
        sender.start(duration=1.0)
        simulator.run_until(3.0)
        assert node.dropped > 0
        assert sender.retransmissions > 0

    def test_invalid_rate_rejected(self):
        simulator, config, node = _setup()
        with pytest.raises(ValueError):
            UncontrolledSender(simulator, node, config, offered_rate=0)


class TestAimdSender:
    def test_workload_fully_delivered(self):
        simulator, config, node = _setup(service_rate=100.0,
                                         queue_capacity=8)
        sender = AimdSender(simulator, node, config, workload=200)
        finished = []
        sender.start(on_finished=lambda: finished.append(simulator.now))
        simulator.run()
        assert sender.acked == 200
        assert sender.pending == 0
        assert sender.outstanding == 0
        assert len(finished) == 1

    def test_no_work_lost_despite_drops(self):
        simulator, config, node = _setup(service_rate=30.0,
                                         queue_capacity=2)
        sender = AimdSender(simulator, node, config, workload=100)
        sender.start()
        simulator.run()
        assert sender.acked == 100  # every drop was retried

    def test_window_decreases_on_drop(self):
        simulator, config, node = _setup(service_rate=20.0,
                                         queue_capacity=1)
        sender = AimdSender(simulator, node, config, workload=50)
        sender.start()
        simulator.run_until(0.2)
        if sender.drops:
            assert sender.window < config.max_window

    def test_window_never_below_one(self):
        simulator, config, node = _setup(service_rate=5.0,
                                         queue_capacity=1)
        sender = AimdSender(simulator, node, config, workload=60)
        sender.start()
        simulator.run()
        assert sender.window >= 1.0
        assert sender.acked == 60

    def test_goodput_tracks_service_capacity(self):
        # The controlled sender should keep the server busy: completion
        # time ~ workload / service_rate.
        simulator, config, node = _setup(service_rate=100.0,
                                         queue_capacity=10)
        sender = AimdSender(simulator, node, config, workload=300)
        end = []
        sender.start(on_finished=lambda: end.append(simulator.now))
        simulator.run()
        ideal = 300 / 100.0
        assert end[0] < ideal * 1.5

    def test_invalid_workload_rejected(self):
        simulator, config, node = _setup()
        with pytest.raises(ValueError):
            AimdSender(simulator, node, config, workload=0)


class TestCongestionCollapseContrast:
    def test_aimd_beats_uncontrolled_under_overload(self):
        """The E8 headline: under heavy overload, AIMD sustains goodput
        while the open-loop sender collapses into retransmission churn."""
        duration = 2.0
        # Uncontrolled at 10x capacity.
        sim_u, config_u, node_u = _setup(service_rate=50.0,
                                         queue_capacity=5)
        uncontrolled = UncontrolledSender(sim_u, node_u, config_u,
                                          offered_rate=500.0)
        uncontrolled.start(duration)
        sim_u.run_until(duration)
        uncontrolled_goodput = node_u.completed / duration
        waste_ratio = node_u.dropped / max(1, node_u.arrived)
        # AIMD with the same capacity and more than enough work.
        sim_c, config_c, node_c = _setup(service_rate=50.0,
                                         queue_capacity=5)
        controlled = AimdSender(sim_c, node_c, config_c, workload=1000)
        controlled.start()
        sim_c.run_until(duration)
        controlled_goodput = node_c.completed / duration
        controlled_waste = node_c.dropped / max(1, node_c.arrived)
        assert controlled_goodput >= 0.8 * 50.0
        assert controlled_waste < waste_ratio

"""Tests for index replication and crash repair."""

import pytest

from repro.core.network import AlvisNetwork
from repro.core.replication import ReplicationManager
from repro.corpus.loader import sample_documents


def _network(num_peers=8, seed=51):
    network = AlvisNetwork(num_peers=num_peers, seed=seed)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network


class TestReplicaPlacement:
    def test_replicate_all_pushes_to_successors(self):
        network = _network()
        manager = ReplicationManager(network, replication_factor=2)
        pushes = manager.replicate_all()
        assert pushes > 0
        counts = manager.replica_counts()
        assert sum(counts.values()) > 0
        # Every peer with primaries must have replicas elsewhere.
        for peer in network.peers():
            primaries = [entry for entry in peer.fragment
                         if entry.postings or entry.contributors]
            if not primaries:
                continue
            replicated = 0
            for other in network.peers():
                if other.peer_id == peer.peer_id:
                    continue
                replicated += sum(
                    1 for entry in primaries
                    if entry.key in other.replica_store)
            assert replicated >= len(primaries)  # at least one copy each

    def test_replication_traffic_accounted(self):
        network = _network()
        network.reset_traffic()
        ReplicationManager(network, replication_factor=1).replicate_all()
        assert network.bytes_by_kind().get("ReplicaPush", 0) > 0

    def test_idempotent(self):
        network = _network()
        manager = ReplicationManager(network, replication_factor=1)
        manager.replicate_all()
        first = manager.replica_counts()
        manager.replicate_all()
        assert manager.replica_counts() == first

    def test_invalid_factor_rejected(self):
        network = _network(num_peers=3)
        with pytest.raises(ValueError):
            ReplicationManager(network, replication_factor=0)

    def test_singleton_network_no_replicas(self):
        network = AlvisNetwork(num_peers=1, seed=5)
        network.distribute_documents(sample_documents())
        network.build_index(mode="hdk")
        manager = ReplicationManager(network)
        assert manager.replicate_all() == 0


class TestCrashAndRepair:
    def test_fail_peer_removes_it(self):
        network = _network()
        victim = network.peer_ids()[0]
        network.fail_peer(victim)
        assert victim not in network.peer_ids()
        assert not network.transport.is_registered(victim)
        assert not network.ring.contains(victim)

    def test_fail_unknown_rejected(self):
        network = _network(num_peers=3)
        with pytest.raises(KeyError):
            network.fail_peer(12345)

    def test_cannot_crash_last_peer(self):
        network = AlvisNetwork(num_peers=1, seed=5)
        with pytest.raises(ValueError):
            network.fail_peer(network.peer_ids()[0])

    def test_crash_without_replication_loses_keys(self):
        network = _network()
        keys_before = network.total_keys()
        victim = max(network.peers(),
                     key=lambda peer: len(peer.fragment)).peer_id
        network.fail_peer(victim)
        assert network.total_keys() < keys_before

    def test_repair_promotes_replicas(self):
        network = _network()
        manager = ReplicationManager(network, replication_factor=2)
        manager.replicate_all()
        victim = max(network.peers(),
                     key=lambda peer: len(peer.fragment))
        lost_keys = [entry.key for entry in victim.fragment
                     if entry.postings or entry.contributors]
        network.fail_peer(victim.peer_id)
        promoted = manager.repair()
        assert promoted >= len(lost_keys) * 9 // 10
        # Every lost key is primary at its new owner.
        recovered = 0
        for key in lost_keys:
            owner = network.ring.successor_of(key.key_id)
            if network.peer(owner).fragment.get(key) is not None:
                recovered += 1
        assert recovered == len(lost_keys)

    def test_queries_survive_crash_with_replication(self):
        network = _network()
        manager = ReplicationManager(network, replication_factor=2)
        manager.replicate_all()
        origin = network.peer_ids()[0]
        baseline, _ = network.query(origin, "query lattice exploration")
        baseline_ids = [doc.doc_id for doc in baseline]
        assert baseline_ids
        # Crash the peer holding the most index state (but keep the
        # query origin and all document owners alive).
        doc_owners = {network.doc_owner(doc_id)
                      for doc_id in baseline_ids}
        candidates = [peer for peer in network.peers()
                      if peer.peer_id != origin
                      and peer.peer_id not in doc_owners]
        victim = max(candidates, key=lambda peer: len(peer.fragment))
        network.fail_peer(victim.peer_id)
        manager.repair()
        after, _ = network.query(origin, "query lattice exploration")
        assert [doc.doc_id for doc in after] == baseline_ids

    def test_repair_restores_replication_factor(self):
        network = _network()
        manager = ReplicationManager(network, replication_factor=2)
        manager.replicate_all()
        victim = network.peer_ids()[3]
        network.fail_peer(victim)
        manager.repair()
        # Promoted entries must be replicated again: for each promoted
        # key, at least one other peer holds a replica.
        for peer in network.peers():
            for entry in peer.fragment:
                if not (entry.postings or entry.contributors):
                    continue
                holders = sum(
                    1 for other in network.peers()
                    if other.peer_id != peer.peer_id
                    and entry.key in other.replica_store)
                assert holders >= 1

    def test_double_crash_with_factor_two(self):
        network = _network(num_peers=10)
        manager = ReplicationManager(network, replication_factor=2)
        manager.replicate_all()
        keys_before = network.total_keys()
        # Crash two non-adjacent peers.
        members = network.peer_ids()
        network.fail_peer(members[1])
        network.fail_peer(members[5])
        manager.repair()
        # All keys recovered (the two victims were not consecutive, so
        # no key lost both its primary and every replica).
        assert network.total_keys() >= keys_before - 2  # shadow slack

"""Tests for postings and posting lists (truncation discipline)."""

import pytest

from repro.ir.postings import POSTING_WIRE_BYTES, Posting, PostingList


class TestPosting:
    def test_wire_size_constant(self):
        assert Posting(1, 0.5).wire_size() == POSTING_WIRE_BYTES
        assert Posting(10 ** 12, 123.456).wire_size() == POSTING_WIRE_BYTES

    def test_frozen(self):
        posting = Posting(1, 0.5)
        with pytest.raises(AttributeError):
            posting.score = 2.0


class TestPostingListConstruction:
    def test_sorted_by_score_desc(self):
        plist = PostingList([Posting(1, 0.2), Posting(2, 0.9),
                             Posting(3, 0.5)])
        assert plist.doc_ids() == [2, 3, 1]

    def test_tie_broken_by_doc_id(self):
        plist = PostingList([Posting(5, 1.0), Posting(3, 1.0),
                             Posting(4, 1.0)])
        assert plist.doc_ids() == [3, 4, 5]

    def test_duplicates_removed_best_score_kept(self):
        plist = PostingList([Posting(1, 0.3), Posting(1, 0.8)])
        assert len(plist) == 1
        assert plist.entries[0].score == 0.8

    def test_empty(self):
        plist = PostingList()
        assert len(plist) == 0
        assert not plist
        assert not plist.truncated

    def test_global_df_defaults_to_length(self):
        plist = PostingList([Posting(1, 1.0), Posting(2, 0.5)])
        assert plist.global_df == 2
        assert not plist.truncated

    def test_global_df_smaller_than_entries_rejected(self):
        with pytest.raises(ValueError):
            PostingList([Posting(1, 1.0), Posting(2, 0.5)], global_df=1)


class TestTruncation:
    def test_truncate_keeps_top_k(self):
        entries = [Posting(index, 1.0 / (index + 1)) for index in range(10)]
        plist = PostingList(entries)
        top3 = plist.truncate(3)
        assert top3.doc_ids() == [0, 1, 2]
        assert top3.global_df == 10
        assert top3.truncated

    def test_truncate_noop_when_short(self):
        plist = PostingList([Posting(1, 1.0)])
        assert plist.truncate(5).doc_ids() == [1]

    def test_truncated_flag(self):
        plist = PostingList([Posting(1, 1.0)], global_df=100)
        assert plist.truncated
        full = PostingList([Posting(1, 1.0)], global_df=1)
        assert not full.truncated

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            PostingList().truncate(-1)

    def test_wire_size_bounded_by_entries(self):
        # The paper's bounded-bandwidth invariant: wire size depends only
        # on stored entries, never on global df.
        entries = [Posting(index, float(index)) for index in range(20)]
        a = PostingList(entries, global_df=20)
        b = PostingList(entries, global_df=10 ** 9)
        assert a.wire_size() == b.wire_size()


class TestMergeAndUnion:
    def test_merge_takes_max_score(self):
        a = PostingList([Posting(1, 0.3), Posting(2, 0.9)])
        b = PostingList([Posting(1, 0.7), Posting(3, 0.1)])
        merged = a.merge(b)
        scores = {posting.doc_id: posting.score for posting in merged}
        assert scores == {1: 0.7, 2: 0.9, 3: 0.1}

    def test_merge_limit(self):
        a = PostingList([Posting(1, 0.9), Posting(2, 0.8)])
        b = PostingList([Posting(3, 0.7), Posting(4, 0.6)])
        merged = a.merge(b, limit=2)
        assert merged.doc_ids() == [1, 2]

    def test_merge_preserves_max_global_df(self):
        a = PostingList([Posting(1, 1.0)], global_df=50)
        b = PostingList([Posting(2, 1.0)], global_df=10)
        assert a.merge(b).global_df == 50

    def test_merge_with_empty(self):
        a = PostingList([Posting(1, 1.0)])
        merged = a.merge(PostingList())
        assert merged.doc_ids() == [1]

    def test_union_of_many(self):
        lists = [PostingList([Posting(index, float(index))])
                 for index in range(5)]
        union = PostingList.union(lists)
        assert union.doc_ids() == [4, 3, 2, 1, 0]

    def test_union_with_limit(self):
        lists = [PostingList([Posting(index, float(index))])
                 for index in range(5)]
        union = PostingList.union(lists, limit=2)
        assert union.doc_ids() == [4, 3]

    def test_union_empty(self):
        assert len(PostingList.union([])) == 0

    def test_merge_does_not_mutate_inputs(self):
        a = PostingList([Posting(1, 1.0)])
        b = PostingList([Posting(2, 2.0)])
        a.merge(b)
        assert a.doc_ids() == [1]
        assert b.doc_ids() == [2]


class TestFromScores:
    def _random_arrays(self, count, seed):
        import random
        rng = random.Random(seed)
        doc_ids = rng.sample(range(10_000), count)
        scores = [round(rng.uniform(0.0, 5.0), 3) for _ in range(count)]
        # Inject score ties so the (-score, doc_id) tiebreak is exercised.
        for index in range(0, count - 1, 7):
            scores[index + 1] = scores[index]
        return doc_ids, scores

    def _reference(self, doc_ids, scores, global_df, limit):
        full = PostingList(
            [Posting(doc_id, score)
             for doc_id, score in zip(doc_ids, scores)],
            global_df=global_df)
        return full if limit is None else full.truncate(limit)

    def test_matches_build_all_then_truncate(self):
        doc_ids, scores = self._random_arrays(40, seed=3)
        for limit in (None, 0, 1, 5, 39, 40, 100):
            got = PostingList.from_scores(doc_ids, scores,
                                          global_df=len(doc_ids),
                                          limit=limit)
            want = self._reference(doc_ids, scores, len(doc_ids), limit)
            assert got.entries == want.entries, f"limit={limit}"
            assert got.global_df == want.global_df
            assert got.truncated == want.truncated

    def test_default_global_df_is_count(self):
        built = PostingList.from_scores([5, 3], [1.0, 2.0])
        assert built.global_df == 2
        assert not built.truncated

    def test_accepts_numpy_arrays(self):
        from repro.util.npcompat import np
        if np is None:
            pytest.skip("numpy unavailable")
        doc_ids, scores = self._random_arrays(20, seed=9)
        got = PostingList.from_scores(np.asarray(doc_ids, dtype=np.int64),
                                      np.asarray(scores), limit=5)
        want = self._reference(doc_ids, scores, len(doc_ids), 5)
        assert got.entries == want.entries
        assert all(isinstance(p.doc_id, int) and isinstance(p.score, float)
                   for p in got.entries)

"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 8
        assert args.mode == "hdk"
        assert args.seed == 42

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--mode", "bogus", "demo"])


class TestDemo:
    def test_demo_runs(self):
        code, output = _run(["--peers", "4", "demo", "--queries", "2"])
        assert code == 0
        assert "AlvisNetwork" in output
        assert "query:" in output
        assert "keys probed" in output

    def test_demo_qdi_mode(self):
        code, output = _run(["--peers", "4", "--mode", "qdi", "demo",
                             "--queries", "1"])
        assert code == 0


class TestQuery:
    def test_query_with_results(self):
        code, output = _run(["--peers", "4", "query",
                             "posting list truncation"])
        assert code == 0
        assert "score" in output
        assert "Posting list truncation" in output

    def test_query_no_results(self):
        code, output = _run(["--peers", "4", "query",
                             "zzzz qqqq xxxx"])
        assert code == 1
        assert "no results" in output

    def test_query_stopwords_only_is_error(self):
        code, _output = _run(["--peers", "4", "query", "the of and"])
        assert code == 2

    def test_query_refine(self):
        code, output = _run(["--peers", "4", "query", "--refine",
                             "congestion control"])
        assert code == 0

    def test_query_from_directory(self, tmp_path):
        (tmp_path / "zebra.txt").write_text(
            "zebra quagga savanna migration zebra herds")
        (tmp_path / "other.txt").write_text(
            "completely unrelated text about compilers")
        code, output = _run(["--peers", "3", "--docs", str(tmp_path),
                             "query", "zebra quagga"])
        assert code == 0
        assert "zebra.txt" in output

    def test_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            _run(["--docs", str(tmp_path), "query", "x"])


class TestMonitor:
    def test_monitor_dashboard(self):
        code, output = _run(["--peers", "4", "monitor",
                             "--queries", "3"])
        assert code == 0
        assert "AlvisP2P network monitor" in output
        assert "retrieval" in output

    def test_monitor_qdi(self):
        code, output = _run(["--peers", "4", "--mode", "qdi",
                             "monitor", "--queries", "3"])
        assert code == 0
        assert "QDI:" in output

"""Tests for the unified fault facade (``AlvisNetwork.faults``).

The facade is a pure re-surfacing: ``network.fail_peer`` /
``network.churn`` delegate to it unchanged (twin-network equivalence is
pinned here), and the new faults — graceful departure with key
handover, transport partitions, per-peer degradation — compose with the
async runtime the same way churn always has: in-flight requests to an
unreachable peer surface as DROPPED probes, never exceptions.
"""

import pytest

from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.lattice import ProbeStatus
from repro.core.network import AlvisNetwork
from repro.corpus import sample_documents
from repro.net import protocol
from repro.net.message import Message
from repro.net.transport import DeliveryError

QUERIES = ["scalable peer retrieval",
           "posting list truncation",
           "congestion control"]


def build_network(**overrides):
    config = AlvisConfig(**overrides)
    network = AlvisNetwork(num_peers=8, config=config, seed=42)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network


def probed_owner(network, query, origin):
    """A non-origin peer the query's first probes will contact."""
    probe = network.analyzer.analyze_query(query)
    for term in probe:
        owner = network.owner_peer_of_key(Key([term]).key_id)
        if owner != origin:
            return owner
    pytest.skip("every owner is the origin")


# ----------------------------------------------------------------------
# Delegation: the old surface is the facade
# ----------------------------------------------------------------------

class TestDelegation:
    def test_fail_peer_equals_faults_crash(self):
        via_method = build_network()
        via_facade = build_network()
        victim = via_method.peer_ids()[3]
        via_method.fail_peer(victim)
        via_facade.faults.crash(victim)
        assert via_method.peer_ids() == via_facade.peer_ids()
        origin = via_method.peer_ids()[0]
        for query in QUERIES:
            results_m, trace_m = via_method.query(origin, query)
            results_f, trace_f = via_facade.query(origin, query)
            assert [d.doc_id for d in results_m] == \
                [d.doc_id for d in results_f]
            assert trace_m.bytes_sent == trace_f.bytes_sent

    def test_churn_delegates_with_same_stream(self):
        via_method = build_network()
        via_facade = build_network()
        churn_m = via_method.churn()
        churn_f = via_facade.faults.churn()
        for _ in range(3):
            churn_m.leave()
            churn_f.leave()
        assert via_method.peer_ids() == via_facade.peer_ids()

    def test_crash_guards(self):
        network = build_network()
        with pytest.raises(KeyError):
            network.faults.crash(424242)
        while network.num_peers > 1:
            network.faults.crash(network.peer_ids()[-1])
        with pytest.raises(ValueError, match="last peer"):
            network.faults.crash(network.peer_ids()[0])


# ----------------------------------------------------------------------
# Graceful departure: handover, not loss
# ----------------------------------------------------------------------

class TestGracefulDeparture:
    def test_index_handed_to_successor(self):
        network = build_network()
        victim = network.peer_ids()[4]
        fragment_before = len(network.peer(victim).fragment)
        network.reset_traffic()
        network.faults.graceful_depart(victim)
        assert victim not in network.peer_ids()
        handover = network.bytes_by_kind().get(protocol.HANDOVER, 0)
        if fragment_before:
            assert handover > 0
        # The handed-over keys resolve at the survivors: every key the
        # departed peer owned is still probe-able.
        origin = network.peer_ids()[0]
        for query in QUERIES:
            _results, trace = network.query(origin, query)
            assert all(status != ProbeStatus.DROPPED
                       for _key, status in trace.probes)

    def test_graceful_vs_crash_recall(self):
        # The point of the goodbye: the index fragment survives a
        # graceful departure but vanishes in a crash.
        graceful = build_network()
        crashed = build_network()
        victim = graceful.peer_ids()[4]
        total_keys = sum(len(p.fragment) for p in graceful.peers())
        graceful.faults.graceful_depart(victim)
        crashed.faults.crash(victim)
        keys_graceful = sum(len(p.fragment)
                            for p in graceful.peers())
        keys_crashed = sum(len(p.fragment) for p in crashed.peers())
        assert keys_graceful == total_keys
        assert keys_crashed < total_keys

    def test_guards(self):
        network = build_network()
        with pytest.raises(KeyError):
            network.faults.graceful_depart(424242)


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------

class TestPartition:
    def test_sync_cross_cut_drops(self):
        network = build_network()
        origin = network.peer_ids()[0]
        isolated = probed_owner(network, QUERIES[0], origin)
        network.faults.partition([isolated])
        assert network.faults.partitioned
        _results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1
        assert any(status == ProbeStatus.DROPPED
                   for _key, status in trace.probes)

    def test_sync_transport_request_raises(self):
        network = build_network()
        origin = network.peer_ids()[0]
        isolated = network.peer_ids()[5]
        network.faults.partition([isolated])
        with pytest.raises(DeliveryError, match="partition"):
            network.transport.request(
                Message(src=origin, dst=isolated, kind="Ping",
                        payload={}))

    def test_async_cross_cut_drops(self):
        network = build_network(async_queries=True)
        origin = network.peer_ids()[0]
        isolated = probed_owner(network, QUERIES[0], origin)
        network.faults.partition([isolated])
        _results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1

    def test_heal_restores_full_recall(self):
        partitioned = build_network()
        pristine = build_network()
        origin = partitioned.peer_ids()[0]
        isolated = probed_owner(partitioned, QUERIES[0], origin)
        partitioned.faults.partition([isolated])
        partitioned.query(origin, QUERIES[0])
        partitioned.faults.heal()
        assert not partitioned.faults.partitioned
        healed_results, healed_trace = partitioned.query(
            origin, QUERIES[0])
        clean_results, _trace = pristine.query(origin, QUERIES[0])
        assert healed_trace.dropped_count == 0
        assert [d.doc_id for d in healed_results] == \
            [d.doc_id for d in clean_results]

    def test_same_side_delivery_unaffected(self):
        # The cut blocks *cross*-group messages only: two majority-side
        # peers still exchange a routing hop while a third is isolated.
        network = build_network()
        peer_ids = network.peer_ids()
        network.faults.partition(peer_ids[:1])
        src, dst = peer_ids[1], peer_ids[2]
        _reply, rtt = network.transport.request(
            Message(src=src, dst=dst, kind=protocol.LOOKUP_HOP,
                    payload={}))
        assert rtt >= 0.0


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------

class TestDegrade:
    def test_service_rate_override(self):
        network = build_network(service_rate=400.0, async_queries=True)
        weak = network.peer_ids()[2]
        network.faults.degrade(weak, service_rate=100.0)
        assert network.transport.service_rate_of(weak) == 100.0
        assert network.transport.service_rate_of(
            network.peer_ids()[0]) == 400.0

    def test_service_rate_requires_model(self):
        network = build_network()      # service_rate=0: model inactive
        with pytest.raises(ValueError, match="service"):
            network.faults.degrade(network.peer_ids()[0],
                                   service_rate=100.0)

    def test_cache_shrink_drops_contents(self):
        network = build_network(cache_bytes=1 << 16, cache_ttl=10.0)
        origin = network.peer_ids()[0]
        network.query(origin, QUERIES[0])
        network.query(origin, QUERIES[0])   # warm the probe cache
        network.faults.degrade(origin, cache_bytes=0)
        _results, trace = network.query(origin, QUERIES[0])
        assert trace.cache_hits == 0

    def test_guards(self):
        network = build_network()
        with pytest.raises(KeyError):
            network.faults.degrade(424242, cache_bytes=0)
        with pytest.raises(ValueError, match="cache_bytes"):
            network.faults.degrade(network.peer_ids()[0],
                                   cache_bytes=-1)


# ----------------------------------------------------------------------
# Crashes under active async queries (the coverage satellite)
# ----------------------------------------------------------------------

class TestCrashUnderLoad:
    def test_async_in_flight_requests_drop_not_raise(self):
        network = build_network(async_queries=True, batch_lookups=True)
        origins = network.peer_ids()[:2]
        victim = probed_owner(network, QUERIES[0], origins[0])
        if victim in origins:
            pytest.skip("victim would also be an origin")
        # 0.15 lands inside the flight window of the first query's
        # ProbeBatch to the victim (sent 0.14, delivered 0.16 under the
        # 0.02s constant-latency model at this seed), so the crash
        # catches a request genuinely in flight.
        network.simulator.schedule(
            0.15, lambda: network.fail_peer(victim))
        jobs = network.run_queries(QUERIES * 4, origins=origins,
                                   arrival_rate=200.0)
        assert all(job.done for job in jobs)
        assert network.runtime.active == 0
        assert victim not in network.peer_ids()
        dropped = sum(job.trace.dropped_count for job in jobs)
        assert dropped >= 1

    def test_facade_crash_mid_run_equals_fail_peer(self):
        via_method = build_network(async_queries=True)
        via_facade = build_network(async_queries=True)
        victim = probed_owner(via_method, QUERIES[0],
                              via_method.peer_ids()[0])
        origins = [p for p in via_method.peer_ids() if p != victim][:2]
        via_method.simulator.schedule(
            0.001, lambda: via_method.fail_peer(victim))
        via_facade.simulator.schedule(
            0.001, lambda: via_facade.faults.crash(victim))
        jobs_m = via_method.run_queries(QUERIES * 2, origins=origins,
                                        arrival_rate=150.0)
        jobs_f = via_facade.run_queries(QUERIES * 2, origins=origins,
                                        arrival_rate=150.0)
        assert [[d.doc_id for d in job.results] for job in jobs_m] == \
            [[d.doc_id for d in job.results] for job in jobs_f]
        assert [job.trace.dropped_count for job in jobs_m] == \
            [job.trace.dropped_count for job in jobs_f]

    def test_sync_half_dead_owner_drops(self):
        # Transport endpoint gone but ring entry intact (the classic
        # half-dead peer): the sync engine reports DROPPED, no raise.
        network = build_network(batch_lookups=True)
        origin = network.peer_ids()[0]
        victim = probed_owner(network, QUERIES[0], origin)
        network.transport.unregister(victim)
        results, trace = network.query(origin, QUERIES[0])
        assert trace.dropped_count >= 1

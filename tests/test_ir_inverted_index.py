"""Tests for the positional inverted index."""

import pytest

from repro.ir.inverted_index import InvertedIndex


def _small_index():
    index = InvertedIndex()
    index.add_document(1, ["peer", "to", "peer", "retrieval"])
    index.add_document(2, ["peer", "network", "overlay"])
    index.add_document(3, ["retrieval", "quality", "evaluation"])
    return index


class TestConstruction:
    def test_counts(self):
        index = _small_index()
        assert index.num_documents == 3
        assert index.total_terms == 10
        assert index.average_document_length == pytest.approx(10 / 3)

    def test_document_length(self):
        index = _small_index()
        assert index.document_length(1) == 4
        assert index.document_length(2) == 3

    def test_duplicate_doc_rejected(self):
        index = _small_index()
        with pytest.raises(ValueError):
            index.add_document(1, ["x"])

    def test_vocabulary(self):
        index = _small_index()
        assert set(index.vocabulary()) == {
            "peer", "to", "retrieval", "network", "overlay", "quality",
            "evaluation"}
        assert index.vocabulary_size() == 7

    def test_empty_document_allowed(self):
        index = InvertedIndex()
        index.add_document(9, [])
        assert index.num_documents == 1
        assert index.document_length(9) == 0


class TestRemoval:
    def test_remove_updates_postings(self):
        index = _small_index()
        index.remove_document(1)
        assert index.num_documents == 2
        assert index.document_frequency("peer") == 1
        assert index.document_frequency("to") == 0
        assert "to" not in index.vocabulary()

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            _small_index().remove_document(99)


class TestFrequencies:
    def test_document_frequency(self):
        index = _small_index()
        assert index.document_frequency("peer") == 2
        assert index.document_frequency("quality") == 1
        assert index.document_frequency("absent") == 0

    def test_term_frequency(self):
        index = _small_index()
        assert index.term_frequency("peer", 1) == 2
        assert index.term_frequency("peer", 2) == 1
        assert index.term_frequency("peer", 3) == 0
        assert index.term_frequency("absent", 1) == 0

    def test_occurrences_positions(self):
        index = _small_index()
        occurrences = {occurrence.doc_id: occurrence.positions
                       for occurrence in index.occurrences("peer")}
        assert occurrences[1] == (0, 2)
        assert occurrences[2] == (0,)


class TestConjunctiveMatch:
    def test_documents_with_all(self):
        index = _small_index()
        assert index.documents_with_all(["peer", "retrieval"]) == {1}
        assert index.documents_with_all(["peer"]) == {1, 2}
        assert index.documents_with_all(["retrieval"]) == {1, 3}

    def test_unknown_term_short_circuits(self):
        index = _small_index()
        assert index.documents_with_all(["peer", "absent"]) == set()

    def test_empty_terms(self):
        assert _small_index().documents_with_all([]) == set()

    def test_key_document_frequency(self):
        index = _small_index()
        assert index.key_document_frequency(["peer", "retrieval"]) == 1
        assert index.key_document_frequency(["retrieval"]) == 2


class TestProximity:
    def test_cooccurring_within_window(self):
        index = InvertedIndex()
        index.add_document(1, ["alpha", "x", "beta", "y", "gamma"])
        near = index.cooccurring_terms(["alpha"], window=2)
        assert "beta" in near
        assert "x" in near
        assert "gamma" not in near  # 4 positions away

    def test_window_counts_documents(self):
        index = InvertedIndex()
        index.add_document(1, ["alpha", "beta"])
        index.add_document(2, ["alpha", "beta"])
        index.add_document(3, ["alpha", "z", "z", "z", "beta"])
        near = index.cooccurring_terms(["alpha"], window=1)
        assert near["beta"] == 2  # doc 3's beta is outside the window

    def test_multi_term_key_requires_all_near(self):
        index = InvertedIndex()
        index.add_document(1, ["a", "b", "c"])
        index.add_document(2, ["a", "x", "x", "x", "x", "b", "c"])
        near = index.cooccurring_terms(["a", "b"], window=2)
        # Doc 1: c at position 2 is within 2 of a(0) and b(1); doc 2: a
        # and b are 5 apart -> no position is near both.
        assert near.get("c") == 1

    def test_key_terms_excluded_from_candidates(self):
        index = InvertedIndex()
        index.add_document(1, ["a", "b", "a", "b"])
        near = index.cooccurring_terms(["a"], window=3)
        assert "a" not in near
        assert "b" in near

    def test_no_matching_documents(self):
        index = _small_index()
        assert index.cooccurring_terms(["absent"], window=5) == {}

    def test_restricted_doc_ids(self):
        index = InvertedIndex()
        index.add_document(1, ["a", "b"])
        index.add_document(2, ["a", "c"])
        near = index.cooccurring_terms(["a"], window=1, doc_ids=[2])
        assert "c" in near
        assert "b" not in near

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            _small_index().cooccurring_terms(["peer"], window=0)

    def test_term_sequence_roundtrip(self):
        index = _small_index()
        assert index.term_sequence(1) == ("peer", "to", "peer",
                                          "retrieval")

"""Tests for the evaluation toolkit."""

import pytest

from repro.core import protocol
from repro.eval.bandwidth import traffic_breakdown
from repro.eval.loadbalance import load_balance_report
from repro.eval.quality import (
    average_overlap_at_k,
    overlap_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.eval.reporting import format_table, print_table
from repro.eval.storage import storage_report


class TestOverlap:
    def test_identical(self):
        assert overlap_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_disjoint(self):
        assert overlap_at_k([1, 2], [3, 4], 2) == 0.0

    def test_partial(self):
        assert overlap_at_k([1, 2, 3, 4], [2, 9, 4, 8], 4) == 0.5

    def test_order_within_topk_irrelevant(self):
        assert overlap_at_k([3, 2, 1], [1, 2, 3], 3) == 1.0

    def test_short_reference(self):
        assert overlap_at_k([1, 2], [1, 2], 10) == 1.0
        assert overlap_at_k([7], [1], 10) == 0.0

    def test_empty_reference(self):
        assert overlap_at_k([], [], 5) == 1.0
        assert overlap_at_k([1], [], 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            overlap_at_k([1], [1], 0)

    def test_average(self):
        pairs = [([1], [1]), ([1], [2])]
        assert average_overlap_at_k(pairs, 1) == 0.5

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_overlap_at_k([], 1)


class TestPrecisionRecall:
    def test_precision(self):
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 4) == 0.5
        assert precision_at_k([1, 2], {1, 2, 3}, 2) == 1.0

    def test_precision_empty_candidate(self):
        assert precision_at_k([], {1}, 5) == 0.0

    def test_recall(self):
        assert recall_at_k([1, 2, 3], {1, 9}, 3) == 0.5
        assert recall_at_k([1, 9], {1, 9}, 2) == 1.0

    def test_recall_empty_relevant(self):
        assert recall_at_k([1], set(), 5) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], {1}, 0)
        with pytest.raises(ValueError):
            recall_at_k([1], {1}, -1)


class TestTrafficBreakdown:
    def test_categories(self):
        breakdown = traffic_breakdown({
            protocol.LOOKUP_HOP: 100.0,
            protocol.PUBLISH_KEY: 200.0,
            protocol.PROBE_KEY: 50.0,
            protocol.PROBE_REPLY: 70.0,
            "BaselineFetch": 10.0,
        })
        assert breakdown.routing == 100.0
        assert breakdown.indexing == 200.0
        assert breakdown.retrieval == 120.0
        assert breakdown.other == 10.0
        assert breakdown.total == 430.0

    def test_handover_is_indexing(self):
        breakdown = traffic_breakdown({protocol.HANDOVER: 5.0})
        assert breakdown.indexing == 5.0

    def test_as_dict(self):
        breakdown = traffic_breakdown({})
        assert breakdown.as_dict()["total"] == 0.0


class TestLoadBalance:
    def test_report_fields(self):
        report = load_balance_report([1.0, 2.0, 3.0])
        assert "gini" in report
        assert "max_over_mean" in report
        assert report["mean"] == pytest.approx(2.0)


class TestStorageReport:
    def test_report_over_network(self, hdk_network):
        report = storage_report(hdk_network)
        assert report.total_keys > 0
        assert report.total_postings > 0
        assert report.total_bytes > 0
        assert len(report.per_peer_bytes) == 10
        assert 1 in report.keys_by_size
        summary = report.summary()
        assert summary["total_keys"] == report.total_keys
        assert 0 <= summary["gini"] < 1

    def test_total_consistent_with_per_peer(self, hdk_network):
        report = storage_report(hdk_network)
        assert report.total_bytes == sum(report.per_peer_bytes.values())


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["long-name", 123456.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_numbers(self):
        table = format_table(["x"], [[1234567.0], [0.12345], [12.5]])
        assert "1,234,567" in table
        assert "0.123" in table
        assert "12.5" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_print_table(self, capsys):
        print_table("Demo", ["a"], [[1]])
        output = capsys.readouterr().out
        assert "== Demo ==" in output
        assert "1" in output

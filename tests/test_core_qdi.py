"""Tests for Query-Driven Indexing: activation, harvest, eviction,
adaptivity."""

import pytest

from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.lattice import ProbeStatus
from repro.core.network import AlvisNetwork
from repro.util.rng import make_rng


def _qdi_net(small_corpus, threshold=2, **overrides):
    config = AlvisConfig(qdi_activation_threshold=threshold, **overrides)
    network = AlvisNetwork(num_peers=8, config=config, seed=21)
    network.distribute_documents(small_corpus.documents())
    network.build_index(mode="qdi")
    return network


class TestInitialState:
    def test_starts_single_term_only(self, qdi_network):
        for peer in qdi_network.peers():
            for entry in peer.fragment:
                if entry.postings or entry.contributors:
                    assert len(entry.key) == 1

    def test_managers_attached(self, qdi_network):
        assert all(peer.qdi is not None for peer in qdi_network.peers())


class TestActivation:
    def test_repeated_query_activates_key(self, small_corpus,
                                          small_workload):
        network = _qdi_net(small_corpus, threshold=2)
        query = list(small_workload.pool[0])
        origin = network.peer_ids()[0]
        # First queries: full key missing.
        _results, trace1 = network.query(origin, query)
        full_key = trace1.query
        statuses = dict(trace1.probes)
        assert statuses[full_key] == ProbeStatus.MISSING
        network.query(origin, query)
        # Activation threshold 2 reached -> the key is indexed on demand.
        owner = network.ring.successor_of(full_key.key_id)
        entry = network.peer(owner).fragment.get(full_key)
        assert entry is not None
        assert entry.on_demand
        assert entry.postings
        # Next query answers from the indexed combination.
        _results, trace3 = network.query(origin, query)
        statuses3 = dict(trace3.probes)
        assert statuses3[full_key] in (ProbeStatus.UNTRUNCATED,
                                       ProbeStatus.TRUNCATED)

    def test_activation_improves_efficiency(self, small_corpus,
                                            small_workload):
        network = _qdi_net(small_corpus, threshold=2)
        query = list(small_workload.pool[1])
        origin = network.peer_ids()[0]
        _r, before = network.query(origin, query)
        network.query(origin, query)
        _r, after = network.query(origin, query)
        assert after.probed_count <= before.probed_count

    def test_activated_results_match_hdk_style_union(self, small_corpus,
                                                     small_workload):
        """After activation, results must still contain the conjunctive
        matches (quality does not regress when the index adapts)."""
        network = _qdi_net(small_corpus, threshold=1)
        query = list(small_workload.pool[2])
        origin = network.peer_ids()[0]
        results_cold, _ = network.query(origin, query)
        results_warm, _ = network.query(origin, query)
        cold_ids = {doc.doc_id for doc in results_cold}
        warm_ids = {doc.doc_id for doc in results_warm}
        # Conjunctive matches present before must remain present.
        conjunctive = set()
        for peer in network.peers():
            conjunctive |= peer.engine.index.documents_with_all(query)
        if conjunctive:
            assert conjunctive & warm_ids

    def test_redundant_combination_not_activated(self, small_corpus):
        network = _qdi_net(small_corpus, threshold=1)
        # Find a single-term key with an untruncated list, then query a
        # superset of it: the full query is covered -> redundant.
        target_term = None
        for peer in network.peers():
            for entry in peer.fragment:
                if (len(entry.key) == 1 and entry.postings
                        and not entry.postings.truncated
                        and 1 < entry.global_df <= 3):
                    target_term = entry.key.terms[0]
                    break
            if target_term:
                break
        assert target_term is not None
        # Pair it with a term that never co-occurs: conjunction is empty,
        # and the rare term's list is complete -> feedback says redundant.
        partner = None
        for peer in network.peers():
            for term in peer.engine.index.vocabulary():
                if term == target_term:
                    continue
                cooccur = False
                for other in network.peers():
                    if other.engine.index.documents_with_all(
                            [target_term, term]):
                        cooccur = True
                        break
                if not cooccur:
                    partner = term
                    break
            if partner:
                break
        assert partner is not None
        origin = network.peer_ids()[0]
        key = Key([target_term, partner])
        for _ in range(4):
            network.query(origin, [target_term, partner])
        owner = network.ring.successor_of(key.key_id)
        entry = network.peer(owner).fragment.get(key)
        # Never indexed on demand (shadow entry at most).
        assert entry is None or not entry.on_demand


class TestHarvest:
    def test_harvest_messages_accounted(self, small_corpus,
                                        small_workload):
        network = _qdi_net(small_corpus, threshold=1)
        network.reset_traffic()
        origin = network.peer_ids()[0]
        network.query(origin, list(small_workload.pool[3]))
        by_kind = network.bytes_by_kind()
        total_activations = sum(peer.qdi.stats.activations
                                for peer in network.peers())
        if total_activations:
            assert by_kind.get("HarvestKey", 0) > 0
            assert by_kind.get("ContributorsGet", 0) > 0

    def test_harvest_fanout_bounded(self, small_corpus, small_workload):
        network = _qdi_net(small_corpus, threshold=1,
                           qdi_harvest_fanout=2)
        origin = network.peer_ids()[0]
        for query in small_workload.pool[:5]:
            network.query(origin, list(query))
        for peer in network.peers():
            for entry in peer.fragment:
                if entry.on_demand:
                    assert len(entry.contributors) <= 2

    def test_harvested_posting_lists_truncated(self, small_corpus,
                                               small_workload):
        network = _qdi_net(small_corpus, threshold=1, truncation_k=3)
        origin = network.peer_ids()[0]
        for query in small_workload.pool[:8]:
            network.query(origin, list(query))
        for peer in network.peers():
            for entry in peer.fragment:
                assert len(entry.postings) <= 3


class TestMaintenance:
    def test_decay_and_eviction(self, small_corpus, small_workload):
        network = _qdi_net(small_corpus, threshold=1,
                           qdi_maintenance_interval=5,
                           qdi_decay=0.1,
                           qdi_eviction_threshold=0.5)
        rng = make_rng(33, "drift")
        origin_ids = network.peer_ids()
        # Phase 1: make some keys popular.
        for index, query in enumerate(small_workload.pool[:5] * 2):
            network.query(origin_ids[index % len(origin_ids)],
                          list(query))
        on_demand_before = sum(
            1 for peer in network.peers() for entry in peer.fragment
            if entry.on_demand)
        assert on_demand_before > 0
        # Phase 2: hammer different queries; old keys decay and evict.
        for index, query in enumerate(small_workload.pool[20:40] * 3):
            network.query(origin_ids[index % len(origin_ids)],
                          list(query))
        evictions = sum(peer.qdi.stats.evictions
                        for peer in network.peers())
        assert evictions > 0

    def test_stats_snapshot_fields(self, qdi_network):
        peer = qdi_network.peers()[0]
        snapshot = peer.qdi.stats.snapshot()
        assert set(snapshot) == {"probes_seen", "activations",
                                 "harvest_messages", "evictions",
                                 "redundant_suppressed"}

    def test_manual_maintenance_runs(self, qdi_network):
        peer = qdi_network.peers()[0]
        evicted = peer.qdi.run_maintenance()
        assert isinstance(evicted, list)

    def test_same_round_bumps_survive_aggressive_maintenance(
            self, small_corpus, small_workload):
        """Maintenance after *every* probe (interval=1) with brutal
        decay: under the old decay-then-evict-everything order a
        missing key's popularity was wiped in the same round it was
        recorded, so activation could never trigger.  The explicit
        record→decay→evict contract keeps same-round bumps alive."""
        network = _qdi_net(small_corpus, threshold=2,
                          qdi_maintenance_interval=1,
                          qdi_decay=0.1,
                          qdi_eviction_threshold=0.5)
        query = list(small_workload.pool[0])
        origins = network.peer_ids()
        for origin in origins[:4]:
            network.query(origin, query)
        activations = sum(peer.qdi.stats.activations
                          for peer in network.peers())
        assert activations > 0

"""Tests for the asyncio/UDP transport backend.

Two transports on localhost play requester and host.  The tests pin the
SimTransport-mirroring semantics the engine depends on: sync ``request``
raises ``DeliveryError`` on failure, ``request_async`` surfaces churn /
unknown peers / timeouts as ``RequestOutcome`` statuses without ever
raising, in-flight counts return to zero, and malformed datagrams
(truncated, unknown kind, garbage) degrade into clean outcomes instead
of crashing either side.
"""

import socket
import threading
import time

import pytest

from repro.core import protocol
from repro.ir.postings import Posting, PostingList
from repro.net.message import Message
from repro.net.transport import DeliveryError
from repro.net.udp import UdpTransport

REQUEST_TIMEOUT = 2.0


class _ProbeHost:
    """Endpoint answering probes; swallows feedback (one-way)."""

    def __init__(self):
        self.received = []

    def on_message(self, message):
        self.received.append(message)
        if message.kind == protocol.PROBE_KEY:
            postings = PostingList([Posting(3, 1.5)], global_df=4)
            return message.reply(protocol.PROBE_REPLY,
                                 {"found": True, "postings": postings})
        if message.kind == protocol.HARVEST_KEY:
            raise RuntimeError("handler exploded")
        return None


@pytest.fixture()
def pair():
    requester = UdpTransport(default_timeout=REQUEST_TIMEOUT).start()
    host = UdpTransport(default_timeout=REQUEST_TIMEOUT).start()
    endpoint = _ProbeHost()
    host.register(42, endpoint)
    requester.add_route(42, host.local_address)
    yield requester, host, endpoint
    requester.close()
    host.close()


def _probe(dst=42):
    return Message(src=1, dst=dst, kind=protocol.PROBE_KEY,
                   payload={"key_terms": ["peer"]})


def _outcome(transport, future, timeout=5.0):
    """Safely await a future resolved on the transport's loop thread."""
    done = threading.Event()
    box = []
    transport.call_in_loop(lambda: future.add_done_callback(
        lambda resolved: (box.append(resolved.value), done.set())))
    assert done.wait(timeout), "outcome never resolved"
    return box[0]


class TestRequestReply:
    def test_sync_request_round_trip(self, pair):
        requester, _host, endpoint = pair
        reply, rtt = requester.request(_probe())
        assert reply.kind == protocol.PROBE_REPLY
        assert reply.payload["found"] is True
        assert reply.payload["postings"].entries[0].doc_id == 3
        assert rtt > 0
        assert endpoint.received[0].kind == protocol.PROBE_KEY

    def test_async_reply_outcome(self, pair):
        requester, _host, _endpoint = pair
        outcome = _outcome(requester, requester.request_async(_probe()))
        assert outcome.status == "ok"
        assert outcome.reply.payload["found"] is True

    def test_one_way_acked_as_ok_none(self, pair):
        # Wire-level ack plays the simulator's on_delivered role: a
        # handler that returns None still resolves ("ok", None).
        requester, _host, endpoint = pair
        message = Message(src=1, dst=42, kind=protocol.FEEDBACK,
                          payload={"key_terms": ["peer"],
                                   "redundant": True})
        outcome = _outcome(requester, requester.request_async(message))
        assert (outcome.status, outcome.reply) == ("ok", None)
        assert endpoint.received[-1].kind == protocol.FEEDBACK

    def test_request_id_correlation(self, pair):
        requester, _host, _endpoint = pair
        futures = [requester.request_async(_probe()) for _ in range(8)]
        outcomes = [_outcome(requester, future) for future in futures]
        assert {outcome.status for outcome in outcomes} == {"ok"}
        # Every reply matched its own request, not another in flight.
        for outcome in outcomes:
            assert outcome.reply.reply_to == outcome.request.message_id
            assert outcome.request_id == outcome.request.message_id

    def test_local_endpoint_served_in_process(self, pair):
        requester, _host, _endpoint = pair
        local = _ProbeHost()
        requester.register(7, local)
        reply, _rtt = requester.request(_probe(dst=7))
        assert reply.payload["found"] is True
        assert local.received


class TestFailureSurfacing:
    def test_unknown_peer_at_host_is_dropped(self, pair):
        requester, host, _endpoint = pair
        requester.add_route(77, host.local_address)
        outcome = _outcome(requester,
                           requester.request_async(_probe(dst=77)))
        assert outcome.status == "dropped"
        assert outcome.reply is None

    def test_unroutable_destination_is_dropped(self, pair):
        requester, _host, _endpoint = pair
        outcome = _outcome(requester,
                           requester.request_async(_probe(dst=999)))
        assert outcome.status == "dropped"

    def test_departed_peer_sync_raises_delivery_error(self, pair):
        requester, host, _endpoint = pair
        host.unregister(42)
        with pytest.raises(DeliveryError):
            requester.request(_probe())

    def test_unroutable_sync_raises_delivery_error(self, pair):
        requester, _host, _endpoint = pair
        with pytest.raises(DeliveryError):
            requester.request(_probe(dst=999))

    def test_timeout_on_silent_destination(self, pair):
        requester, _host, _endpoint = pair
        silent = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        silent.bind(("127.0.0.1", 0))
        try:
            requester.add_route(500, silent.getsockname())
            outcome = _outcome(requester, requester.request_async(
                _probe(dst=500), timeout=0.2))
            assert outcome.status == "timeout"
        finally:
            silent.close()

    def test_handler_exception_nacked_not_fatal(self, pair):
        requester, _host, endpoint = pair
        message = Message(src=1, dst=42, kind=protocol.HARVEST_KEY,
                          payload={"key_terms": ["peer"], "k": 5})
        outcome = _outcome(requester, requester.request_async(message))
        assert outcome.status == "dropped"
        # The host survives and keeps serving.
        reply, _rtt = requester.request(_probe())
        assert reply.payload["found"] is True

    def test_request_async_never_raises(self, pair):
        requester, host, _endpoint = pair
        host.unregister(42)
        future = requester.request_async(_probe())
        assert _outcome(requester, future).status == "dropped"


class TestInflightAccounting:
    def test_zero_after_replies(self, pair):
        requester, _host, _endpoint = pair
        futures = [requester.request_async(_probe()) for _ in range(5)]
        for future in futures:
            _outcome(requester, future)
        assert requester.inflight(42) == 0
        assert requester.total_inflight() == 0

    def test_zero_after_timeout_and_drop(self, pair):
        requester, _host, _endpoint = pair
        silent = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        silent.bind(("127.0.0.1", 0))
        try:
            requester.add_route(500, silent.getsockname())
            timeout_future = requester.request_async(_probe(dst=500),
                                                     timeout=0.2)
            drop_future = requester.request_async(_probe(dst=999))
            assert _outcome(requester, timeout_future).status == "timeout"
            assert _outcome(requester, drop_future).status == "dropped"
            assert requester.total_inflight() == 0
        finally:
            silent.close()


class TestMalformedDatagrams:
    def _flush(self, requester):
        """The host still answers a well-formed probe."""
        reply, _rtt = requester.request(_probe())
        assert reply.payload["found"] is True

    def test_garbage_datagram_counted_and_ignored(self, pair):
        requester, host, _endpoint = pair
        raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            raw.sendto(b"not a datagram of ours", host.local_address)
            deadline = time.monotonic() + 2.0
            while host.decode_errors == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert host.decode_errors == 1
            self._flush(requester)
        finally:
            raw.close()

    def test_truncated_datagram_times_out_cleanly(self, pair):
        # A datagram cut mid-flight decodes to nothing at the host; the
        # requester sees a clean timeout outcome, not an exception.
        requester, host, _endpoint = pair
        from repro.net import wire
        data = wire.encode(_probe())
        raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            raw.sendto(data[:len(data) - 4], host.local_address)
            deadline = time.monotonic() + 2.0
            while host.decode_errors == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert host.decode_errors == 1
            self._flush(requester)
        finally:
            raw.close()

    def test_unknown_kind_datagram_ignored(self, pair):
        requester, host, _endpoint = pair
        import struct
        from repro.net import wire
        data = bytearray(wire.encode(_probe()))
        struct.pack_into(">H", data, 3, 0xFEFE)  # unknown kind tag
        raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            raw.sendto(bytes(data), host.local_address)
            deadline = time.monotonic() + 2.0
            while host.decode_errors == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert host.decode_errors == 1
            self._flush(requester)
        finally:
            raw.close()

    def test_oversized_payload_is_clean_outcome(self, pair):
        # An unencodable (oversized) request never leaves the process:
        # it degrades into the transport's failure surface, not a crash.
        requester, _host, _endpoint = pair
        message = Message(
            src=1, dst=42, kind=protocol.REFINE_QUERY,
            payload={"terms": [],
                     "doc_ids": list(range(10_000))})
        outcome = _outcome(requester,
                           requester.request_async(message, timeout=0.3))
        assert outcome.status in ("timeout", "dropped")
        assert requester.encode_errors == 1
        assert requester.total_inflight() == 0


class TestAccounting:
    def test_modelled_bytes_accounted_on_both_sides(self, pair):
        requester, host, _endpoint = pair
        requester.request(_probe())
        probe_bytes = _probe().size_bytes()
        # Requester accounts its request + the reply it received; the
        # host accounts the inbound request + the reply it sent — the
        # same two legs the simulator's single transport records once.
        assert requester.metrics.counter_value(
            f"net.bytes.sent.{protocol.PROBE_KEY}") == probe_bytes
        assert requester.metrics.counter_value("net.msgs.sent") == 2
        assert host.metrics.counter_value("net.msgs.sent") == 2
        assert host.metrics.counter_value(
            f"net.bytes.sent.{protocol.PROBE_KEY}") == probe_bytes

    def test_wire_counters_track_datagrams(self, pair):
        requester, host, _endpoint = pair
        requester.request(_probe())
        assert requester.datagrams_sent == 1
        assert requester.datagrams_received == 1
        assert host.datagrams_received == 1
        assert requester.wire_bytes_sent == \
            host.wire_bytes_received

    def test_reset_load_counters(self, pair):
        requester, host, _endpoint = pair
        requester.request(_probe())
        assert host.bytes_in[42] > 0
        host.reset_load_counters()
        assert host.bytes_in == {42: 0}

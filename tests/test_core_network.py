"""Integration tests for AlvisNetwork: statistics, HDK build, retrieval,
refinement, incremental publishing, churn, access control."""

import pytest

from repro.core.access import AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.lattice import ProbeStatus
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.ir.documents import Document


class TestSetup:
    def test_network_shape(self, hdk_network):
        assert hdk_network.num_peers == 10
        assert hdk_network.ring.size == 10
        assert hdk_network.total_documents() == 120
        assert hdk_network.mode == "hdk"

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            AlvisNetwork(num_peers=0)
        with pytest.raises(ValueError):
            AlvisNetwork(num_peers=3, peer_ids=[1, 2])

    def test_distribution_round_robin(self):
        network = AlvisNetwork(num_peers=4, seed=1)
        network.distribute_documents(sample_documents())
        counts = [peer.engine.num_documents for peer in network.peers()]
        assert sum(counts) == 12
        assert max(counts) == 3

    def test_distribution_contiguous(self):
        network = AlvisNetwork(num_peers=3, seed=1)
        network.distribute_documents(sample_documents(),
                                     assignment="contiguous")
        counts = [peer.engine.num_documents for peer in network.peers()]
        assert counts == [4, 4, 4]

    def test_unknown_assignment_rejected(self):
        network = AlvisNetwork(num_peers=2, seed=1)
        with pytest.raises(ValueError):
            network.distribute_documents(sample_documents(),
                                         assignment="bogus")

    def test_doc_owner_mapping(self):
        network = AlvisNetwork(num_peers=2, seed=1)
        ids = network.publish_documents(network.peer_ids()[0],
                                        sample_documents()[:2])
        for doc_id in ids:
            assert network.doc_owner(doc_id) == network.peer_ids()[0]
        assert network.doc_owner(99999) is None


class TestStatisticsPhase:
    def test_global_dfs_are_true_dfs(self, hdk_network,
                                     small_corpus_documents):
        # Recompute global dfs centrally and compare with the aggregated
        # values cached at the peers.
        analyzer = hdk_network.analyzer
        true_df = {}
        for document in small_corpus_documents:
            for term in set(analyzer.analyze(document.text)):
                true_df[term] = true_df.get(term, 0) + 1
        checked = 0
        for peer in hdk_network.peers():
            for term in list(peer.engine.index.vocabulary())[:40]:
                assert peer.stats_cache.df(term) == true_df[term]
                checked += 1
        assert checked > 100

    def test_collection_totals(self, hdk_network):
        for peer in hdk_network.peers():
            totals = peer.stats_cache.totals
            assert totals is not None
            assert totals.num_documents == 120
            assert totals.num_peers == 10

    def test_statistics_traffic_accounted(self, small_corpus):
        network = AlvisNetwork(num_peers=5, seed=3)
        network.distribute_documents(small_corpus.documents()[:40])
        network.run_statistics_phase()
        by_kind = network.bytes_by_kind()
        assert by_kind.get("DfPublish", 0) > 0
        assert by_kind.get("DfReply", 0) > 0
        assert by_kind.get("CollectionPublish", 0) > 0


class TestHDKBuild:
    def test_multi_term_keys_created(self, hdk_network):
        sizes = set()
        for peer in hdk_network.peers():
            for entry in peer.fragment:
                sizes.add(len(entry.key))
        assert 1 in sizes
        assert 2 in sizes  # expansion happened

    def test_key_size_bounded_by_s_max(self, hdk_network):
        s_max = hdk_network.config.s_max
        for peer in hdk_network.peers():
            for entry in peer.fragment:
                assert len(entry.key) <= s_max

    def test_posting_lists_truncated_to_k(self, hdk_network):
        k = hdk_network.config.truncation_k
        for peer in hdk_network.peers():
            for entry in peer.fragment:
                assert len(entry.postings) <= k

    def test_keys_live_at_their_dht_owner(self, hdk_network):
        for peer in hdk_network.peers():
            for entry in peer.fragment:
                owner = hdk_network.ring.successor_of(entry.key.key_id)
                assert owner == peer.peer_id

    def test_expansions_only_for_non_discriminative(self, hdk_network):
        # Every multi-term key must extend a key whose global df exceeded
        # DF_max (we verify the parent exists and was frequent).
        df_max = hdk_network.config.df_max
        frequent_parents = 0
        for peer in hdk_network.peers():
            for entry in peer.fragment:
                if len(entry.key) != 2:
                    continue
                parents = entry.key.subsets(1)
                parent_dfs = []
                for parent in parents:
                    owner = hdk_network.ring.successor_of(parent.key_id)
                    parent_entry = hdk_network.peer(owner).fragment.get(
                        parent)
                    if parent_entry is not None:
                        parent_dfs.append(parent_entry.global_df)
                if any(df > df_max for df in parent_dfs):
                    frequent_parents += 1
        assert frequent_parents > 0

    def test_build_requires_statistics_is_automatic(self, small_corpus):
        network = AlvisNetwork(num_peers=4, seed=5)
        network.distribute_documents(small_corpus.documents()[:30])
        stats = network.build_index(mode="hdk")  # runs stats implicitly
        assert stats.keys_published > 0

    def test_unknown_mode_rejected(self):
        network = AlvisNetwork(num_peers=2, seed=1)
        network.distribute_documents(sample_documents())
        with pytest.raises(ValueError):
            network.build_index(mode="bogus")


class TestQuerying:
    def test_single_term_query(self, hdk_network, small_corpus):
        analyzer = hdk_network.analyzer
        term = analyzer.analyze(" ".join(
            small_corpus.document_terms(0)))[0]
        results, trace = hdk_network.query(hdk_network.peer_ids()[0],
                                           [term])
        assert results
        assert trace.probed_count == 1

    def test_multi_term_results_contain_conjunctive_match(
            self, hdk_network, small_corpus, small_workload):
        # Queries are built from single documents, so the conjunction is
        # non-empty; the distributed result should find at least one of
        # the matching documents for most queries.
        hits = 0
        for query in small_workload.pool[:15]:
            results, _trace = hdk_network.query(
                hdk_network.peer_ids()[0], list(query))
            if results:
                hits += 1
        assert hits >= 12

    def test_trace_accounting_nonzero(self, hdk_network, small_workload):
        query = list(small_workload.pool[0])
        _results, trace = hdk_network.query(hdk_network.peer_ids()[1],
                                            query)
        assert trace.bytes_sent > 0
        assert trace.request_messages >= trace.probed_count
        assert trace.rtt_estimate > 0
        assert "ProbeKey" in trace.bytes_by_kind

    def test_results_bounded_by_result_k(self, hdk_network,
                                         small_workload):
        for query in small_workload.pool[:5]:
            results, _trace = hdk_network.query(
                hdk_network.peer_ids()[0], list(query))
            assert len(results) <= hdk_network.config.result_k

    def test_query_deterministic(self, hdk_network, small_workload):
        query = list(small_workload.pool[3])
        first, _ = hdk_network.query(hdk_network.peer_ids()[2], query)
        second, _ = hdk_network.query(hdk_network.peer_ids()[2], query)
        assert [(doc.doc_id, doc.score) for doc in first] == \
            [(doc.doc_id, doc.score) for doc in second]

    def test_query_string_analyzed(self, tiny_network):
        results, trace = tiny_network.query(
            tiny_network.peer_ids()[0], "posting lists are truncated")
        assert results
        # Stopword "are" must not appear in the query key.
        assert "are" not in trace.query.terms

    def test_empty_query_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.query(tiny_network.peer_ids()[0], "the of and")

    def test_refinement_reorders_with_exact_scores(self, tiny_network):
        results, trace = tiny_network.query(
            tiny_network.peer_ids()[0], "peer index network",
            refine=True)
        assert trace.refined
        assert results
        scores = [doc.score for doc in results]
        assert scores == sorted(scores, reverse=True)

    def test_query_from_every_peer_works(self, hdk_network,
                                         small_workload):
        query = list(small_workload.pool[1])
        expected = None
        for peer_id in hdk_network.peer_ids():
            results, _trace = hdk_network.query(peer_id, query)
            ids = [doc.doc_id for doc in results]
            if expected is None:
                expected = ids
            else:
                assert ids == expected  # origin-independent results


class TestDocumentAccess:
    def test_fetch_public_document(self, tiny_network):
        results, _ = tiny_network.query(tiny_network.peer_ids()[0],
                                        "congestion control")
        assert results
        reply = tiny_network.fetch_document(
            tiny_network.peer_ids()[0], results[0].doc_id,
            terms=["congestion"])
        assert reply["ok"]
        assert reply["title"]
        assert reply["url"]

    def test_protected_document_needs_credentials(self):
        network = AlvisNetwork(num_peers=3, seed=6)
        network.distribute_documents(sample_documents())
        secret = Document(doc_id=0, title="Secret report",
                          text="confidential merger details zebra")
        doc_id = network.publish_documents(
            network.peer_ids()[0], [secret],
            policy=AccessPolicy.password("alice", "pw"))[0]
        network.build_index(mode="hdk")
        other = network.peer_ids()[1]
        denied = network.fetch_document(other, doc_id)
        assert not denied["ok"]
        assert denied["error"] == "access-denied"
        granted = network.fetch_document(other, doc_id,
                                         credentials=("alice", "pw"))
        assert granted["ok"]

    def test_fetch_unknown_document(self, tiny_network):
        reply = tiny_network.fetch_document(tiny_network.peer_ids()[0],
                                            10 ** 9)
        assert not reply["ok"]


class TestIncrementalPublish:
    def test_new_document_becomes_searchable(self, tiny_network):
        zebra = Document(doc_id=0, title="Zebra studies",
                         text="zebra quagga savanna migration zebra "
                              "quagga herds")
        origin = tiny_network.peer_ids()[0]
        doc_id = tiny_network.publish_incremental(
            tiny_network.peer_ids()[2], zebra)
        results, _trace = tiny_network.query(origin, "zebra quagga")
        assert [doc.doc_id for doc in results] == [doc_id]


class TestChurn:
    def test_index_preserved_across_churn(self, tiny_network):
        keys_before = tiny_network.total_keys()
        churn = tiny_network.churn()
        churn.join()
        churn.leave()
        churn.join()
        assert tiny_network.total_keys() == keys_before
        # Every key must sit at its current DHT owner.
        for peer in tiny_network.peers():
            for entry in peer.fragment:
                assert tiny_network.ring.successor_of(
                    entry.key.key_id) == peer.peer_id

    def test_handover_traffic_accounted(self, tiny_network):
        tiny_network.reset_traffic()
        churn = tiny_network.churn()
        churn.join()
        by_kind = tiny_network.bytes_by_kind()
        # A join in a 6-peer network with ~150 keys almost surely moves
        # at least one entry.
        assert by_kind.get("IndexHandover", 0) > 0

    def test_query_correct_after_churn(self, tiny_network):
        results_before, _ = tiny_network.query(
            tiny_network.peer_ids()[0], "document digest")
        churn = tiny_network.churn()
        for _ in range(3):
            churn.join()
        origin = tiny_network.peer_ids()[0]
        results_after, _ = tiny_network.query(origin, "document digest")
        assert [doc.doc_id for doc in results_after] == \
            [doc.doc_id for doc in results_before]

    def test_departed_peer_documents_unreachable(self, tiny_network):
        churn = tiny_network.churn()
        victim = tiny_network.peer_ids()[0]
        churn.leave(victim)
        assert victim not in tiny_network.peer_ids()
        assert not tiny_network.transport.is_registered(victim)


class TestRngStreamIsolation:
    """Every stochastic subsystem draws from its own labeled
    ``make_rng`` stream, so deterministic features that change traffic
    volume (probe caching, frontier batching, early termination) cannot
    perturb churn or any other random sequence under a fixed seed."""

    def _network(self, **overrides):
        network = AlvisNetwork(num_peers=6,
                               config=AlvisConfig(**overrides), seed=4)
        network.distribute_documents(sample_documents())
        network.build_index(mode="hdk")
        return network

    def test_engine_features_do_not_perturb_churn(self):
        baseline = self._network()
        engined = self._network(batch_lookups=True,
                                cache_bytes=64 * 1024,
                                topk_early_stop=True)
        histories = []
        for network in (baseline, engined):
            origin = network.peer_ids()[0]
            for query in ("posting lists are truncated",
                          "peer index network",
                          "posting lists are truncated"):
                network.query(origin, query)
            churn = network.churn()
            churn.run_session(joins=3, leaves=2)
            histories.append([(event.kind, event.node_id)
                              for event in churn.history])
        # Identical churn decisions despite wildly different query
        # traffic — the streams never touched each other.
        assert histories[0] == histories[1]
        assert baseline.ring.member_ids == engined.ring.member_ids

    def test_results_identical_across_engine_configs_after_churn(self):
        baseline = self._network()
        engined = self._network(batch_lookups=True,
                                cache_bytes=64 * 1024)
        for network in (baseline, engined):
            network.churn().run_session(joins=2, leaves=1)
        origin = baseline.peer_ids()[0]
        assert origin in engined.peer_ids()
        base_results, _t = baseline.query(origin, "document digest")
        engine_results, _t = engined.query(origin, "document digest")
        assert [doc.doc_id for doc in base_results] == \
            [doc.doc_id for doc in engine_results]

    def test_second_churn_process_gets_fresh_stream(self):
        network = self._network()
        first = network.churn()
        first.run_session(joins=2, leaves=0)
        second = network.churn()
        second.run_session(joins=2, leaves=0)
        first_joins = [event.node_id for event in first.history]
        second_joins = [event.node_id for event in second.history]
        # A replayed stream would try to re-join the same ids.
        assert first_joins != second_joins

    def test_subsystem_streams_are_independent(self):
        from repro.util.rng import make_rng
        seed = 4
        streams = {label: make_rng(seed, label).random()
                   for label in ("latency", "peer-ids", "churn")}
        assert len(set(streams.values())) == len(streams)

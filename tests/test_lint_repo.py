"""Tier-1 gate: the repo itself lints clean against its baseline.

This is the test that makes the lint rules load-bearing: a determinism
leak, an upward import, a drifted wire schema or a flipped config
default introduced anywhere in ``src/``, ``benchmarks/`` or
``examples/`` fails the suite, not just the (optional) CI lint job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import compare_with_baseline, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "lint_baseline.json"
SCAN = [REPO_ROOT / name for name in ("src", "benchmarks", "examples")]


@pytest.fixture(scope="module")
def repo_findings():
    paths = [path for path in SCAN if path.is_dir()]
    assert paths, "repo layout changed: nothing to lint"
    return run_lint(paths, project_root=REPO_ROOT)


def test_repo_matches_baseline_exactly(repo_findings):
    baseline = load_baseline(BASELINE)
    new, stale = compare_with_baseline(repo_findings, baseline)
    assert not new, "new lint findings:\n" + "\n".join(
        f"  {f.location()}: {f.code} {f.message}" for f in new)
    assert not stale, "stale baseline entries (remove them):\n" + \
        "\n".join(f"  {path} {code} {symbol}"
                  for path, code, symbol in stale)


def test_determinism_baseline_is_empty(repo_findings):
    # Hard acceptance bar: no grandfathered nondeterminism, anywhere.
    leaks = [f for f in repo_findings
             if f.code in ("RPL010", "RPL011", "RPL012")]
    assert leaks == []
    baseline = load_baseline(BASELINE)
    assert not any(code in ("RPL010", "RPL011", "RPL012")
                   for _path, code, _symbol in baseline)


def test_layering_baseline_is_empty(repo_findings):
    # Hard acceptance bar: the import DAG holds with no exceptions.
    upward = [f for f in repo_findings if f.code in ("RPL050", "RPL051")]
    assert upward == []
    baseline = load_baseline(BASELINE)
    assert not any(code in ("RPL050", "RPL051")
                   for _path, code, _symbol in baseline)


def test_baseline_file_is_committed_and_empty():
    # The goal state reached by this change: zero grandfathered debt.
    assert BASELINE.exists()
    assert load_baseline(BASELINE) == {}

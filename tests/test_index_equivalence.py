"""Differential acceptance gate for the indexing-phase scale-out.

The indexing-phase optimisations come in three layers, and each layer
has a different equivalence contract this file pins:

* ``packed_postings`` (wire-level flat posting arrays) is a pure
  re-encoding — with the knob on or off, the built index *and every
  traffic counter* must agree byte for byte;
* ``batch_index_lookups`` (same-owner bulk statistics round-trips plus
  the batched frontier walk and its routing cache) may reshape
  ``LookupHop`` traffic — fewer, larger hop messages — but must never
  change the index contents nor any *non-lookup* message;
* ``kernel_profile="fast"`` vs ``"legacy"`` (the A/B the scale
  benchmark runs, legacy pinning every pre-optimisation CPU path) must
  build the identical index state and HDK statistics.

Each test builds two networks from identical seeds differing in exactly
one of those switches and compares ``state_fingerprint`` — the full
per-peer index state digest the scale benchmark gates on — plus the
relevant traffic accounting.
"""

from __future__ import annotations

import pytest

from repro.core.config import AlvisConfig
from repro.core.fingerprint import state_fingerprint
from repro.core.network import AlvisNetwork
from repro.core.protocol import LOOKUP_HOP
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=140, vocabulary_size=700, num_topics=6, seed=11))


def _build(corpus, kernel_profile="fast", num_peers=24, seed=7, **knobs):
    network = AlvisNetwork(num_peers=num_peers, config=AlvisConfig(**knobs),
                           seed=seed, kernel_profile=kernel_profile)
    network.distribute_documents(corpus.documents())
    network.run_statistics_phase()
    stats = network.build_index(mode="hdk")
    return network, stats


def _non_lookup_traffic(network):
    return {kind: volume
            for kind, volume in network.bytes_by_kind().items()
            if kind != LOOKUP_HOP}


def _hdk_stats_fingerprint(stats):
    return {name: getattr(stats, name) for name in dir(stats)
            if not name.startswith("_")
            and not callable(getattr(stats, name))}


class TestPackedPostingsEquivalence:
    """packed on/off: byte-identical state *and* byte-identical traffic."""

    def test_state_and_traffic_identical(self, corpus):
        packed, packed_stats = _build(corpus, packed_postings=True)
        plain, plain_stats = _build(corpus, packed_postings=False)
        assert state_fingerprint(packed) == state_fingerprint(plain)
        assert _hdk_stats_fingerprint(packed_stats) == \
            _hdk_stats_fingerprint(plain_stats)
        assert packed.bytes_by_kind() == plain.bytes_by_kind()
        assert packed.bytes_sent_total() == plain.bytes_sent_total()
        assert packed.messages_sent_total() == plain.messages_sent_total()
        assert packed.per_peer_index_storage() == \
            plain.per_peer_index_storage()

    def test_legacy_profile_packed_also_identical(self, corpus):
        packed, _ = _build(corpus, kernel_profile="legacy",
                           packed_postings=True)
        plain, _ = _build(corpus, kernel_profile="legacy",
                          packed_postings=False)
        assert state_fingerprint(packed) == state_fingerprint(plain)
        assert packed.bytes_by_kind() == plain.bytes_by_kind()


class TestBatchedLookupEquivalence:
    """batch on/off: identical index, identical non-LookupHop traffic."""

    def test_state_identical_lookup_traffic_cheaper(self, corpus):
        batched, batched_stats = _build(corpus, batch_index_lookups=True)
        serial, serial_stats = _build(corpus, batch_index_lookups=False)
        assert state_fingerprint(batched) == state_fingerprint(serial)
        assert _hdk_stats_fingerprint(batched_stats) == \
            _hdk_stats_fingerprint(serial_stats)
        # Batching rides the same hop sequences, so every non-lookup
        # message — the statistics and publish payloads that build the
        # index — is unchanged...
        assert _non_lookup_traffic(batched) == _non_lookup_traffic(serial)
        # ...and the whole point: combined hop messages plus the
        # routing cache spend no more lookup bytes than serial routing.
        assert batched.bytes_by_kind().get(LOOKUP_HOP, 0.0) <= \
            serial.bytes_by_kind().get(LOOKUP_HOP, 0.0)

    def test_per_peer_index_placement_identical(self, corpus):
        batched, _ = _build(corpus, batch_index_lookups=True)
        serial, _ = _build(corpus, batch_index_lookups=False)
        assert batched.per_peer_index_storage() == \
            serial.per_peer_index_storage()
        assert batched.per_peer_postings() == serial.per_peer_postings()


class TestProfileIndexEquivalence:
    """fast vs legacy at the bench's knob settings: identical index."""

    def test_bench_config_state_identical(self, corpus):
        fast, fast_stats = _build(corpus, kernel_profile="fast",
                                  packed_postings=True,
                                  batch_index_lookups=True)
        legacy, legacy_stats = _build(corpus, kernel_profile="legacy")
        assert state_fingerprint(fast) == state_fingerprint(legacy)
        assert _hdk_stats_fingerprint(fast_stats) == \
            _hdk_stats_fingerprint(legacy_stats)
        assert fast.total_keys() == legacy.total_keys()
        assert fast.per_peer_index_storage() == \
            legacy.per_peer_index_storage()
        assert fast.per_peer_postings() == legacy.per_peer_postings()
        # The index payloads agree too; only lookup routing traffic is
        # allowed to differ between the profiles.
        assert _non_lookup_traffic(fast) == _non_lookup_traffic(legacy)

    def test_default_config_traffic_byte_identical(self, corpus):
        # With every new knob off, fast vs legacy is the pre-existing
        # contract: byte-identical traffic, not just identical state.
        fast, _ = _build(corpus, kernel_profile="fast")
        legacy, _ = _build(corpus, kernel_profile="legacy")
        assert state_fingerprint(fast) == state_fingerprint(legacy)
        assert fast.bytes_by_kind() == legacy.bytes_by_kind()
        assert fast.bytes_sent_total() == legacy.bytes_sent_total()
        assert fast.messages_sent_total() == legacy.messages_sent_total()

    def test_queries_identical_after_indexing(self, corpus):
        from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
        workload = QueryWorkload.from_corpus(
            corpus, QueryWorkloadConfig(pool_size=10, seed=13))
        fast, _ = _build(corpus, kernel_profile="fast",
                         packed_postings=True, batch_index_lookups=True)
        legacy, _ = _build(corpus, kernel_profile="legacy")
        origins = sorted(fast.peer_ids())
        for index in range(8):
            origin = origins[index % len(origins)]
            terms = list(workload.pool[index])
            fast_results, _ = fast.query(origin, terms)
            legacy_results, _ = legacy.query(origin, terms)
            assert [(doc.doc_id, doc.score) for doc in fast_results] == \
                [(doc.doc_id, doc.score) for doc in legacy_results]

"""Tests for the Bloom filter and the bloom intersection mode."""

import random

import pytest

from repro.baselines.bloom import BloomFilter
from repro.baselines.single_term import SingleTermNetwork
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.ir.analysis import Analyzer


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = random.Random(0)
        items = [rng.randrange(10 ** 9) for _ in range(500)]
        bloom = BloomFilter.of(items)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_target(self):
        rng = random.Random(1)
        members = set(rng.randrange(10 ** 9) for _ in range(1000))
        bloom = BloomFilter.of(members, false_positive_rate=0.01)
        trials = 20000
        false_positives = sum(
            1 for _ in range(trials)
            if (candidate := rng.randrange(10 ** 9)) not in members
            and candidate in bloom)
        assert false_positives / trials < 0.05

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=10)
        assert 5 not in bloom

    def test_wire_size_much_smaller_than_postings(self):
        # The whole point: ~1.2 bytes/posting vs 16 bytes/posting.
        items = list(range(1000))
        bloom = BloomFilter.of(items)
        assert bloom.wire_size() < 16 * len(items) / 5

    def test_wire_size_grows_with_capacity(self):
        small = BloomFilter(capacity=10)
        large = BloomFilter(capacity=10000)
        assert large.wire_size() > small.wire_size()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=-1)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, false_positive_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, false_positive_rate=1.0)

    def test_count_tracks_insertions(self):
        bloom = BloomFilter(capacity=10)
        bloom.add_all([1, 2, 3])
        assert bloom.count == 3


@pytest.fixture(scope="module")
def bloom_net():
    # Large enough that frequent posting lists dwarf per-message
    # overheads — the regime where Bloom filters matter at all.
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=300, vocabulary_size=600, seed=61))
    network = SingleTermNetwork(num_peers=8, seed=62)
    network.distribute_documents(corpus.documents())
    network.run_statistics_phase()
    network.build_index()
    return network


def _frequent_terms(network, count):
    counts = {}
    for peer in network.peers():
        for term, plist in peer.term_store.items():
            counts[term] = len(plist)
    return sorted(counts, key=counts.get, reverse=True)[:count]


class TestBloomMode:
    def test_results_match_fetch_all(self, bloom_net):
        terms = _frequent_terms(bloom_net, 2)
        origin = bloom_net.peer_ids()[0]
        exact = bloom_net.query(origin, terms, mode="fetch_all")
        bloom = bloom_net.query(origin, terms, mode="bloom")
        assert bloom.results == exact.results

    def test_three_term_query_matches(self, bloom_net):
        terms = _frequent_terms(bloom_net, 3)
        origin = bloom_net.peer_ids()[1]
        exact = bloom_net.query(origin, terms, mode="fetch_all")
        bloom = bloom_net.query(origin, terms, mode="bloom")
        assert bloom.results == exact.results

    def test_single_term_query_falls_back(self, bloom_net):
        terms = _frequent_terms(bloom_net, 1)
        origin = bloom_net.peer_ids()[2]
        trace = bloom_net.query(origin, terms, mode="bloom")
        exact = bloom_net.query(origin, terms, mode="fetch_all")
        assert trace.results == exact.results

    def test_bloom_saves_bytes_on_selective_frequent_pairs(self,
                                                           bloom_net):
        """Bloom wins when both lists are long but the intersection is
        small — the regime the optimization targets.  (When the
        intersection is nearly the whole list, shipping candidates twice
        costs more than one full list; see the scalability test below
        for why neither regime saves the baseline.)"""
        doc_sets = {}
        for peer in bloom_net.peers():
            for term, plist in peer.term_store.items():
                doc_sets[term] = set(plist.doc_ids())
        frequent = sorted(doc_sets, key=lambda t: len(doc_sets[t]),
                          reverse=True)[:15]
        best_pair = min(
            ((a, b) for i, a in enumerate(frequent)
             for b in frequent[i + 1:]),
            key=lambda pair: len(doc_sets[pair[0]] & doc_sets[pair[1]])
            / max(1, min(len(doc_sets[pair[0]]),
                         len(doc_sets[pair[1]]))))
        terms = list(best_pair)
        origin = bloom_net.peer_ids()[0]
        fetch = bloom_net.query(origin, terms, mode="fetch_all")
        bloom = bloom_net.query(origin, terms, mode="bloom")
        assert bloom.results == fetch.results
        assert bloom.bytes_sent < fetch.bytes_sent

    def test_bloom_still_grows_with_collection(self):
        """Zhang & Suel's conclusion: Bloom filters buy a constant
        factor, not scalability — bytes still grow with the collection."""
        results = {}
        for num_docs in (80, 320):
            corpus = SyntheticCorpus(SyntheticCorpusConfig(
                num_documents=num_docs, vocabulary_size=600, seed=63))
            network = SingleTermNetwork(num_peers=8, seed=64)
            network.distribute_documents(corpus.documents())
            network.run_statistics_phase()
            network.build_index()
            terms = _frequent_terms(network, 2)
            trace = network.query(network.peer_ids()[0], terms,
                                  mode="bloom")
            results[num_docs] = trace.bytes_sent
        assert results[320] / results[80] > 1.8

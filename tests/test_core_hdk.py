"""Focused tests for the HDK construction protocol."""

import pytest

from repro.core.config import AlvisConfig
from repro.core.hdk import HDKIndexer
from repro.core.keys import Key
from repro.core.network import AlvisNetwork
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig


def _network(config=None, num_docs=120, num_peers=8, seed=91):
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=num_docs, vocabulary_size=700, num_topics=6,
        seed=seed))
    network = AlvisNetwork(num_peers=num_peers,
                           config=config or AlvisConfig(), seed=seed)
    network.distribute_documents(corpus.documents())
    network.run_statistics_phase()
    return network


class TestRounds:
    def test_single_term_only_build(self):
        network = _network()
        stats = HDKIndexer(network).build_single_term_only()
        assert stats.rounds == 1
        assert set(stats.keys_by_size) == {1}
        for peer in network.peers():
            assert all(len(entry.key) == 1 for entry in peer.fragment)

    def test_s_max_one_means_no_expansion(self):
        network = _network(config=AlvisConfig(s_max=1))
        stats = HDKIndexer(network).build()
        assert stats.rounds == 1
        assert stats.expand_notifications == 0
        assert set(stats.keys_by_size) == {1}

    def test_rounds_bounded_by_s_max(self):
        network = _network(config=AlvisConfig(s_max=2))
        stats = HDKIndexer(network).build()
        assert stats.rounds <= 2
        assert max(stats.keys_by_size) <= 2

    def test_stats_phase_required(self):
        network = AlvisNetwork(num_peers=3, seed=92)
        from repro.corpus.loader import sample_documents
        network.distribute_documents(sample_documents())
        with pytest.raises(RuntimeError):
            HDKIndexer(network).build()


class TestExpansionDiscipline:
    def test_expansion_notifications_only_above_dfmax(self):
        network = _network()
        indexer = HDKIndexer(network)
        indexer.build()
        # Recount directly: notifications must equal the number of
        # (non-discriminative key, contributor) pairs per round scanned.
        assert indexer.stats.expand_notifications > 0
        # Every notified key is recorded either as a round-1 or round-2
        # publication; expansions exist iff notifications were sent.
        assert indexer.stats.keys_by_size.get(2, 0) > 0

    def test_high_dfmax_suppresses_expansion(self):
        network = _network(config=AlvisConfig(df_max=10_000))
        stats = HDKIndexer(network).build()
        assert stats.expand_notifications == 0
        assert set(stats.keys_by_size) == {1}

    def test_expansion_candidates_respect_window(self):
        # With a tiny proximity window, fewer candidates qualify than
        # with a large one.
        small = _network(config=AlvisConfig(proximity_window=1))
        large = _network(config=AlvisConfig(proximity_window=30))
        small_stats = HDKIndexer(small).build()
        large_stats = HDKIndexer(large).build()
        assert small_stats.keys_by_size.get(2, 0) <= \
            large_stats.keys_by_size.get(2, 0)

    def test_expansion_min_df_prunes(self):
        permissive = _network(config=AlvisConfig(expansion_min_df=1))
        strict = _network(config=AlvisConfig(expansion_min_df=4))
        permissive_stats = HDKIndexer(permissive).build()
        strict_stats = HDKIndexer(strict).build()
        assert strict_stats.keys_published < \
            permissive_stats.keys_published

    def test_max_expansions_cap(self):
        tight = _network(config=AlvisConfig(max_expansions_per_key=1,
                                            expansion_min_df=1))
        loose = _network(config=AlvisConfig(max_expansions_per_key=30,
                                            expansion_min_df=1))
        tight_stats = HDKIndexer(tight).build()
        loose_stats = HDKIndexer(loose).build()
        assert tight_stats.keys_by_size.get(2, 0) <= \
            loose_stats.keys_by_size.get(2, 0)


class TestAggregation:
    def test_global_df_matches_central_count(self):
        network = _network()
        HDKIndexer(network).build()
        # For 20 sampled single-term keys, aggregated df equals the true
        # global conjunctive df.
        checked = 0
        for peer in network.peers():
            for entry in peer.fragment:
                if len(entry.key) != 1 or checked >= 20:
                    continue
                term = entry.key.terms[0]
                true_df = sum(
                    other.engine.index.document_frequency(term)
                    for other in network.peers())
                assert entry.global_df == true_df
                checked += 1
        assert checked == 20

    def test_pending_expansions_cleared(self):
        network = _network()
        HDKIndexer(network).build()
        for peer in network.peers():
            assert peer.pending_expansions == []

    def test_contributors_recorded(self):
        network = _network()
        HDKIndexer(network).build()
        # A globally frequent term must have several contributors.
        best = None
        for peer in network.peers():
            for entry in peer.fragment:
                if len(entry.key) == 1:
                    if best is None or entry.global_df > best.global_df:
                        best = entry
        assert best is not None
        assert len(best.contributors) > 1
        assert sum(best.contributors.values()) == best.global_df

"""Tests for the network monitor (the demo's monitoring station)."""

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.eval.monitor import NetworkMonitor


@pytest.fixture()
def monitored_network():
    network = AlvisNetwork(num_peers=6, seed=71)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    return network


class TestSnapshot:
    def test_counts_match_network(self, monitored_network):
        monitor = NetworkMonitor(monitored_network)
        snapshot = monitor.snapshot()
        assert snapshot.num_peers == 6
        assert snapshot.num_documents == 12
        assert snapshot.index_mode == "hdk"
        assert snapshot.total_keys > 0
        assert snapshot.total_postings > 0
        assert snapshot.storage_bytes_total > 0
        assert 0 <= snapshot.storage_gini < 1
        assert snapshot.bytes_total > 0

    def test_keys_by_size_sums_to_total(self, monitored_network):
        snapshot = NetworkMonitor(monitored_network).snapshot()
        assert sum(snapshot.keys_by_size.values()) == snapshot.total_keys

    def test_traffic_breakdown_covers_total(self, monitored_network):
        snapshot = NetworkMonitor(monitored_network).snapshot()
        assert snapshot.traffic.total == pytest.approx(
            snapshot.bytes_total)

    def test_history_accumulates(self, monitored_network):
        monitor = NetworkMonitor(monitored_network)
        monitor.snapshot()
        monitor.snapshot()
        assert len(monitor.history) == 2

    def test_as_dict_flat(self, monitored_network):
        snapshot = NetworkMonitor(monitored_network).snapshot()
        flat = snapshot.as_dict()
        assert flat["peers"] == 6.0
        assert "traffic_retrieval" in flat
        assert all(isinstance(value, float) for value in flat.values())


class TestDelta:
    def test_delta_captures_query_traffic(self, monitored_network):
        monitor = NetworkMonitor(monitored_network)
        monitor.snapshot()
        origin = monitored_network.peer_ids()[0]
        monitored_network.query(origin, "posting list truncation")
        monitor.snapshot()
        delta = monitor.delta()
        assert delta["bytes_total"] > 0
        assert delta["messages_total"] > 0
        assert delta["traffic_retrieval"] > 0
        assert delta["documents"] == 0

    def test_delta_needs_two_snapshots(self, monitored_network):
        monitor = NetworkMonitor(monitored_network)
        monitor.snapshot()
        with pytest.raises(ValueError):
            monitor.delta()


class TestRender:
    def test_render_contains_key_sections(self, monitored_network):
        text = NetworkMonitor(monitored_network).render()
        assert "AlvisP2P network monitor" in text
        assert "peers: 6" in text
        assert "global index:" in text
        assert "retrieval" in text

    def test_render_qdi_section(self):
        network = AlvisNetwork(
            num_peers=4, seed=72,
            config=AlvisConfig(qdi_activation_threshold=1))
        network.distribute_documents(sample_documents())
        network.build_index(mode="qdi")
        network.query(network.peer_ids()[0], "posting list truncation")
        text = NetworkMonitor(network).render()
        assert "QDI:" in text


class TestParallelProbeLatency:
    def test_parallel_probes_reduce_rtt(self):
        """Ablation: with level-parallel probing, per-query latency is
        bounded by lattice depth, not lattice size."""
        results = {}
        for parallel in (True, False):
            network = AlvisNetwork(
                num_peers=6, seed=73,
                config=AlvisConfig(parallel_probes=parallel))
            network.distribute_documents(sample_documents())
            network.build_index(mode="hdk")
            _r, trace = network.query(network.peer_ids()[0],
                                      "peer index network")
            results[parallel] = (trace.rtt_estimate, trace.bytes_sent,
                                 trace.request_messages)
        assert results[True][0] <= results[False][0]
        # Bytes and message counts must be identical: only latency
        # accounting changes.
        assert results[True][1] == results[False][1]
        assert results[True][2] == results[False][2]


class TestKernelMetrics:
    """Peak RSS + events/sec surfaced by the monitor and registry."""

    def _network(self):
        network = AlvisNetwork(num_peers=6, seed=11,
                               config=AlvisConfig(async_queries=True))
        network.distribute_documents(sample_documents())
        network.build_index(mode="hdk")
        return network

    def test_snapshot_reports_kernel_throughput(self):
        network = self._network()
        network.run_queries(["peer network", "index"], arrival_rate=50.0)
        snapshot = NetworkMonitor(network).snapshot()
        assert snapshot.events_processed == \
            network.simulator.events_processed
        assert snapshot.events_processed > 0
        assert snapshot.kernel_wall_seconds > 0.0
        assert snapshot.events_per_sec == pytest.approx(
            snapshot.events_processed / snapshot.kernel_wall_seconds)
        assert snapshot.peak_rss_kb > 0
        flat = snapshot.as_dict()
        for name in ("events_processed", "kernel_wall_seconds",
                     "events_per_sec", "peak_rss_kb"):
            assert name in flat

    def test_render_includes_kernel_line(self):
        network = self._network()
        network.run_queries(["peer network"], arrival_rate=50.0)
        dashboard = NetworkMonitor(network).render()
        assert "events/s" in dashboard
        assert "peak RSS" in dashboard

    def test_metrics_registry_process_snapshot(self):
        from repro.sim.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("a.b").increment(2)
        plain = registry.snapshot()
        assert plain == {"a.b": 2.0}
        with_process = registry.snapshot(include_process=True)
        assert with_process["a.b"] == 2.0
        assert with_process["process.peak_rss_kb"] > 0

    def test_peak_rss_monotonic(self):
        from repro.util.process import peak_rss_kb
        first = peak_rss_kb()
        ballast = [0] * 500_000
        second = peak_rss_kb()
        assert second >= first > 0
        del ballast

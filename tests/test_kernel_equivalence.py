"""Acceptance gate for the scale-out kernel optimisations.

The rewritten event kernel (packed ``Event``/``EventQueue``), the lazy
churn-local DHT table maintenance and the vectorized owner-side BM25 are
*accelerations*: at seed sizes the optimized network must reproduce the
pre-optimisation kernel byte-for-byte — same results, same scores, same
per-kind traffic, same traces.  ``AlvisNetwork(kernel_profile="legacy")``
pins the old behaviour (``LegacyEventQueue`` + eager table rebuilds), so
these tests build one network per profile from identical seeds and
compare everything the benchmarks measure.
"""

from __future__ import annotations

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.sim.events import EventQueue, LegacyEventQueue


def _build_network(kernel_profile, corpus, config=None, num_peers=10,
                   seed=2, mode="hdk"):
    network = AlvisNetwork(num_peers=num_peers,
                           config=config or AlvisConfig(),
                           seed=seed, kernel_profile=kernel_profile)
    network.distribute_documents(corpus.documents())
    network.build_index(mode=mode)
    return network


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=120, vocabulary_size=800, num_topics=6, seed=3))


@pytest.fixture(scope="module")
def workload(corpus):
    from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
    return QueryWorkload.from_corpus(
        corpus, QueryWorkloadConfig(pool_size=30, seed=5))


def _trace_fingerprint(trace):
    return {
        "query": trace.query,
        "bytes_sent": trace.bytes_sent,
        "bytes_by_kind": dict(trace.bytes_by_kind),
        "lookup_hops": trace.lookup_hops,
        "probes": sorted((key.terms, status.name)
                         for key, status in trace.probes),
        "results": [(doc.doc_id, doc.score) for doc in trace.results],
    }


class TestKernelProfileEquivalence:
    """fast vs legacy: byte/trace equality at seed sizes."""

    def test_profiles_select_queue_and_ring_mode(self, corpus):
        fast = _build_network("fast", corpus)
        legacy = _build_network("legacy", corpus)
        assert type(fast.simulator.queue) is EventQueue
        assert type(legacy.simulator.queue) is LegacyEventQueue
        assert fast.ring.lazy_tables
        assert not legacy.ring.lazy_tables

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            AlvisNetwork(num_peers=2, seed=1, kernel_profile="turbo")

    def test_index_build_identical(self, corpus):
        fast = _build_network("fast", corpus)
        legacy = _build_network("legacy", corpus)
        assert fast.total_keys() == legacy.total_keys()
        assert fast.per_peer_index_storage() == \
            legacy.per_peer_index_storage()
        assert fast.per_peer_postings() == legacy.per_peer_postings()
        assert fast.bytes_sent_total() == legacy.bytes_sent_total()
        assert fast.bytes_by_kind() == legacy.bytes_by_kind()

    def test_query_traces_identical(self, corpus, workload):
        fast = _build_network("fast", corpus)
        legacy = _build_network("legacy", corpus)
        origins = fast.peer_ids()
        for index in range(12):
            origin = origins[index % len(origins)]
            terms = list(workload.pool[index])
            fast_results, fast_trace = fast.query(origin, terms)
            legacy_results, legacy_trace = legacy.query(origin, terms)
            assert [(doc.doc_id, doc.score) for doc in fast_results] == \
                [(doc.doc_id, doc.score) for doc in legacy_results]
            assert _trace_fingerprint(fast_trace) == \
                _trace_fingerprint(legacy_trace)
        assert fast.bytes_sent_total() == legacy.bytes_sent_total()
        assert fast.messages_sent_total() == legacy.messages_sent_total()

    def test_async_runtime_jobs_identical(self, corpus, workload):
        config = AlvisConfig(async_queries=True)
        fast = _build_network("fast", corpus, config=config)
        legacy = _build_network("legacy", corpus, config=config)
        queries = [list(workload.pool[index]) for index in range(10)]
        fast_jobs = fast.run_queries(queries, arrival_rate=200.0)
        legacy_jobs = legacy.run_queries(queries, arrival_rate=200.0)
        assert len(fast_jobs) == len(legacy_jobs)
        for fast_job, legacy_job in zip(fast_jobs, legacy_jobs):
            assert [(doc.doc_id, doc.score) for doc in fast_job.results] \
                == [(doc.doc_id, doc.score) for doc in legacy_job.results]
            assert _trace_fingerprint(fast_job.trace) == \
                _trace_fingerprint(legacy_job.trace)
        assert fast.simulator.now == legacy.simulator.now
        assert fast.bytes_sent_total() == legacy.bytes_sent_total()

    def test_churn_then_queries_identical(self, corpus, workload):
        fast = _build_network("fast", corpus, num_peers=12)
        legacy = _build_network("legacy", corpus, num_peers=12)
        for network in (fast, legacy):
            churn = network.churn()
            churn.run_session(joins=4, leaves=4)
        assert sorted(fast.peer_ids()) == sorted(legacy.peer_ids())
        origins = sorted(fast.peer_ids())
        for index in range(8):
            origin = origins[index % len(origins)]
            terms = list(workload.pool[index])
            fast_results, fast_trace = fast.query(origin, terms)
            legacy_results, legacy_trace = legacy.query(origin, terms)
            assert _trace_fingerprint(fast_trace) == \
                _trace_fingerprint(legacy_trace)
            assert [(doc.doc_id, doc.score) for doc in fast_results] == \
                [(doc.doc_id, doc.score) for doc in legacy_results]

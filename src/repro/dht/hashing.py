"""Hashing keys into the identifier space.

AlvisP2P's global index is key-based: a *key* is an unordered combination of
indexing terms.  The DHT maps each key to the peer responsible for it.  Term
order inside a key must not matter (the key {a,b} equals {b,a}), so terms are
sorted before hashing.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.dht.idspace import ID_BITS

__all__ = ["hash_string", "hash_terms"]


def hash_string(value: str) -> int:
    """Hash an arbitrary string to a 64-bit identifier.

    Uses SHA-1 (as deployed DHTs of the era did) truncated to the id width;
    the choice of digest only matters for uniformity, not security.
    """
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[: ID_BITS // 8], "big")


def hash_terms(terms: Iterable[str]) -> int:
    """Hash a term combination to its key identifier, order-independently.

    >>> hash_terms(["b", "a"]) == hash_terms(["a", "b"])
    True
    >>> hash_terms(["a"]) != hash_terms(["a", "b"])
    True
    """
    canonical = "\x1f".join(sorted(terms))
    return hash_string(canonical)

"""The circular identifier space.

Identifiers are 64-bit unsigned integers on a ring.  A key is owned by its
*successor*: the first peer clockwise from (or at) the key's identifier.
"""

from __future__ import annotations

import random

__all__ = ["ID_BITS", "ID_SPACE", "clockwise_distance", "in_interval",
           "random_id"]

#: Width of identifiers in bits.
ID_BITS = 64

#: Size of the identifier space (ids are in ``[0, ID_SPACE)``).
ID_SPACE = 1 << ID_BITS


def clockwise_distance(from_id: int, to_id: int) -> int:
    """Distance travelled clockwise from ``from_id`` to ``to_id``.

    >>> clockwise_distance(10, 15)
    5
    >>> clockwise_distance(15, 10) == ID_SPACE - 5
    True
    >>> clockwise_distance(7, 7)
    0
    """
    return (to_id - from_id) % ID_SPACE


def in_interval(value: int, left: int, right: int,
                inclusive_right: bool = True) -> bool:
    """True if ``value`` lies in the clockwise interval ``(left, right]``.

    The interval wraps around zero when ``right`` precedes ``left``.  With
    ``inclusive_right=False`` the interval is open on both ends.

    >>> in_interval(5, 3, 8)
    True
    >>> in_interval(1, 250, 10)   # wrapped interval
    True
    >>> in_interval(3, 3, 8)      # left end is exclusive
    False
    """
    if left == right:
        # The interval spans the whole ring (excluding the endpoint itself
        # unless the right end is inclusive and value == right).
        if value == left:
            return inclusive_right
        return True
    distance_value = clockwise_distance(left, value)
    distance_right = clockwise_distance(left, right)
    if inclusive_right:
        return 0 < distance_value <= distance_right
    return 0 < distance_value < distance_right


def random_id(rng: random.Random) -> int:
    """Draw a uniformly random identifier."""
    return rng.getrandbits(ID_BITS)

"""A DHT node: identifier, fingers, successor list, greedy next-hop choice."""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.dht.idspace import clockwise_distance

__all__ = ["DHTNode"]


class DHTNode:
    """State of one overlay node.

    Routing is greedy on clockwise distance: among the known neighbours
    (fingers plus successors) that do not overshoot the target, pick the one
    closest to it.  With hop-space fingers this realizes the ~log2(n)-hop
    guarantee; with naive fingers it realizes classic Chord behaviour.

    ``table_epoch`` tags the membership epoch the tables were last built
    against; the ring uses it for churn-local lazy maintenance (a node's
    tables are recomputed on first touch after a membership change
    instead of eagerly for every node on every join/leave).
    """

    SUCCESSOR_LIST_SIZE = 4

    __slots__ = ("node_id", "fingers", "successors", "table_epoch",
                 "predecessor", "_neighbours", "_hop_table")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.fingers: List[int] = []
        self.successors: List[int] = []
        #: Membership epoch the tables were built at; -1 = never built.
        self.table_epoch = -1
        #: Counter-clockwise ring neighbour, installed alongside the
        #: tables (valid while ``table_epoch`` is current); self until
        #: tables are built.  Saves a ring-wide bisect per ownership
        #: test on the routing hot paths.
        self.predecessor = node_id
        self._neighbours: Optional[List[int]] = None
        self._hop_table: Optional[Tuple[List[int], List[int]]] = None

    # ------------------------------------------------------------------

    def set_fingers(self, fingers: Sequence[int]) -> None:
        """Install a freshly built finger list."""
        self.fingers = list(fingers)
        self._neighbours = None
        self._hop_table = None

    def set_successors(self, successors: Sequence[int]) -> None:
        """Install the successor list (used for termination and repair)."""
        self.successors = list(successors[: self.SUCCESSOR_LIST_SIZE])
        self._neighbours = None
        self._hop_table = None

    @property
    def successor(self) -> int:
        """Immediate successor (the node owning keys just after us)."""
        if not self.successors:
            return self.node_id
        return self.successors[0]

    def neighbours(self) -> List[int]:
        """All known out-links, successors first, without duplicates.

        Cached until the next ``set_fingers``/``set_successors`` — the
        greedy next-hop scan reads it on every routed hop.
        """
        neighbours = self._neighbours
        if neighbours is None:
            seen = set()
            neighbours = []
            for candidate in self.successors + self.fingers:
                if candidate != self.node_id and candidate not in seen:
                    seen.add(candidate)
                    neighbours.append(candidate)
            self._neighbours = neighbours
        return neighbours

    def routing_table_size(self) -> int:
        """Number of distinct out-links (the O(log n) claim of E7)."""
        return len(self.neighbours())

    # ------------------------------------------------------------------

    def owns(self, key_id: int, predecessor_id: int) -> bool:
        """True if this node is the successor of ``key_id``.

        Ownership interval is ``(predecessor, self]`` clockwise.
        """
        if predecessor_id == self.node_id:
            return True  # single-node ring owns everything
        distance_key = clockwise_distance(predecessor_id, key_id)
        distance_self = clockwise_distance(predecessor_id, self.node_id)
        return 0 < distance_key <= distance_self

    def next_hop(self, key_id: int) -> Optional[int]:
        """Greedy next hop towards the owner of ``key_id``.

        Returns ``None`` when no neighbour makes progress, i.e. this node's
        successor owns the key (or the ring is a singleton).  The chosen
        neighbour never overshoots the key, which guarantees progress and
        termination on a consistent ring.
        """
        best: Optional[int] = None
        best_distance: Optional[int] = None
        node_id = self.node_id
        my_distance = clockwise_distance(node_id, key_id)
        for candidate in self.neighbours():
            candidate_distance = clockwise_distance(candidate, key_id)
            # A useful hop moves strictly closer to the key (clockwise)
            # without stepping past it.
            forward = clockwise_distance(node_id, candidate)
            if forward == 0 or forward > my_distance:
                continue
            if best_distance is None or candidate_distance < best_distance:
                best = candidate
                best_distance = candidate_distance
        return best

    def next_hop_fast(self, key_id: int) -> Optional[int]:
        """Bisect form of :meth:`next_hop` — same choice, O(log links).

        Among neighbours that do not overshoot (clockwise offset from this
        node ``<= my_distance``), the scan picks the one minimizing
        ``clockwise_distance(candidate, key)``; for those candidates that
        distance equals ``my_distance - offset``, so the winner is simply
        the largest non-overshooting offset.  Distinct ids mean distinct
        offsets, so the argmax is unique and a binary search over the
        offset-sorted neighbour table returns exactly what the scan
        returns (``tests/test_dht_routing.py`` pins the equivalence).
        """
        table = self._hop_table
        if table is None:
            node_id = self.node_id
            pairs = sorted((clockwise_distance(node_id, candidate),
                            candidate) for candidate in self.neighbours())
            table = ([offset for offset, _ in pairs],
                     [candidate for _, candidate in pairs])
            self._hop_table = table
        offsets, candidates = table
        index = bisect_right(offsets,
                             clockwise_distance(self.node_id, key_id))
        if index == 0:
            return None
        return candidates[index - 1]

    def __repr__(self) -> str:
        return (f"DHTNode(id={self.node_id}, "
                f"links={self.routing_table_size()})")

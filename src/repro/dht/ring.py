"""The DHT ring: membership, table construction, iterative lookup.

The ring is the authoritative membership view (in a deployment this role is
played by the converged maintenance protocol).  Lookups, however, are
executed hop by hop through each node's own routing table, so the measured
hop counts and routing traffic are those of the distributed algorithm, not
of the oracle.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.dht.idspace import ID_BITS
from repro.dht.node import DHTNode
from repro.dht.routing import FingerTableStrategy, HopSpaceFingers
from repro.net.message import HEADER_BYTES, Message, encoded_size
from repro.net.transport import TransportBackend
from repro.sim.procs import all_of

__all__ = ["LookupResult", "BatchLookupResult", "DHTRing",
           "HOP_MESSAGE_BYTES", "HOP_BATCH_BASE_BYTES", "HOP_KEY_BYTES"]

#: Precomputed ``LookupHop`` wire sizes for the hop fast path.  The wire
#: model encodes ints at a fixed 8 bytes, so hop-message sizes depend
#: only on the key *count*, never the key values — a single-key hop, the
#: envelope of a batched hop, and the per-key increment.  Pinned against
#: ``Message.size_bytes`` by ``tests/test_dht_routing.py``.
HOP_MESSAGE_BYTES = HEADER_BYTES + encoded_size({"key_id": 0})
HOP_BATCH_BASE_BYTES = HEADER_BYTES + encoded_size({"key_ids": []})
HOP_KEY_BYTES = encoded_size(0)

#: Route-memo sentinel for "this node owns the key" (node ids are
#: unsigned, so -1 can never collide with a real next hop).
_ROUTE_OWNED = -1

#: Upper bound on memoized (key, node) -> next-hop entries across all
#: keys; routing keeps working past it, new entries just stop being
#: recorded until the next membership change clears the memo.
_ROUTE_CACHE_MAX_ENTRIES = 1 << 20

#: Handover callback signature: (old_owner, new_owner, key_range_lo, key_range_hi).
HandoverCallback = Callable[[int, int, int, int], None]


@dataclass
class LookupResult:
    """Outcome of one iterative lookup."""

    key_id: int
    owner: int
    hops: int
    path: List[int] = field(default_factory=list)


@dataclass
class BatchLookupResult:
    """Outcome of one batched (shared-traversal) lookup round.

    ``messages`` counts the routed ``LookupHop`` messages actually sent:
    keys whose greedy routes share a hop share one message, which is
    where the batching saves traffic over per-key lookups.
    """

    owners: Dict[int, int]          #: key id -> owning node id
    messages: int                   #: routed hop messages for the batch
    per_key_hops: Dict[int, int]    #: key id -> individual path length
    #: Key ids carried by each hop message, in send order — lets callers
    #: that share one round across several queries attribute messages to
    #: the queries whose keys travelled in them.  ``None`` when the
    #: caller did not ask for it.
    message_batches: Optional[List[List[int]]] = None
    #: Wire size of each hop message (0 when routing is unaccounted),
    #: aligned with ``message_batches``.
    message_bytes: Optional[List[int]] = None
    #: Hop messages re-sent after a service-queue overflow (async path
    #: with the transport's congestion model active); already included
    #: in ``messages``/``message_batches``.
    retransmissions: int = 0

    @property
    def total_hops(self) -> int:
        """Sum of the individual path lengths (the unbatched cost)."""
        return sum(self.per_key_hops.values())


class DHTRing:
    """A set of :class:`DHTNode` objects plus routing orchestration."""

    def __init__(self, strategy: Optional[FingerTableStrategy] = None,
                 transport: Optional[TransportBackend] = None,
                 lazy_tables: bool = True,
                 fast_hops: bool = False,
                 compact_nodes: Optional[bool] = None):
        self.strategy = strategy if strategy is not None else HopSpaceFingers()
        self.transport = transport
        #: Churn-local maintenance: with ``lazy_tables`` a membership
        #: change only *stamps* tables stale (via ``membership_epoch``)
        #: and each node's fingers/successors are recomputed on first
        #: touch — O(touched x log n) per churn event instead of the
        #: O(n log n) full rebuild.  The resulting tables are identical
        #: to an eager rebuild (both derive from current membership), so
        #: routes and traffic do not change; ``lazy_tables=False``
        #: restores the eager behaviour for A/B benchmarking.
        self.lazy_tables = lazy_tables
        #: Route accounted hops through the transport's ``deliver_hop``
        #: fast path (precomputed wire sizes, no per-hop ``Message``
        #: objects) when the backend offers one.  Byte/trace-identical
        #: to the message path; off by default so directly constructed
        #: rings keep the historical, endpoint-visible hop messages.
        self.fast_hops = fast_hops
        #: Array-of-struct membership: with ``compact_nodes`` the ring
        #: records membership in a plain id set + sorted list and
        #: materializes :class:`DHTNode` objects only for nodes routing
        #: actually touches (``_nodes`` becomes a cache, not the
        #: authority).  Node state is purely derived from membership, so
        #: routes are identical; defaults to ``lazy_tables``.
        self.compact_nodes = (lazy_tables if compact_nodes is None
                              else compact_nodes)
        self._members: set = set()
        self._nodes: Dict[int, DHTNode] = {}
        self._sorted_ids: List[int] = []
        self._tables_dirty = True
        #: Incremented on every membership change; lets caches of
        #: key->owner resolutions detect staleness cheaply.
        self.membership_epoch = 0
        #: Greedy-route memo (``fast_hops`` only): node id -> {key id ->
        #: next hop, or ``_ROUTE_OWNED``}.  Within one membership epoch
        #: the greedy choice is a pure function of (node, key), so
        #: repeated routes replay from the memo — the *same* hop
        #: messages are still sent, only the finger-table scans are
        #: skipped.  Cleared wholesale on any membership change.
        self._route_cache: Dict[int, Dict[int, int]] = {}
        self._route_entries = 0
        self._route_epoch = -1
        #: Key -> owner memo (bulk batched lookups only): once a batch
        #: walk resolved a key, later batches from *any* source resolve
        #: it directly — the standard DHT routing-cache shortcut (a
        #: peer that already knows a key's owner addresses it without
        #: re-routing), so the cached keys cost no further lookup
        #: traffic.  Shares the route memo's epoch lifetime: cleared
        #: wholesale on any membership change, so it can never serve a
        #: stale owner.
        self._owner_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._sorted_ids)

    @property
    def member_ids(self) -> Tuple[int, ...]:
        """Sorted tuple of live node ids."""
        return tuple(self._sorted_ids)

    def node(self, node_id: int) -> DHTNode:
        """Return the node object for ``node_id`` (KeyError if absent).

        The node's routing tables are brought up to date first, so
        callers always observe converged state.
        """
        return self._fresh(node_id)

    def contains(self, node_id: int) -> bool:
        """True if ``node_id`` is a live member."""
        return node_id in self._members

    def add_node(self, node_id: int) -> Optional[DHTNode]:
        """Add a node to the membership; tables become stale until rebuilt.

        Returns the node object, or ``None`` with ``compact_nodes`` —
        the object is only materialized when routing first touches it.
        """
        if node_id in self._members:
            raise ValueError(f"node {node_id} already present")
        self._members.add(node_id)
        bisect.insort(self._sorted_ids, node_id)
        self._tables_dirty = True
        self.membership_epoch += 1
        if self.compact_nodes:
            return None
        node = DHTNode(node_id)
        self._nodes[node_id] = node
        return node

    def remove_node(self, node_id: int) -> None:
        """Remove a node; tables become stale until rebuilt."""
        if node_id not in self._members:
            raise KeyError(f"node {node_id} not present")
        self._members.discard(node_id)
        self._nodes.pop(node_id, None)
        index = bisect.bisect_left(self._sorted_ids, node_id)
        self._sorted_ids.pop(index)
        self._tables_dirty = True
        self.membership_epoch += 1

    # ------------------------------------------------------------------
    # Ownership oracle (what the converged ring agrees on)
    # ------------------------------------------------------------------

    def successor_of(self, key_id: int) -> int:
        """The live node owning ``key_id`` (its clockwise successor)."""
        if not self._sorted_ids:
            raise ValueError("ring is empty")
        index = bisect.bisect_left(self._sorted_ids, key_id)
        if index == len(self._sorted_ids):
            index = 0
        return self._sorted_ids[index]

    def predecessor_of(self, node_id: int) -> int:
        """The live node immediately counter-clockwise of ``node_id``."""
        if not self._sorted_ids:
            raise ValueError("ring is empty")
        index = bisect.bisect_left(self._sorted_ids, node_id)
        if index >= len(self._sorted_ids) or self._sorted_ids[index] != node_id:
            raise KeyError(f"node {node_id} not present")
        return self._sorted_ids[index - 1]  # wraps via Python indexing

    # ------------------------------------------------------------------
    # Routing tables
    # ------------------------------------------------------------------

    def rebuild_tables(self) -> None:
        """(Re)build every node's fingers and successor list *eagerly*.

        Models the converged state of the maintenance protocol in one
        shot.  With ``lazy_tables`` this is never required — nodes
        refresh on touch — but stays available for benchmarks and tests
        that inspect the whole converged state at once.
        """
        members = self._sorted_ids
        n = len(members)
        epoch = self.membership_epoch
        for rank, node_id in enumerate(members):
            node = self._node_for(node_id)
            node.set_fingers(self.strategy.build(node_id, members))
            successors = [members[(rank + offset) % n]
                          for offset in range(1, DHTNode.SUCCESSOR_LIST_SIZE + 1)
                          if n > 1]
            node.set_successors(successors)
            # Cached counter-clockwise neighbour (== predecessor_of);
            # wraps for n == 1 via Python indexing.
            node.predecessor = members[rank - 1]
            node.table_epoch = epoch
        self._tables_dirty = False

    def maintain(self) -> None:
        """Converge routing state after a membership change.

        The churn-local replacement for calling :meth:`rebuild_tables`
        on every join/leave: with ``lazy_tables`` the membership bump
        already stamped every table stale, so there is nothing to do —
        each node recomputes its own fingers/successors from the current
        membership on first touch.  Without laziness this falls back to
        the eager full rebuild.
        """
        if not self.lazy_tables:
            self.rebuild_tables()

    def ensure_tables(self) -> None:
        """Make routing state consistent with the current membership.

        Lazy mode needs no global work (stale nodes refresh on touch);
        eager mode rebuilds if membership changed since the last build.
        """
        if self._tables_dirty and not self.lazy_tables:
            self.rebuild_tables()

    def _node_for(self, node_id: int) -> DHTNode:
        """The node object for a live member, materializing it on first
        touch in compact mode (KeyError for non-members)."""
        node = self._nodes.get(node_id)
        if node is None:
            if node_id not in self._members:
                raise KeyError(node_id)
            node = DHTNode(node_id)
            self._nodes[node_id] = node
        return node

    def _fresh(self, node_id: int) -> DHTNode:
        """Return ``node_id``'s node with tables valid for the current
        membership, recomputing them (lazily, churn-locally) if stale."""
        node = self._node_for(node_id)
        if node.table_epoch != self.membership_epoch:
            self._refresh_node(node)
        return node

    def _route_table(self) -> Dict[int, Dict[int, int]]:
        """The epoch-fresh greedy-route memo (cleared after any churn)."""
        if self._route_epoch != self.membership_epoch:
            self._route_cache.clear()
            self._owner_cache.clear()
            self._route_entries = 0
            self._route_epoch = self.membership_epoch
        return self._route_cache

    def _refresh_node(self, node: DHTNode) -> None:
        """Recompute one node's fingers/successors from current membership.

        Produces exactly what :meth:`rebuild_tables` would install for
        this node — both derive from the same sorted membership — so
        lazy and eager maintenance yield identical routing state.
        """
        members = self._sorted_ids
        n = len(members)
        node.set_fingers(self.strategy.build(node.node_id, members))
        rank = bisect.bisect_left(members, node.node_id)
        if n > 1:
            node.set_successors(
                [members[(rank + offset) % n]
                 for offset in range(1, DHTNode.SUCCESSOR_LIST_SIZE + 1)])
        else:
            node.set_successors([])
        # Cached counter-clockwise neighbour (== predecessor_of); wraps
        # for n == 1 via Python indexing.
        node.predecessor = members[rank - 1]
        node.table_epoch = self.membership_epoch

    def mean_routing_table_size(self) -> float:
        """Average out-degree across nodes (E7 reports this is O(log n))."""
        if not self._members:
            raise ValueError("ring is empty")
        total = sum(self._fresh(node_id).routing_table_size()
                    for node_id in self._sorted_ids)
        return total / len(self._members)

    # ------------------------------------------------------------------
    # Iterative lookup
    # ------------------------------------------------------------------

    def lookup(self, source_id: int, key_id: int,
               account: bool = False) -> LookupResult:
        """Route from ``source_id`` to the owner of ``key_id``.

        Follows each node's greedy next-hop choice; the membership oracle is
        used only for the local ownership test (a node knowing its
        predecessor).  With ``account=True`` and a transport attached, each
        hop sends a small ``LookupHop`` message so routing traffic shows up
        in the byte accounting.
        """
        self.ensure_tables()
        if source_id not in self._members:
            raise KeyError(f"source node {source_id} not present")
        deliver = (getattr(self.transport, "deliver_hop", None)
                   if (self.fast_hops and account
                       and self.transport is not None) else None)
        current = source_id
        path = [current]
        hops = 0
        max_hops = 2 * ID_BITS + self.size
        fast = self.fast_hops
        table = self._route_table() if fast else None
        while True:
            next_id = None
            if table is not None:
                node_routes = table.get(current)
                if node_routes is not None:
                    next_id = node_routes.get(key_id)
            if next_id is None:
                node = self._fresh(current)
                if node.owns(key_id, node.predecessor):
                    next_id = _ROUTE_OWNED
                else:
                    next_id = (node.next_hop_fast(key_id) if fast
                               else node.next_hop(key_id))
                    if next_id is None:
                        next_id = node.successor
                if (table is not None
                        and self._route_entries < _ROUTE_CACHE_MAX_ENTRIES):
                    table.setdefault(current, {})[key_id] = next_id
                    self._route_entries += 1
            if next_id == _ROUTE_OWNED:
                return LookupResult(key_id=key_id, owner=current,
                                    hops=hops, path=path)
            if deliver is not None:
                deliver(current, next_id, HOP_MESSAGE_BYTES)
            elif account and self.transport is not None:
                message = Message(src=current, dst=next_id,
                                  kind="LookupHop",
                                  payload={"key_id": key_id})
                self.transport.request(message)
            current = next_id
            path.append(current)
            hops += 1
            if hops > max_hops:
                raise RuntimeError(
                    f"lookup for {key_id} exceeded {max_hops} hops; "
                    "routing tables are inconsistent")

    def lookup_many(self, source_id: int, key_ids: Iterable[int],
                    account: bool = False) -> BatchLookupResult:
        """Route one *batch* of keys from ``source_id`` in a shared round.

        Every key follows exactly the greedy hop sequence :meth:`lookup`
        would give it, so the resolved owners are identical — but keys
        taking the same hop travel in one combined ``LookupHop`` message,
        so finger-table traversals are shared and the per-key message
        cost is amortized across the batch (the lattice-frontier batching
        of the query engine).
        """
        self.ensure_tables()
        if source_id not in self._members:
            raise KeyError(f"source node {source_id} not present")
        deliver = (getattr(self.transport, "deliver_hop", None)
                   if (self.fast_hops and account
                       and self.transport is not None) else None)
        # Bulk hop accounting (see SimTransport.begin_hop_bulk): hops
        # accumulate in ``hop_acc`` (dst -> [messages, bytes]) and are
        # settled in one flush, replacing a per-hop delivery call.
        live = None
        hop_acc: Optional[Dict[int, List[int]]] = None
        if deliver is not None:
            begin_bulk = getattr(self.transport, "begin_hop_bulk", None)
            live = begin_bulk() if begin_bulk is not None else None
            if live is not None:
                hop_acc = {}
        fast = self.fast_hops
        routes = self._route_table() if fast else {}
        pending = sorted(set(key_ids))
        owners: Dict[int, int] = {}
        per_key_hops: Dict[int, int] = {key_id: 0 for key_id in pending}
        # Routing-cache shortcut, bulk accounting mode only (where hop
        # effects are pure accounting): a key whose owner is already
        # memoized for this membership epoch resolves directly — the
        # source addresses the owner without re-routing, so the key
        # costs no lookup traffic and no forwarding hops.
        owner_cache = (self._owner_cache
                       if fast and hop_acc is not None else None)
        if owner_cache:
            cached_get = owner_cache.get
            unresolved = []
            for key_id in pending:
                owner = cached_get(key_id)
                if owner is None:
                    unresolved.append(key_id)
                else:
                    owners[key_id] = owner
            pending = unresolved
        frontier: Dict[int, List[int]] = (
            {source_id: pending} if pending else {})
        messages = 0
        rounds = 0
        max_rounds = 2 * ID_BITS + self.size
        try:
            result = self._lookup_many_rounds(
                frontier, owners, per_key_hops, routes, fast, deliver,
                live, hop_acc, account, messages, rounds, max_rounds)
        finally:
            # Settle accumulated bulk hops even when a delivery error
            # aborts the walk: exactly the hops per-hop delivery would
            # have accounted before raising.
            if hop_acc:
                self.transport.flush_hop_bulk(hop_acc)
        if (owner_cache is not None
                and len(owner_cache) < _ROUTE_CACHE_MAX_ENTRIES):
            owner_cache.update(result.owners)
        return result

    def _lookup_many_rounds(self, frontier, owners, per_key_hops, routes,
                            fast, deliver, live, hop_acc, account,
                            messages, rounds, max_rounds):
        """The frontier walk of :meth:`lookup_many` (split out so the
        bulk-hop flush wraps it in one ``finally``)."""
        owned = _ROUTE_OWNED
        cache_cap = _ROUTE_CACHE_MAX_ENTRIES
        while frontier:
            rounds += 1
            if rounds > max_rounds:
                unresolved = sorted(key_id for keys in frontier.values()
                                    for key_id in keys)
                raise RuntimeError(
                    f"batched lookup exceeded {max_rounds} rounds for "
                    f"keys {unresolved[:4]}...; routing tables are "
                    "inconsistent")
            next_frontier: Dict[int, List[int]] = {}
            for node_id in sorted(frontier):
                node = None
                hop = None
                predecessor = 0
                # Node-major memo orientation: one hoisted dict per
                # frontier node, a single probe per key step (bound
                # methods hoisted out of the key loop).
                node_routes = routes.get(node_id) if fast else None
                route_get = (node_routes.get
                             if node_routes is not None else None)
                by_next: Dict[int, List[int]] = {}
                by_next_get = by_next.get
                for key_id in frontier[node_id]:
                    next_id = (route_get(key_id)
                               if route_get is not None else None)
                    if next_id is None:
                        if node is None:
                            node = self._fresh(node_id)
                            predecessor = node.predecessor
                            hop = (node.next_hop_fast if fast
                                   else node.next_hop)
                        if node.owns(key_id, predecessor):
                            next_id = owned
                        else:
                            next_id = hop(key_id)
                            if next_id is None:
                                next_id = node.successor
                        if fast and self._route_entries < cache_cap:
                            if node_routes is None:
                                node_routes = routes.setdefault(
                                    node_id, {})
                                route_get = node_routes.get
                            node_routes[key_id] = next_id
                            self._route_entries += 1
                    if next_id == owned:
                        # Forwarded once per completed earlier round.
                        per_key_hops[key_id] = rounds - 1
                        owners[key_id] = node_id
                        continue
                    batch = by_next_get(next_id)
                    if batch is None:
                        by_next[next_id] = [key_id]
                    else:
                        batch.append(key_id)
                # Deterministic emission order; a 0/1-entry dict (the
                # common case late in the walk) is already sorted.
                targets = (by_next if len(by_next) < 2
                           else sorted(by_next))
                for next_id in targets:
                    batch = by_next[next_id]
                    if hop_acc is not None and next_id in live:
                        size = (HOP_BATCH_BASE_BYTES
                                + HOP_KEY_BYTES * len(batch))
                        entry = hop_acc.get(next_id)
                        if entry is None:
                            hop_acc[next_id] = [1, size]
                        else:
                            entry[0] += 1
                            entry[1] += size
                    elif deliver is not None:
                        # Unregistered destinations fall through to
                        # deliver_hop, which raises the DeliveryError
                        # per-hop delivery would.
                        deliver(node_id, next_id,
                                HOP_BATCH_BASE_BYTES
                                + HOP_KEY_BYTES * len(batch))
                    elif account and self.transport is not None:
                        message = Message(src=node_id, dst=next_id,
                                          kind="LookupHop",
                                          payload={"key_ids": batch})
                        self.transport.request(message)
                    messages += 1
                    next_frontier.setdefault(next_id, []).extend(batch)
            frontier = next_frontier
        return BatchLookupResult(owners=owners, messages=messages,
                                 per_key_hops=per_key_hops)

    def lookup_many_async(self, source_id: int, key_ids: Iterable[int],
                          account: bool = True):
        """Async (sim-proc) variant of :meth:`lookup_many`.

        A generator to be driven by :meth:`repro.sim.events.Simulator.spawn`
        (or ``yield from`` inside another proc): each routing round sends
        its shared ``LookupHop`` messages through
        :meth:`~repro.net.transport.Transport.request_async` and *waits*
        for their delivery before advancing the frontier, so lookups from
        different queries genuinely interleave in virtual time.  With an
        unchanged membership the hop sequence — and therefore the routed
        messages and their sizes — is identical to the synchronous
        :meth:`lookup_many`.

        Churn mid-lookup is handled gracefully instead of raising:

        * a hop whose destination departed the ring re-routes its keys
          from the sending node (tables refreshed) on the next round;
        * a hop whose destination is still a ring member but has no
          transport endpoint (a half-dead peer) falls back to the
          ownership oracle for its keys — the subsequent probe to that
          owner will surface the drop;
        * keys stranded at a node that itself departed restart from the
          source, or fall back to the oracle when the source is gone;
        * a hop dropped by a *full service queue* (``"overflow"`` — the
          transport's congestion model, not churn) is retransmitted on
          the next round, after an exponentially growing backoff (an
          immediate retry would hit the same still-full queue); a
          generous per-lookup retry budget bounds the pathological
          case, beyond which the oracle answers.

        Returns (via ``StopIteration`` / proc result) a
        :class:`BatchLookupResult` with ``message_batches`` and
        ``message_bytes`` populated.
        """
        self.ensure_tables()
        if source_id not in self._members:
            raise KeyError(f"source node {source_id} not present")
        pending = sorted(set(key_ids))
        owners: Dict[int, int] = {}
        per_key_hops: Dict[int, int] = {key_id: 0 for key_id in pending}
        message_batches: List[List[int]] = []
        message_bytes: List[int] = []
        frontier: Dict[int, List[int]] = {source_id: pending}
        messages = 0
        rounds = 0
        retransmissions = 0
        consecutive_overflows = 0
        #: Overflow-retry allowance: rounds spent retransmitting hops a
        #: full service queue rejected must not look like routing-table
        #: inconsistency.
        retry_budget = 64
        max_rounds = 2 * ID_BITS + self.size
        while frontier:
            rounds += 1
            if rounds > max_rounds + retransmissions:
                unresolved = sorted(key_id for keys in frontier.values()
                                    for key_id in keys)
                raise RuntimeError(
                    f"async batched lookup exceeded {max_rounds} rounds "
                    f"for keys {unresolved[:4]}...; routing tables are "
                    "inconsistent")
            hops: List[Tuple[int, int, List[int]]] = []
            for node_id in sorted(frontier):
                node = (self._fresh(node_id) if node_id in self._members
                        else None)
                if node is None:
                    # The routing node departed while keys were headed to
                    # it; restart from the source or fall back to the
                    # ownership oracle.
                    for key_id in frontier[node_id]:
                        if source_id in self._members:
                            hops.append((source_id, source_id, [key_id]))
                        else:
                            owners[key_id] = self.successor_of(key_id)
                    continue
                predecessor = self.predecessor_of(node_id)
                hop = (node.next_hop_fast if self.fast_hops
                       else node.next_hop)
                by_next: Dict[int, List[int]] = {}
                for key_id in frontier[node_id]:
                    if node.owns(key_id, predecessor):
                        owners[key_id] = node_id
                        continue
                    next_id = hop(key_id)
                    if next_id is None:
                        next_id = node.successor
                    by_next.setdefault(next_id, []).append(key_id)
                for next_id in sorted(by_next):
                    hops.append((node_id, next_id, by_next[next_id]))
            # Restart hops (node_id == next_id) carry no message; they
            # just re-enter the frontier at the source.
            sends = []
            for node_id, next_id, batch in hops:
                if node_id == next_id:
                    sends.append((None, node_id, next_id, batch))
                    continue
                messages += 1
                message_batches.append(list(batch))
                for key_id in batch:
                    per_key_hops[key_id] += 1
                if account and self.transport is not None:
                    hop_message = Message(src=node_id, dst=next_id,
                                          kind="LookupHop",
                                          payload={"key_ids": batch})
                    message_bytes.append(hop_message.size_bytes())
                    sends.append((self.transport.request_async(hop_message),
                                  node_id, next_id, batch))
                else:
                    message_bytes.append(0)
                    sends.append((None, node_id, next_id, batch))
            futures = [future for future, *_rest in sends
                       if future is not None]
            if futures:
                yield all_of(futures)
            self.ensure_tables()    # membership may have moved mid-flight
            next_frontier: Dict[int, List[int]] = {}
            overflow_rtts: List[float] = []
            for future, node_id, next_id, batch in sends:
                if future is not None and not future.value.ok:
                    if (future.value.status == "overflow"
                            and node_id in self._members
                            and retry_budget > 0):
                        # Congestion, not churn: the hop was rejected by
                        # a full service queue — retransmit it from the
                        # same node on the next round.
                        retry_budget -= 1
                        retransmissions += 1
                        overflow_rtts.append(future.value.rtt)
                        next_frontier.setdefault(node_id,
                                                 []).extend(batch)
                    elif self.contains(next_id):
                        # Half-dead: in the ring but unreachable — the
                        # oracle owner is the best answer we can route to.
                        for key_id in batch:
                            owners[key_id] = self.successor_of(key_id)
                    elif node_id in self._members:
                        next_frontier.setdefault(node_id, []).extend(batch)
                    elif source_id in self._members:
                        next_frontier.setdefault(source_id,
                                                 []).extend(batch)
                    else:
                        for key_id in batch:
                            owners[key_id] = self.successor_of(key_id)
                else:
                    next_frontier.setdefault(next_id, []).extend(batch)
            if overflow_rtts:
                # Back off before the retry round — exponentially, so
                # repeated rejections from a saturated node thin the
                # retry stream instead of hammering it.
                consecutive_overflows += 1
                yield min(1.0, max(overflow_rtts)
                          * (2.0 ** (consecutive_overflows - 1)))
            else:
                consecutive_overflows = 0
            frontier = next_frontier
        return BatchLookupResult(owners=owners, messages=messages,
                                 per_key_hops=per_key_hops,
                                 message_batches=message_batches,
                                 message_bytes=message_bytes,
                                 retransmissions=retransmissions)

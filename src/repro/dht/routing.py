"""Routing-table construction strategies.

The AlvisP2P paper (Section 3) states that its DHT "uses the concept of
'hop space' for routing table construction" so that it "supports arbitrary
skews in the distribution of the peers in the identifier space" while
keeping routing tables of size O(log n) and expected O(log n) hops
(Klemm, Girdzijauskas, Le Boudec, Aberer — *On Routing in Distributed Hash
Tables*, P2P 2007).

Two strategies are implemented so experiment E7 can contrast them:

* :class:`NaiveFingers` — classic Chord fingers at id-space offsets
  ``2^i``.  Under uniform peer placement this yields ~log2(n) hops, but
  when peers are crowded into a small arc of the ring, greedy routing must
  resolve exponentially fine id distances and the hop count degrades
  towards the id width (up to 64) instead of log2(n).

* :class:`HopSpaceFingers` — fingers at exponential *rank* offsets: the
  i-th finger of the peer at rank r points at the peer at rank
  ``r + 2^i (mod n)``.  Greedy routing then halves the remaining *peer
  count* each hop, giving ceil(log2 n) hops for any placement.

In the deployed system tables are maintained by a gossip protocol; here we
build them from a membership snapshot, which models the converged state the
published evaluation measures.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from repro.dht.idspace import ID_BITS, ID_SPACE, random_id

__all__ = ["FingerTableStrategy", "NaiveFingers", "HopSpaceFingers",
           "uniform_ids", "skewed_ids"]


class FingerTableStrategy(abc.ABC):
    """Builds the out-neighbour list of one node from a membership snapshot."""

    @abc.abstractmethod
    def build(self, node_id: int, members: Sequence[int]) -> List[int]:
        """Return the finger ids for ``node_id``.

        ``members`` is the sorted list of all live node ids (including
        ``node_id`` itself).  The returned list excludes ``node_id`` and
        contains no duplicates; it always includes the immediate successor
        so greedy routing can terminate.
        """

    @staticmethod
    def _successor_index(target: int, members: Sequence[int]) -> int:
        """Index of the first member clockwise from (or at) ``target``."""
        # Binary search over the sorted membership list, wrapping at the end.
        low, high = 0, len(members)
        while low < high:
            mid = (low + high) // 2
            if members[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low % len(members)

    @staticmethod
    def _dedupe_keep_order(ids: Sequence[int], self_id: int) -> List[int]:
        seen = set()
        result = []
        for finger in ids:
            if finger != self_id and finger not in seen:
                seen.add(finger)
                result.append(finger)
        return result


class NaiveFingers(FingerTableStrategy):
    """Chord-style fingers at id offsets ``2^i`` for i in [0, ID_BITS)."""

    def build(self, node_id: int, members: Sequence[int]) -> List[int]:
        if not members:
            raise ValueError("membership snapshot is empty")
        fingers = []
        for i in range(ID_BITS):
            target = (node_id + (1 << i)) % ID_SPACE
            index = self._successor_index(target, members)
            fingers.append(members[index])
        return self._dedupe_keep_order(fingers, node_id)


class HopSpaceFingers(FingerTableStrategy):
    """Fingers at exponential rank (peer-count) offsets.

    The real protocol estimates ranks from sampled routing traffic; building
    from the snapshot gives the converged table the P2P'07 paper analyzes.
    """

    def build(self, node_id: int, members: Sequence[int]) -> List[int]:
        if not members:
            raise ValueError("membership snapshot is empty")
        n = len(members)
        my_rank = self._successor_index(node_id, members)
        if members[my_rank] != node_id:
            raise ValueError(f"node {node_id} not in membership snapshot")
        fingers = []
        offset = 1
        while offset < n:
            fingers.append(members[(my_rank + offset) % n])
            offset <<= 1
        if not fingers and n > 1:
            fingers.append(members[(my_rank + 1) % n])
        return self._dedupe_keep_order(fingers, node_id)


def uniform_ids(rng: random.Random, count: int) -> List[int]:
    """Draw ``count`` distinct uniformly random identifiers."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    ids: set = set()
    while len(ids) < count:
        ids.add(random_id(rng))
    return sorted(ids)


def skewed_ids(rng: random.Random, count: int,
               cluster_fraction: float = 0.9,
               cluster_width: float = 0.001) -> List[int]:
    """Draw identifiers with a heavy cluster, modelling arbitrary skew.

    A ``cluster_fraction`` share of peers is packed into an arc covering
    ``cluster_width`` of the ring; the rest is uniform.  This is the regime
    where naive id-space fingers degrade but hop-space fingers do not
    (experiment E7).  Skew like this arises in practice when peer ids are
    derived from semantic keys or IP prefixes rather than uniform hashes.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0 <= cluster_fraction <= 1:
        raise ValueError(
            f"cluster_fraction must be in [0, 1], got {cluster_fraction}")
    if not 0 < cluster_width <= 1:
        raise ValueError(
            f"cluster_width must be in (0, 1], got {cluster_width}")
    cluster_start = random_id(rng)
    width = max(1, int(ID_SPACE * cluster_width))
    ids: set = set()
    target_cluster = int(count * cluster_fraction)
    while len(ids) < target_cluster:
        ids.add((cluster_start + rng.randrange(width)) % ID_SPACE)
    while len(ids) < count:
        ids.add(random_id(rng))
    return sorted(ids)

"""Structured overlay (L2 of the AlvisP2P architecture).

A ring DHT with two routing-table constructions:

* **naive fingers** — classic exponential id-space fingers, whose hop count
  degrades when peer identifiers are skewed in the id space, and
* **hop-space fingers** — the construction of Klemm et al. (P2P 2007) cited
  by the paper, where fingers are placed at exponential *rank* (peer-count)
  distances, keeping lookups at ~log2(n) hops under arbitrary skew.

The package also contains the congestion-control model cited from
Klemm et al. (NCA 2006) and churn handling with index handover.
"""

from repro.dht.congestion import (
    AimdSender,
    CongestionConfig,
    QueueingNode,
    UncontrolledSender,
)
from repro.dht.hashing import hash_string, hash_terms
from repro.dht.idspace import (
    ID_BITS,
    ID_SPACE,
    clockwise_distance,
    in_interval,
    random_id,
)
from repro.dht.node import DHTNode
from repro.dht.ring import DHTRing, LookupResult
from repro.dht.routing import (
    FingerTableStrategy,
    HopSpaceFingers,
    NaiveFingers,
    skewed_ids,
    uniform_ids,
)

__all__ = [
    "AimdSender",
    "CongestionConfig",
    "QueueingNode",
    "UncontrolledSender",
    "hash_string",
    "hash_terms",
    "ID_BITS",
    "ID_SPACE",
    "clockwise_distance",
    "in_interval",
    "random_id",
    "DHTNode",
    "DHTRing",
    "LookupResult",
    "FingerTableStrategy",
    "HopSpaceFingers",
    "NaiveFingers",
    "skewed_ids",
    "uniform_ids",
]

"""Churn: peers joining and leaving, with index handover.

When a peer joins, it takes over the key range between its predecessor and
itself from the previous owner; when it leaves gracefully, its range is
absorbed by its successor.  The global-index layer registers a handover
callback to physically move (and byte-account) the affected posting lists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.dht.idspace import random_id
from repro.dht.ring import DHTRing

__all__ = ["ChurnEvent", "ChurnProcess"]

#: Callback invoked as handover(from_peer, to_peer, range_lo, range_hi):
#: move every key with id in the clockwise interval (range_lo, range_hi].
HandoverFn = Callable[[int, int, int, int], None]


@dataclass
class ChurnEvent:
    """One membership change, recorded for experiment reports."""

    kind: str        #: "join" or "leave"
    node_id: int
    ring_size_after: int


class ChurnProcess:
    """Applies joins/leaves to a ring and drives index handover."""

    def __init__(self, ring: DHTRing, rng: random.Random,
                 on_handover: Optional[HandoverFn] = None):
        self.ring = ring
        self.rng = rng
        self.on_handover = on_handover
        self.history: List[ChurnEvent] = []

    def join(self, node_id: Optional[int] = None) -> int:
        """Add a node (random id by default) and hand over its key range.

        Returns the id of the new node.
        """
        if node_id is None:
            node_id = random_id(self.rng)
            while self.ring.contains(node_id):
                node_id = random_id(self.rng)
        elif self.ring.contains(node_id):
            raise ValueError(f"node {node_id} already in ring")
        # Before insertion, the keys in (pred(new), new] belong to the
        # current successor of the new id; they must move to the newcomer.
        old_owner = self.ring.successor_of(node_id) if self.ring.size else None
        self.ring.add_node(node_id)
        self.ring.maintain()
        if old_owner is not None and old_owner != node_id:
            predecessor = self.ring.predecessor_of(node_id)
            if self.on_handover is not None:
                self.on_handover(old_owner, node_id, predecessor, node_id)
        self.history.append(
            ChurnEvent("join", node_id, self.ring.size))
        return node_id

    def leave(self, node_id: Optional[int] = None) -> int:
        """Remove a node gracefully, handing its range to its successor.

        Returns the id of the departed node.
        """
        if self.ring.size <= 1:
            raise ValueError("cannot remove the last node")
        if node_id is None:
            node_id = self.rng.choice(list(self.ring.member_ids))
        elif not self.ring.contains(node_id):
            raise KeyError(f"node {node_id} not in ring")
        predecessor = self.ring.predecessor_of(node_id)
        self.ring.remove_node(node_id)
        self.ring.maintain()
        new_owner = self.ring.successor_of(node_id)
        if self.on_handover is not None:
            self.on_handover(node_id, new_owner, predecessor, node_id)
        self.history.append(
            ChurnEvent("leave", node_id, self.ring.size))
        return node_id

    def run_session(self, joins: int, leaves: int) -> None:
        """Apply a randomly interleaved batch of joins and leaves."""
        operations = ["join"] * joins + ["leave"] * leaves
        self.rng.shuffle(operations)
        for operation in operations:
            if operation == "join":
                self.join()
            else:
                self.leave()

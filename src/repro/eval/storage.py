"""Index-storage accounting (experiment E3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, TYPE_CHECKING

from repro.util.stats import gini_coefficient, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import AlvisNetwork

__all__ = ["StorageReport", "storage_report"]


@dataclass
class StorageReport:
    """Global-index storage figures for one network."""

    total_keys: int
    total_postings: int
    total_bytes: int
    per_peer_bytes: Dict[int, int]
    keys_by_size: Dict[int, int]

    def summary(self) -> Dict[str, float]:
        stats = summarize(list(self.per_peer_bytes.values()))
        stats["gini"] = gini_coefficient(
            list(self.per_peer_bytes.values()))
        stats["total_keys"] = float(self.total_keys)
        stats["total_postings"] = float(self.total_postings)
        stats["total_bytes"] = float(self.total_bytes)
        return stats


def storage_report(network: "AlvisNetwork") -> StorageReport:
    """Collect storage figures from every peer's index fragment."""
    per_peer = network.per_peer_index_storage()
    keys_by_size: Dict[int, int] = {}
    total_keys = 0
    total_postings = 0
    for peer in network.peers():
        for entry in peer.fragment:
            if not entry.postings and not entry.contributors:
                continue  # QDI shadow entries hold no index data
            total_keys += 1
            total_postings += len(entry.postings)
            size = len(entry.key)
            keys_by_size[size] = keys_by_size.get(size, 0) + 1
    return StorageReport(
        total_keys=total_keys,
        total_postings=total_postings,
        total_bytes=sum(per_peer.values()),
        per_peer_bytes=per_peer,
        keys_by_size=keys_by_size,
    )

"""Load-balance metrics (experiment E6)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.util.stats import gini_coefficient, max_over_mean, summarize

__all__ = ["load_balance_report"]


def load_balance_report(values: Sequence[float]) -> Dict[str, float]:
    """Summary + inequality measures for a per-peer load distribution.

    ``gini`` is 0 for a perfectly even distribution; ``max_over_mean``
    is the hot-spot factor (1.0 = perfectly balanced).
    """
    report = summarize(values)
    report["gini"] = gini_coefficient(values)
    report["max_over_mean"] = max_over_mean(values)
    return report

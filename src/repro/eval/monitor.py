"""Network monitoring — the demonstration's second machine.

Section 5: "A second demonstration machine will be setup to illustrate
the indexing/retrieval mechanisms implemented in our software.  It will
also report the current state of the network, as well as some critical
statistics about bandwidth consumption, storage, etc."

:class:`NetworkMonitor` is that machine: it aggregates the live state of
an :class:`~repro.core.network.AlvisNetwork` into a structured snapshot
(membership, index composition, traffic breakdown, load distribution,
QDI activity) and renders it as the text dashboard the demo displayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.eval.bandwidth import TrafficBreakdown, traffic_breakdown
from repro.eval.reporting import format_table
from repro.util.process import peak_rss_kb
from repro.util.stats import gini_coefficient, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import AlvisNetwork

__all__ = ["NetworkSnapshot", "NetworkMonitor"]


@dataclass
class NetworkSnapshot:
    """One observation of the network's state."""

    num_peers: int
    num_documents: int
    index_mode: Optional[str]
    total_keys: int
    keys_by_size: Dict[int, int]
    total_postings: int
    storage_bytes_total: int
    storage_gini: float
    bytes_total: float
    messages_total: float
    traffic: TrafficBreakdown
    per_peer_messages_in: Dict[int, int]
    qdi_activations: int = 0
    qdi_evictions: int = 0
    #: Aggregated probe-cache counters across all peers (query engine).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_bytes_used: int = 0
    #: Async query runtime: completed/active queries, outstanding async
    #: requests, and clock-measured latency percentiles.
    queries_completed: int = 0
    queries_active: int = 0
    peak_queries_active: int = 0
    requests_in_flight: int = 0
    query_latency_p50: float = 0.0
    query_latency_p95: float = 0.0
    query_latency_p99: float = 0.0
    #: Congestion control: service-queue overflow drops at endpoints,
    #: dispatcher retransmissions/backlog, and the AIMD window state.
    congestion_queue_drops: int = 0
    congestion_queued: int = 0
    congestion_retransmissions: int = 0
    congestion_backlog: int = 0
    congestion_early_flushes: int = 0
    congestion_window_mean: float = 0.0
    congestion_window_min: float = 0.0
    congestion_window_decreases: int = 0
    #: Kernel throughput and process memory (the scale-out metrics):
    #: events executed by the simulator, wall-clock spent in its run
    #: loops, the resulting events/sec, and peak resident set size.
    events_processed: int = 0
    kernel_wall_seconds: float = 0.0
    events_per_sec: float = 0.0
    peak_rss_kb: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view (for time series / plotting)."""
        flat = {
            "peers": float(self.num_peers),
            "documents": float(self.num_documents),
            "keys": float(self.total_keys),
            "postings": float(self.total_postings),
            "storage_bytes": float(self.storage_bytes_total),
            "storage_gini": self.storage_gini,
            "bytes_total": self.bytes_total,
            "messages_total": self.messages_total,
            "qdi_activations": float(self.qdi_activations),
            "qdi_evictions": float(self.qdi_evictions),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_evictions": float(self.cache_evictions),
            "cache_invalidations": float(self.cache_invalidations),
            "cache_bytes_used": float(self.cache_bytes_used),
            "queries_completed": float(self.queries_completed),
            "queries_active": float(self.queries_active),
            "peak_queries_active": float(self.peak_queries_active),
            "requests_in_flight": float(self.requests_in_flight),
            "query_latency_p50": self.query_latency_p50,
            "query_latency_p95": self.query_latency_p95,
            "query_latency_p99": self.query_latency_p99,
            "congestion_queue_drops": float(self.congestion_queue_drops),
            "congestion_queued": float(self.congestion_queued),
            "congestion_retransmissions":
                float(self.congestion_retransmissions),
            "congestion_backlog": float(self.congestion_backlog),
            "congestion_early_flushes":
                float(self.congestion_early_flushes),
            "congestion_window_mean": self.congestion_window_mean,
            "congestion_window_min": self.congestion_window_min,
            "congestion_window_decreases":
                float(self.congestion_window_decreases),
            "events_processed": float(self.events_processed),
            "kernel_wall_seconds": self.kernel_wall_seconds,
            "events_per_sec": self.events_per_sec,
            "peak_rss_kb": float(self.peak_rss_kb),
        }
        flat.update({f"traffic_{name}": value
                     for name, value in self.traffic.as_dict().items()})
        return flat


class NetworkMonitor:
    """Aggregates and renders network state; keeps a snapshot history."""

    def __init__(self, network: "AlvisNetwork"):
        self.network = network
        self.history: List[NetworkSnapshot] = []

    # ------------------------------------------------------------------

    def snapshot(self) -> NetworkSnapshot:
        """Observe the network now; the snapshot is appended to history."""
        network = self.network
        keys_by_size: Dict[int, int] = {}
        total_keys = 0
        total_postings = 0
        for peer in network.peers():
            for entry in peer.fragment:
                if not entry.postings and not entry.contributors:
                    continue
                total_keys += 1
                total_postings += len(entry.postings)
                size = len(entry.key)
                keys_by_size[size] = keys_by_size.get(size, 0) + 1
        per_peer_storage = list(
            network.per_peer_index_storage().values())
        qdi_activations = sum(
            peer.qdi.stats.activations for peer in network.peers()
            if peer.qdi is not None)
        qdi_evictions = sum(
            peer.qdi.stats.evictions for peer in network.peers()
            if peer.qdi is not None)
        cache_stats = [peer.probe_cache.stats for peer in network.peers()]
        runtime = network.runtime
        latency = runtime.latency_summary()
        service = network.transport.service_stats()
        congestion = runtime.congestion_summary()
        observed = NetworkSnapshot(
            num_peers=network.num_peers,
            num_documents=network.total_documents(),
            index_mode=network.mode,
            total_keys=total_keys,
            keys_by_size=keys_by_size,
            total_postings=total_postings,
            storage_bytes_total=sum(per_peer_storage),
            storage_gini=gini_coefficient(per_peer_storage)
            if per_peer_storage else 0.0,
            bytes_total=network.bytes_sent_total(),
            messages_total=network.messages_sent_total(),
            traffic=traffic_breakdown(network.bytes_by_kind()),
            per_peer_messages_in=network.per_peer_messages_in(),
            qdi_activations=qdi_activations,
            qdi_evictions=qdi_evictions,
            cache_hits=sum(stats.hits for stats in cache_stats),
            cache_misses=sum(stats.misses for stats in cache_stats),
            cache_evictions=sum(stats.evictions for stats in cache_stats),
            cache_invalidations=sum(stats.invalidations
                                    for stats in cache_stats),
            cache_bytes_used=sum(peer.probe_cache.used_bytes
                                 for peer in network.peers()),
            queries_completed=runtime.completed,
            queries_active=runtime.active,
            peak_queries_active=runtime.peak_active,
            requests_in_flight=network.transport.total_inflight(),
            query_latency_p50=latency["p50"],
            query_latency_p95=latency["p95"],
            query_latency_p99=latency["p99"],
            congestion_queue_drops=service["dropped"],
            congestion_queued=service["queued"],
            congestion_retransmissions=int(
                congestion["retransmissions"]),
            congestion_backlog=int(congestion["backlog"]),
            congestion_early_flushes=int(congestion["early_flushes"]),
            congestion_window_mean=congestion["window_mean"],
            congestion_window_min=congestion["window_min"],
            congestion_window_decreases=int(
                congestion["window_decreases"]),
            events_processed=network.simulator.events_processed,
            kernel_wall_seconds=network.simulator.wall_seconds,
            events_per_sec=network.simulator.events_per_sec,
            peak_rss_kb=peak_rss_kb(),
        )
        self.history.append(observed)
        return observed

    # ------------------------------------------------------------------

    def render(self, snapshot: Optional[NetworkSnapshot] = None) -> str:
        """The text dashboard of the demo's monitoring station."""
        if snapshot is None:
            snapshot = self.snapshot()
        lines = ["AlvisP2P network monitor", "=" * 40]
        lines.append(
            f"peers: {snapshot.num_peers}   documents: "
            f"{snapshot.num_documents}   index: "
            f"{snapshot.index_mode or 'not built'}")
        key_sizes = ", ".join(
            f"{size}-term: {count}"
            for size, count in sorted(snapshot.keys_by_size.items()))
        lines.append(f"global index: {snapshot.total_keys} keys "
                     f"({key_sizes or 'empty'}), "
                     f"{snapshot.total_postings} postings, "
                     f"{snapshot.storage_bytes_total:,} bytes "
                     f"(gini {snapshot.storage_gini:.2f})")
        traffic = snapshot.traffic
        lines.append(
            f"traffic: {snapshot.bytes_total:,.0f} bytes in "
            f"{snapshot.messages_total:,.0f} messages")
        lines.append(format_table(
            ["category", "bytes", "share"],
            [[name, value,
              value / traffic.total if traffic.total else 0.0]
             for name, value in (("routing", traffic.routing),
                                 ("indexing", traffic.indexing),
                                 ("retrieval", traffic.retrieval),
                                 ("other", traffic.other))]))
        if snapshot.per_peer_messages_in:
            load = summarize([float(v) for v in
                              snapshot.per_peer_messages_in.values()])
            lines.append(
                f"per-peer inbound messages: mean {load['mean']:.1f}, "
                f"p99 {load['p99']:.1f}, max {load['max']:.0f}")
        if snapshot.index_mode == "qdi":
            lines.append(
                f"QDI: {snapshot.qdi_activations} activations, "
                f"{snapshot.qdi_evictions} evictions")
        if snapshot.queries_completed or snapshot.queries_active:
            lines.append(
                f"async runtime: {snapshot.queries_completed} queries "
                f"completed, {snapshot.queries_active} active "
                f"(peak {snapshot.peak_queries_active}), "
                f"{snapshot.requests_in_flight} requests in flight; "
                f"latency p50 {snapshot.query_latency_p50:.3f}s / "
                f"p95 {snapshot.query_latency_p95:.3f}s / "
                f"p99 {snapshot.query_latency_p99:.3f}s")
        if (snapshot.congestion_queue_drops
                or snapshot.congestion_retransmissions
                or snapshot.congestion_window_mean):
            lines.append(
                f"congestion: {snapshot.congestion_queue_drops} queue "
                f"drops ({snapshot.congestion_queued} queued), "
                f"{snapshot.congestion_retransmissions} retransmissions, "
                f"{snapshot.congestion_backlog} backlogged sends, "
                f"{snapshot.congestion_early_flushes} early flushes; "
                f"cwnd mean {snapshot.congestion_window_mean:.1f} / "
                f"min {snapshot.congestion_window_min:.1f} "
                f"({snapshot.congestion_window_decreases} decreases)")
        if snapshot.events_processed:
            lines.append(
                f"kernel: {snapshot.events_processed:,} events in "
                f"{snapshot.kernel_wall_seconds:.2f}s wall "
                f"({snapshot.events_per_sec:,.0f} events/s); "
                f"peak RSS {snapshot.peak_rss_kb:,} KB")
        if snapshot.cache_hits or snapshot.cache_misses:
            lines.append(
                f"probe cache: {snapshot.cache_hits} hits / "
                f"{snapshot.cache_misses} misses "
                f"(rate {snapshot.cache_hit_rate:.0%}), "
                f"{snapshot.cache_bytes_used:,} bytes held, "
                f"{snapshot.cache_evictions} evictions, "
                f"{snapshot.cache_invalidations} invalidations")
        return "\n".join(lines)

    def delta(self) -> Dict[str, float]:
        """Numeric change between the last two snapshots."""
        if len(self.history) < 2:
            raise ValueError("need at least two snapshots")
        before = self.history[-2].as_dict()
        after = self.history[-1].as_dict()
        return {name: after[name] - before.get(name, 0.0)
                for name in after}

"""Retrieval-quality metrics relative to a reference ranking.

The paper's quality claim is comparative: distributed, truncated retrieval
should match "state-of-the-art centralized search engines".  The standard
measures for that comparison (used by the HDK and QDI companion papers)
are overlap@k and precision/recall against the centralized top-k, treating
the centralized result as ground truth.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["overlap_at_k", "precision_at_k", "recall_at_k",
           "average_overlap_at_k"]


def overlap_at_k(candidate: Sequence[int], reference: Sequence[int],
                 k: int) -> float:
    """|top-k(candidate) ∩ top-k(reference)| / k.

    The symmetric set-overlap measure used by the QDI paper.  When the
    reference has fewer than ``k`` items, the denominator shrinks with it
    (overlap of two identical short lists is 1.0).

    >>> overlap_at_k([1, 3], [1, 2], 2)
    0.5
    >>> overlap_at_k([1, 2], [1, 2], 10)
    1.0
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    reference_top = list(dict.fromkeys(reference))[:k]
    if not reference_top:
        return 1.0 if not list(candidate)[:k] else 0.0
    candidate_top = set(list(dict.fromkeys(candidate))[:k])
    denominator = min(k, len(reference_top))
    hits = sum(1 for doc_id in reference_top if doc_id in candidate_top)
    return hits / denominator


def precision_at_k(candidate: Sequence[int], relevant: Iterable[int],
                   k: int) -> float:
    """Fraction of the candidate top-k that is relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(relevant)
    candidate_top = list(dict.fromkeys(candidate))[:k]
    if not candidate_top:
        return 0.0
    hits = sum(1 for doc_id in candidate_top if doc_id in relevant_set)
    return hits / len(candidate_top)


def recall_at_k(candidate: Sequence[int], relevant: Iterable[int],
                k: int) -> float:
    """Fraction of the relevant set found in the candidate top-k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    candidate_top = set(list(dict.fromkeys(candidate))[:k])
    hits = len(relevant_set & candidate_top)
    return hits / len(relevant_set)


def average_overlap_at_k(
        pairs: Iterable[Tuple[Sequence[int], Sequence[int]]],
        k: int) -> float:
    """Mean overlap@k over (candidate, reference) pairs."""
    values: List[float] = [overlap_at_k(candidate, reference, k)
                           for candidate, reference in pairs]
    if not values:
        raise ValueError("no pairs given")
    return sum(values) / len(values)

"""Bandwidth accounting helpers (experiment E2).

Breaks the transport's per-kind byte counters into the categories the
companion papers report: overlay routing, index construction/maintenance
and retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core import protocol

__all__ = ["TrafficBreakdown", "traffic_breakdown"]


@dataclass
class TrafficBreakdown:
    """Bytes by category."""

    routing: float
    indexing: float
    retrieval: float
    other: float

    @property
    def total(self) -> float:
        return self.routing + self.indexing + self.retrieval + self.other

    def as_dict(self) -> Dict[str, float]:
        return {"routing": self.routing, "indexing": self.indexing,
                "retrieval": self.retrieval, "other": self.other,
                "total": self.total}


def traffic_breakdown(bytes_by_kind: Mapping[str, float]
                      ) -> TrafficBreakdown:
    """Categorize a ``{message kind: bytes}`` mapping.

    Lookup hops are counted as routing; everything in
    ``protocol.INDEXING_KINDS`` as indexing; the remaining retrieval-path
    kinds as retrieval; unknown kinds (e.g. baseline-specific ones) are
    kept under ``other`` so nothing silently disappears.
    """
    routing = indexing = retrieval = other = 0.0
    retrieval_kinds = set(protocol.RETRIEVAL_KINDS) - {protocol.LOOKUP_HOP}
    for kind, value in bytes_by_kind.items():
        if kind == protocol.LOOKUP_HOP:
            routing += value
        elif kind in protocol.INDEXING_KINDS or kind == protocol.HANDOVER:
            indexing += value
        elif kind in retrieval_kinds:
            retrieval += value
        else:
            other += value
    return TrafficBreakdown(routing=routing, indexing=indexing,
                            retrieval=retrieval, other=other)

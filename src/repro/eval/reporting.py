"""Plain-text table rendering for the benchmark harness.

Benchmarks print the same rows/series the paper's evaluation surface
defines (see EXPERIMENTS.md); this module keeps the formatting in one
place and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "print_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[_format_cell(cell) for cell in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [render_row(headers),
             render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    """Print a titled table (the benchmarks' reporting primitive)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))

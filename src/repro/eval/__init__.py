"""Evaluation toolkit: quality, bandwidth, storage and load-balance metrics,
plus table-printing helpers for the benchmark harness."""

from repro.eval.bandwidth import TrafficBreakdown, traffic_breakdown
from repro.eval.loadbalance import load_balance_report
from repro.eval.quality import (
    average_overlap_at_k,
    overlap_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.eval.reporting import format_table, print_table
from repro.eval.storage import StorageReport, storage_report

__all__ = [
    "TrafficBreakdown",
    "traffic_breakdown",
    "load_balance_report",
    "average_overlap_at_k",
    "overlap_at_k",
    "precision_at_k",
    "recall_at_k",
    "format_table",
    "print_table",
    "StorageReport",
    "storage_report",
]

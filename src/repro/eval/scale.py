"""Scale-sweep leg runner: one network size, one kernel profile.

The scale-out benchmark (``benchmarks/bench_scale.py``) sweeps network
sizes (1k -> 10k -> 100k peers) and compares the optimised kernel
(``kernel_profile="fast"``) against the pre-optimisation one
(``"legacy"``, typically combined with ``REPRO_PURE_PYTHON=1``).  Each
leg runs in its own subprocess so peak RSS is attributable::

    PYTHONPATH=src python -m repro.eval.scale \
        --peers 10000 --queries 36 --churn 90 --profile legacy --json -

A leg builds the network, runs the statistics phase and HDK index
build, then drives a *churning query workload*: join/leave events
interleaved with queries through the async runtime.  Churn is what
separates the profiles asymptotically — the legacy ring rebuilds every
node's tables on every membership change, the fast ring refreshes only
the nodes a lookup actually touches.

Reported per leg: wall-clock per phase, events processed, effective
events/sec over the workload phase (wall-clock including table
maintenance — the number the ``>= 5x`` acceptance gate checks),
kernel-loop events/sec, bytes per query, peak RSS, and the exact
top-k id/score fingerprint of every query (the two profiles must agree
byte-for-byte).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict

from repro.core.config import AlvisConfig
from repro.core.fingerprint import state_fingerprint
from repro.core.network import AlvisNetwork
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.util.npcompat import HAVE_NUMPY
from repro.util.process import peak_rss_kb

__all__ = ["run_leg", "main"]


def run_leg(peers: int, documents: int = 240, queries: int = 36,
            churn_events: int = 90, kernel_profile: str = "fast",
            seed: int = 1234, mode: str = "hdk") -> Dict[str, Any]:
    """Run one sweep leg and return its result record."""
    leg_started = time.perf_counter()
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=documents, vocabulary_size=1200, num_topics=8,
        seed=seed))
    workload = QueryWorkload.from_corpus(
        corpus, QueryWorkloadConfig(pool_size=max(queries, 1),
                                    min_terms=2, max_terms=3, seed=seed))
    timings: Dict[str, float] = {}

    # The fast profile also exercises the indexing-phase scale-out
    # (packed postings are byte-identical; batched lookups change only
    # LookupHop traffic, never HDK contents — the fingerprint and top-k
    # comparisons below still hold across profiles).
    if kernel_profile == "fast":
        config = AlvisConfig(async_queries=True, packed_postings=True,
                             batch_index_lookups=True)
    else:
        config = AlvisConfig(async_queries=True)

    started = time.perf_counter()
    network = AlvisNetwork(num_peers=peers, config=config,
                           seed=seed, kernel_profile=kernel_profile)
    network.distribute_documents(corpus.documents())
    timings["build_s"] = time.perf_counter() - started

    started = time.perf_counter()
    network.run_statistics_phase()
    timings["stats_s"] = time.perf_counter() - started

    started = time.perf_counter()
    network.build_index(mode=mode)
    timings["hdk_s"] = time.perf_counter() - started
    timings["index_s"] = timings["stats_s"] + timings["hdk_s"]

    index_fingerprint = state_fingerprint(network)

    simulator = network.simulator
    churn = network.churn()
    events_before = simulator.events_processed
    kernel_wall_before = simulator.wall_seconds
    bytes_before = network.bytes_sent_total()
    fingerprints = []
    completed = 0

    def _run_query(index: int) -> None:
        jobs = network.run_queries(
            [list(workload.pool[index % len(workload.pool)])],
            arrival_rate=50.0)
        fingerprints.append([[doc.doc_id, doc.score]
                             for doc in jobs[0].results])

    started = time.perf_counter()
    for step in range(churn_events):
        # Balanced churn: the membership oscillates around its initial
        # size, and each event dirties every routing table.
        if step % 2 == 0:
            churn.join()
        else:
            churn.leave()
        due = ((step + 1) * queries) // max(churn_events, 1)
        while completed < due:
            _run_query(completed)
            completed += 1
    while completed < queries:
        _run_query(completed)
        completed += 1
    workload_wall = time.perf_counter() - started

    events = simulator.events_processed - events_before
    kernel_wall = simulator.wall_seconds - kernel_wall_before
    return {
        "peers": peers,
        "documents": documents,
        "queries": queries,
        "churn_events": churn_events,
        "kernel_profile": kernel_profile,
        "numpy": HAVE_NUMPY,
        "seed": seed,
        "mode": mode,
        "timings": dict(timings, workload_s=workload_wall,
                        indexing_phase_s=timings["index_s"],
                        query_phase_s=workload_wall),
        "index_fingerprint": index_fingerprint,
        "wall_clock_s": time.perf_counter() - leg_started,
        "events_processed": events,
        "events_per_sec": events / workload_wall if workload_wall else 0.0,
        "kernel_events_per_sec": (events / kernel_wall
                                  if kernel_wall else 0.0),
        "bytes_per_query": ((network.bytes_sent_total() - bytes_before)
                            / max(queries, 1)),
        "peak_rss_kb": peak_rss_kb(),
        "top_k": fingerprints,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run one scale-sweep leg (see benchmarks/"
                    "bench_scale.py for the full sweep driver)")
    parser.add_argument("--peers", type=int, required=True)
    parser.add_argument("--documents", type=int, default=240)
    parser.add_argument("--queries", type=int, default=36)
    parser.add_argument("--churn", type=int, default=90)
    parser.add_argument("--profile", choices=("fast", "legacy"),
                        default="fast")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--mode", default="hdk")
    parser.add_argument("--json", default="-",
                        help="output path ('-' for stdout)")
    args = parser.parse_args(argv)
    leg = run_leg(peers=args.peers, documents=args.documents,
                  queries=args.queries, churn_events=args.churn,
                  kernel_profile=args.profile, seed=args.seed,
                  mode=args.mode)
    payload = json.dumps(leg, indent=2, sort_keys=True)
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

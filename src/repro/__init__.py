"""AlvisP2P reproduction: scalable peer-to-peer text retrieval in a
structured P2P network (Luu et al., VLDB 2008).

Quick tour::

    from repro import AlvisNetwork, AlvisConfig
    from repro.corpus import sample_documents

    network = AlvisNetwork(num_peers=8, config=AlvisConfig(), seed=1)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    results, trace = network.query(network.peer_ids()[0],
                                   "scalable peer retrieval")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core.access import AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.core.network import AlvisNetwork
from repro.core.peer import AlvisPeer
from repro.core.replication import ReplicationManager
from repro.eval.monitor import NetworkMonitor
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document

__version__ = "1.0.0"

__all__ = [
    "AccessPolicy",
    "AlvisConfig",
    "Key",
    "AlvisNetwork",
    "AlvisPeer",
    "ReplicationManager",
    "NetworkMonitor",
    "Analyzer",
    "Document",
    "__version__",
]

"""``python -m repro`` — the AlvisP2P client CLI."""

import sys

from repro.cli import main

sys.exit(main())

"""Porter stemmer.

A faithful implementation of M.F. Porter's 1980 suffix-stripping algorithm
("An algorithm for suffix stripping", *Program* 14(3)), the stemmer used by
Terrier and virtually every IR engine of the AlvisP2P era.  Implemented
from the published algorithm description.
"""

from __future__ import annotations

__all__ = ["PorterStemmer"]

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer; ``stem(word)`` is the whole API.

    >>> PorterStemmer().stem("caresses")
    'caress'
    >>> PorterStemmer().stem("relational")
    'relat'
    >>> PorterStemmer().stem("sky")
    'sky'
    """

    # ------------------------------------------------------------------
    # Measure and predicates over the word being stemmed
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, index: int) -> bool:
        letter = word[index]
        if letter in _VOWELS:
            return False
        if letter == "y":
            if index == 0:
                return True
            return not PorterStemmer._is_consonant(word, index - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The 'measure' m of a stem: the number of VC sequences."""
        forms = []
        for index in range(len(stem)):
            forms.append("c" if cls._is_consonant(stem, index) else "v")
        collapsed = []
        for form in forms:
            if not collapsed or collapsed[-1] != form:
                collapsed.append(form)
        pattern = "".join(collapsed)
        if pattern.startswith("c"):
            pattern = pattern[1:]
        if pattern.endswith("v"):
            pattern = pattern[:-1]
        # What remains alternates "vcvc..."; m is the number of VC pairs.
        return len(pattern) // 2

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, index)
                   for index in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, stem: str) -> bool:
        if len(stem) < 2:
            return False
        if stem[-1] != stem[-2]:
            return False
        return cls._is_consonant(stem, len(stem) - 1)

    @classmethod
    def _ends_cvc(cls, stem: str) -> bool:
        """consonant-vowel-consonant, final consonant not w, x or y."""
        if len(stem) < 3:
            return False
        if not cls._is_consonant(stem, len(stem) - 3):
            return False
        if cls._is_consonant(stem, len(stem) - 2):
            return False
        if not cls._is_consonant(stem, len(stem) - 1):
            return False
        return stem[-1] not in "wxy"

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem = word[:-3]
            if self._measure(stem) > 1:
                return stem
            return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            measure = self._measure(stem)
            if measure > 1:
                return stem
            if measure == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (word.endswith("ll") and self._measure(word) > 1):
            return word[:-1]
        return word

    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (assumed lowercase)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

"""Relevance scoring: BM25 (the paper's ranking function) and TF-IDF.

The paper (Section 3, footnote 1): "Currently, we are using the
state-of-the-art BM25 ranking function.  Notice, however, that any other
function could be used instead, provided that the required global
statistics are available in the P2P network."  Accordingly, the scoring
functions here take an explicit :class:`CollectionStatistics` — local
engines pass local statistics, the distributed ranking layer (L4) passes
globally aggregated ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, Union

from repro.util.npcompat import np

__all__ = ["BM25Parameters", "CollectionStatistics", "bm25_term_weight",
           "bm25_weight_ceiling", "bm25_score", "bm25_scores_packed",
           "tf_idf_score"]


@dataclass(frozen=True)
class BM25Parameters:
    """The two free parameters of BM25 (Robertson/Spärck Jones defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self):
        if self.k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {self.k1}")
        if not 0 <= self.b <= 1:
            raise ValueError(f"b must be in [0, 1], got {self.b}")


@dataclass
class CollectionStatistics:
    """The statistics BM25 needs, local or global.

    ``document_frequencies`` may be a mapping or a callable; the callable
    form lets the distributed ranking layer resolve dfs through the DHT
    lazily.
    """

    num_documents: int
    average_document_length: float
    document_frequencies: Union[Mapping[str, int], Callable[[str], int]]

    def df(self, term: str) -> int:
        """Document frequency of ``term`` (0 when unknown)."""
        if callable(self.document_frequencies):
            return int(self.document_frequencies(term))
        return int(self.document_frequencies.get(term, 0))


def bm25_term_weight(term_frequency: int, document_frequency: int,
                     document_length: int, stats: CollectionStatistics,
                     params: BM25Parameters = BM25Parameters()) -> float:
    """BM25 contribution of a single term to a document's score.

    Uses the non-negative "plus 1" idf variant (as Lucene/Terrier do) so
    that terms occurring in more than half the collection do not produce
    negative scores — important here because truncated posting lists are
    ranked by this weight and negative weights would invert truncation.
    """
    if term_frequency <= 0 or document_frequency <= 0:
        return 0.0
    n = max(stats.num_documents, 1)
    idf = math.log(1.0 + (n - document_frequency + 0.5)
                   / (document_frequency + 0.5))
    avgdl = max(stats.average_document_length, 1e-9)
    normalizer = params.k1 * (1.0 - params.b
                              + params.b * document_length / avgdl)
    return idf * term_frequency * (params.k1 + 1.0) \
        / (term_frequency + normalizer)


def bm25_weight_ceiling(document_frequency: int, num_documents: int,
                        params: BM25Parameters = BM25Parameters()
                        ) -> float:
    """Upper bound on :func:`bm25_term_weight` over all documents.

    The tf saturation term ``tf * (k1 + 1) / (tf + normalizer)`` is
    strictly below ``k1 + 1``, so ``idf * (k1 + 1)`` bounds the weight
    for any tf and document length.  Because idf falls as df rises, a
    df *lower bound* yields a sound ceiling (df 0 — term never seen —
    maximizes it).  The distributed query engine uses this for top-k
    early termination; keep it next to :func:`bm25_term_weight` so the
    two idf expressions cannot drift apart.
    """
    n = max(num_documents, 1)
    df = min(max(document_frequency, 0), n)
    idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
    return max(idf, 0.0) * (params.k1 + 1.0)


def bm25_score(query_terms: Sequence[str],
               term_frequencies: Mapping[str, int],
               document_length: int, stats: CollectionStatistics,
               params: BM25Parameters = BM25Parameters()) -> float:
    """BM25 score of one document against ``query_terms``.

    ``term_frequencies`` maps each query term to its tf in the document.
    """
    score = 0.0
    for term in query_terms:
        score += bm25_term_weight(term_frequencies.get(term, 0),
                                  stats.df(term), document_length,
                                  stats, params)
    return score


def bm25_scores_packed(query_terms: Sequence[str],
                       term_frequencies: Mapping[str, Any],
                       document_lengths: Any,
                       stats: CollectionStatistics,
                       params: BM25Parameters = BM25Parameters()) -> Any:
    """Vectorized :func:`bm25_score` over a batch of candidate documents.

    ``term_frequencies`` maps each query term to an int array of that
    term's tf in every candidate (aligned with ``document_lengths``).
    Returns a float64 array of scores, **bitwise-identical** to calling
    :func:`bm25_score` per candidate: the idf is computed with the same
    scalar ``math.log``, the elementwise float64 arithmetic follows the
    exact evaluation order of :func:`bm25_term_weight` (IEEE-754 ops are
    deterministic), the per-document accumulation preserves the query
    term order, and zero-weight terms are skipped (adding ``0.0`` to a
    non-negative float is exact, so skipping equals adding).

    Requires numpy; callers keep the scalar loop as the fallback.
    """
    if np is None:  # pragma: no cover - vectorized path requires numpy
        raise RuntimeError("bm25_scores_packed requires numpy")
    count = len(document_lengths)
    scores = np.zeros(count, dtype=np.float64)
    if count == 0:
        return scores
    n = max(stats.num_documents, 1)
    avgdl = max(stats.average_document_length, 1e-9)
    k1 = params.k1
    # Same evaluation order as bm25_term_weight's ``normalizer``:
    # k1 * ((1.0 - b) + (b * dl) / avgdl).
    lengths = np.asarray(document_lengths, dtype=np.float64)
    normalizer = k1 * ((1.0 - params.b) + (params.b * lengths) / avgdl)
    k1_plus_1 = k1 + 1.0
    for term in query_terms:
        document_frequency = stats.df(term)
        if document_frequency <= 0:
            continue
        tf = term_frequencies.get(term)
        if tf is None:
            continue
        nonzero = np.nonzero(tf)[0]
        if nonzero.size == 0:
            continue
        idf = math.log(1.0 + (n - document_frequency + 0.5)
                       / (document_frequency + 0.5))
        tf_nz = np.asarray(tf)[nonzero].astype(np.float64)
        # Same order as bm25_term_weight: ((idf * tf) * (k1 + 1)) /
        # (tf + normalizer).  Gathering only tf > 0 rows also keeps the
        # k1 == 0 corner (0 / 0) out of the vector path entirely.
        weights = (idf * tf_nz) * k1_plus_1 / (tf_nz + normalizer[nonzero])
        scores[nonzero] += weights
    return scores


def tf_idf_score(query_terms: Sequence[str],
                 term_frequencies: Mapping[str, int],
                 document_length: int,
                 stats: CollectionStatistics) -> float:
    """Classic lnc-style TF-IDF with length normalization.

    Provided as the "any other function could be used instead" alternative;
    the quality benchmark (E4) can swap it in to show the architecture is
    ranking-model agnostic.
    """
    if document_length <= 0:
        return 0.0
    score = 0.0
    n = max(stats.num_documents, 1)
    for term in query_terms:
        tf = term_frequencies.get(term, 0)
        df = stats.df(term)
        if tf <= 0 or df <= 0:
            continue
        score += (1.0 + math.log(tf)) * math.log(1.0 + n / df)
    return score / math.sqrt(document_length)

"""The analysis pipeline: tokenize -> stopword filter -> stem.

Both the local engines and the distributed index must analyze text the same
way (a key is a combination of *index terms*, so "Retrieval" in a document
and "retrieving" in a query must map to the same term).  The
:class:`Analyzer` is therefore shared by document indexing (L5), key
generation (L3) and query processing (L3).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.ir.stemmer import PorterStemmer
from repro.ir.stopwords import DEFAULT_STOPWORDS
from repro.ir.tokenizer import tokenize

__all__ = ["Analyzer"]


class Analyzer:
    """Configurable text-to-terms pipeline.

    Parameters
    ----------
    stopwords:
        Terms removed after tokenization (compared pre-stemming, as is
        conventional).  Pass an empty set to keep everything.
    stem:
        Whether to apply the Porter stemmer.
    min_term_length:
        Tokens shorter than this are dropped (default 2 — single letters
        carry almost no retrieval signal but inflate the key vocabulary).
    """

    def __init__(self, stopwords: Optional[FrozenSet[str]] = None,
                 stem: bool = True, min_term_length: int = 2):
        if min_term_length < 1:
            raise ValueError(
                f"min_term_length must be >= 1, got {min_term_length}")
        self.stopwords = (DEFAULT_STOPWORDS if stopwords is None
                          else frozenset(stopwords))
        self.min_term_length = min_term_length
        self._stemmer = PorterStemmer() if stem else None
        # Stemming the same vocabulary over and over dominates indexing
        # time, so memoize stems.
        self._stem_cache: dict = {}

    def analyze(self, text: str) -> List[str]:
        """Full pipeline: returns the term sequence for ``text``.

        >>> Analyzer().analyze("The quick brown foxes are running")
        ['quick', 'brown', 'fox', 'run']
        """
        terms = []
        for token in tokenize(text):
            if len(token) < self.min_term_length:
                continue
            if token in self.stopwords:
                continue
            terms.append(self._stem(token))
        return terms

    def analyze_query(self, text: str) -> List[str]:
        """Analyze a query string: same pipeline, duplicates removed.

        Term combinations (keys) are sets, so duplicate query terms would
        only create degenerate lattice nodes.  Order of first occurrence is
        preserved for readability.
        """
        seen = set()
        unique: List[str] = []
        for term in self.analyze(text):
            if term not in seen:
                seen.add(term)
                unique.append(term)
        return unique

    def _stem(self, token: str) -> str:
        if self._stemmer is None:
            return token
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_cache[token] = cached
        return cached

"""Local information-retrieval engine (the paper's Layer 5 substrate).

AlvisP2P attaches a "possibly sophisticated local search engine" to every
peer — the prototype used Terrier.  This package is a from-scratch
replacement offering what the P2P layers need:

* a text analysis pipeline (tokenizer, stopword filter, Porter stemmer),
* a positional in-memory inverted index over a local document store,
* BM25 and TF-IDF scoring (BM25 is the function the paper uses at L4),
* snippet extraction for result presentation, and
* the **Alvis document digest** XML format for integrating external
  engines (Section 4, "Heterogeneity support").
"""

from repro.ir.analysis import Analyzer
from repro.ir.digest import DocumentDigest, parse_digest, render_digest
from repro.ir.documents import Document, DocumentStore
from repro.ir.inverted_index import InvertedIndex
from repro.ir.postings import Posting, PostingList
from repro.ir.scoring import BM25Parameters, CollectionStatistics, bm25_score, tf_idf_score
from repro.ir.search import LocalSearchEngine, SearchResult
from repro.ir.stemmer import PorterStemmer
from repro.ir.stopwords import DEFAULT_STOPWORDS
from repro.ir.tokenizer import tokenize

__all__ = [
    "Analyzer",
    "DocumentDigest",
    "parse_digest",
    "render_digest",
    "Document",
    "DocumentStore",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "BM25Parameters",
    "CollectionStatistics",
    "bm25_score",
    "tf_idf_score",
    "LocalSearchEngine",
    "SearchResult",
    "PorterStemmer",
    "DEFAULT_STOPWORDS",
    "tokenize",
]

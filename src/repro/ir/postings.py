"""Postings and posting lists.

A :class:`Posting` is a document reference with a relevance score — this is
what travels over the network, so its wire size is fixed and small (the
heart of the paper's bounded-bandwidth argument).  A :class:`PostingList`
carries the truncation flag that drives query-lattice pruning: an
*untruncated* list is complete, so every sub-combination of its key is
redundant for the query at hand.

**Packed wire encoding.**  :func:`pack_postings` / :func:`unpack_postings`
are the flat array encoding of a posting list — exactly the layout the
wire codec (:mod:`repro.net.wire`) and the ``wire_size()`` byte model
charge: an 8-byte global df, a 1-byte truncation flag, a 4-byte count,
then 16 bytes (``>Qd``) per posting.  The entry block is produced and
consumed by a numpy-vectorized path (big-endian structured dtype, so
``tobytes()`` is bitwise-identical to the ``struct.pack`` loop) with a
pure-Python fallback; ``REPRO_PURE_PYTHON=1`` pins the fallback.
:class:`PackedPostings` keeps a list in this packed form inside simulator
payloads — same ``wire_size()``, so traffic accounting is byte-identical
whether a payload carries the object or the packed form.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.util.npcompat import np

__all__ = ["Posting", "PostingList", "PackedPostings",
           "POSTING_WIRE_BYTES", "POSTINGS_ENVELOPE_BYTES",
           "pack_postings", "unpack_postings",
           "pack_entries", "unpack_entries"]

#: Wire size of one posting: 8-byte document id + 8-byte score.
POSTING_WIRE_BYTES = 16

#: Fixed posting-list envelope: global df (8) + truncated flag (1) +
#: length prefix (4).
_LIST_ENVELOPE_BYTES = 13

#: Public name for the envelope size (the packed layout's fixed prefix).
POSTINGS_ENVELOPE_BYTES = _LIST_ENVELOPE_BYTES

_ENVELOPE_STRUCT = struct.Struct(">QBI")
_POSTING_STRUCT = struct.Struct(">Qd")

#: When true, :meth:`PostingList._from_canonical` routes through the
#: full sort-and-dedup constructor, pinning the pre-optimisation CPU
#: path.  Flipped by ``AlvisNetwork`` when ``kernel_profile="legacy"``
#: for A/B benchmarking; both paths build identical lists, so this is a
#: timing knob, never a semantic one.  Process-wide: the most recently
#: constructed network wins.
_legacy_construction = False


def set_legacy_construction(enabled: bool) -> None:
    """Pin (or unpin) the pre-optimisation list-construction path.

    Called by ``AlvisNetwork`` according to its ``kernel_profile``.
    """
    global _legacy_construction
    _legacy_construction = bool(enabled)

#: Big-endian structured dtype matching ``>Qd`` per posting: ``tobytes()``
#: of an array with this dtype equals the concatenated ``struct.pack``
#: output byte for byte, which is what keeps the vectorized path
#: bitwise-identical to the pure-Python one.
_PACKED_DTYPE = (np.dtype([("doc_id", ">u8"), ("score", ">f8")])
                 if np is not None else None)


@dataclass(frozen=True)
class Posting:
    """A scored document reference."""

    doc_id: int
    score: float

    def wire_size(self) -> int:
        """Bytes this posting occupies in a message payload."""
        return POSTING_WIRE_BYTES


class PostingList:
    """A (possibly truncated) list of postings for one key.

    Invariants maintained by construction:

    * entries are sorted by descending score (ties broken by ascending
      document id, so ordering is total and deterministic);
    * document ids are unique;
    * ``global_df`` is the *untruncated* result-set size; ``truncated`` is
      true iff ``len(entries) < global_df``.
    """

    __slots__ = ("entries", "global_df")

    def __init__(self, entries: Optional[Iterable[Posting]] = None,
                 global_df: Optional[int] = None):
        ordered = sorted(entries or [],
                         key=lambda posting: (-posting.score, posting.doc_id))
        deduped: List[Posting] = []
        seen = set()
        for posting in ordered:
            if posting.doc_id not in seen:
                seen.add(posting.doc_id)
                deduped.append(posting)
        self.entries: List[Posting] = deduped
        self.global_df: int = (len(deduped) if global_df is None
                               else int(global_df))
        if self.global_df < len(self.entries):
            raise ValueError(
                f"global_df {self.global_df} smaller than stored entries "
                f"{len(self.entries)}")

    @classmethod
    def _from_canonical(cls, entries: Sequence[Posting],
                        global_df: int) -> "PostingList":
        """Build from entries already in canonical form.

        Callers must guarantee the invariants the public constructor
        enforces: sorted by ``(-score, doc_id)`` with unique document
        ids.  Every internal producer of such entries (``truncate``,
        ``merge``, slices of an existing list) re-enters construction
        through here, skipping the redundant sort-and-dedup pass that
        dominated indexing-phase profiles at 10k peers.  Under the
        legacy kernel profile the full constructor runs instead
        (identical output — the entries are already canonical).
        """
        if _legacy_construction:
            return cls(entries, global_df=global_df)
        plist = cls.__new__(cls)
        plist.entries = list(entries)
        plist.global_df = int(global_df)
        if plist.global_df < len(plist.entries):
            raise ValueError(
                f"global_df {plist.global_df} smaller than stored "
                f"entries {len(plist.entries)}")
        return plist

    # ------------------------------------------------------------------

    @property
    def truncated(self) -> bool:
        """True when the stored entries are a strict prefix of the result."""
        return len(self.entries) < self.global_df

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def doc_ids(self) -> List[int]:
        """Document ids in rank order."""
        return [posting.doc_id for posting in self.entries]

    def wire_size(self) -> int:
        """Bytes the list occupies in a message payload.

        Constant-bounded for truncated lists — the property that makes
        AlvisP2P retrieval traffic independent of collection size.
        """
        return _LIST_ENVELOPE_BYTES + POSTING_WIRE_BYTES * len(self.entries)

    # ------------------------------------------------------------------

    def truncate(self, k: int) -> "PostingList":
        """Return a copy keeping only the top ``k`` entries.

        ``global_df`` is preserved, so the copy knows it is truncated.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return PostingList._from_canonical(self.entries[:k],
                                           self.global_df)

    @staticmethod
    def from_scores(doc_ids: Sequence[int], scores: Sequence[float],
                    global_df: Optional[int] = None,
                    limit: Optional[int] = None) -> "PostingList":
        """Build a (possibly truncated) list from parallel id/score arrays.

        The packed complement of building one :class:`Posting` per
        candidate and calling :meth:`truncate`: with a ``limit``, only
        the top entries by ``(-score, doc_id)`` are materialized as
        ``Posting`` objects — the owner-side publish path scores every
        matching document but ships ``k`` of them, so skipping the other
        allocations is the win.  Accepts plain sequences or numpy
        arrays; the result is identical to the build-all-then-truncate
        construction.
        """
        count = len(doc_ids)
        resolved_df = count if global_df is None else int(global_df)
        if limit is not None and limit < count:
            top = heapq.nsmallest(
                limit, range(count),
                key=lambda index: (-scores[index], doc_ids[index]))
            entries = [Posting(int(doc_ids[index]), float(scores[index]))
                       for index in top]
        else:
            entries = [Posting(int(doc_id), float(score))
                       for doc_id, score in zip(doc_ids, scores)]
        return PostingList(entries, global_df=resolved_df)

    def merge(self, other: "PostingList",
              limit: Optional[int] = None) -> "PostingList":
        """Merge two lists (max score wins on duplicate ids).

        ``global_df`` of the merge is a lower bound: the true union size is
        unknown without full lists, so we take the max of the inputs and the
        merged length — sufficient for the aggregation protocol, which
        sums *contributing* dfs separately.
        """
        if not _legacy_construction and (not self.entries
                                         or not other.entries):
            # One side empty (the first contribution to a key, most of
            # the index-construction merges): the union is the other
            # side, already canonical.
            source = other if not self.entries else self
            merged = (source.entries[:limit] if limit is not None
                      else source.entries)
            global_df = max(self.global_df, other.global_df,
                            len(source.entries))
            return PostingList._from_canonical(merged, global_df)
        if _legacy_construction:
            by_id = {}
            for posting in list(self.entries) + list(other.entries):
                existing = by_id.get(posting.doc_id)
                if existing is None or posting.score > existing.score:
                    by_id[posting.doc_id] = posting
            merged = sorted(by_id.values(),
                            key=lambda posting: (-posting.score,
                                                 posting.doc_id))
            if limit is not None:
                merged = merged[:limit]
            global_df = max(self.global_df, other.global_df, len(by_id))
            return PostingList(merged, global_df=global_df)
        # Both sides are canonical runs, so this sort is a linear
        # two-run merge (Timsort galloping); in canonical order the
        # first occurrence of a doc id carries its max score, so
        # keep-first dedup implements max-score-wins.
        ordered = sorted(self.entries + other.entries,
                         key=lambda posting: (-posting.score,
                                              posting.doc_id))
        merged = []
        seen = set()
        for posting in ordered:
            if posting.doc_id not in seen:
                seen.add(posting.doc_id)
                merged.append(posting)
        if limit is not None:
            merged = merged[:limit]
        global_df = max(self.global_df, other.global_df, len(seen))
        return PostingList._from_canonical(merged, global_df)

    @staticmethod
    def union(lists: Iterable["PostingList"],
              limit: Optional[int] = None) -> "PostingList":
        """Union of many lists (max score per document)."""
        result = PostingList()
        for posting_list in lists:
            result = result.merge(posting_list, limit=None)
        if limit is not None:
            result = PostingList._from_canonical(result.entries[:limit],
                                                 result.global_df)
        return result

    def __repr__(self) -> str:
        flag = "truncated" if self.truncated else "complete"
        return (f"PostingList({len(self.entries)}/{self.global_df} "
                f"{flag})")


# ----------------------------------------------------------------------
# Packed wire encoding
# ----------------------------------------------------------------------

def _pack_entries_python(entries: Sequence[Posting]) -> bytes:
    """Reference entry-block encoder: one ``>Qd`` struct per posting."""
    pack = _POSTING_STRUCT.pack
    return b"".join(pack(int(posting.doc_id), float(posting.score))
                    for posting in entries)


def _pack_entries_numpy(entries: Sequence[Posting]) -> bytes:
    """Vectorized entry-block encoder (bitwise-identical to the
    reference: the big-endian structured dtype serializes each row as
    exactly ``struct.pack(">Qd", doc_id, score)``)."""
    array = np.empty(len(entries), dtype=_PACKED_DTYPE)
    array["doc_id"] = [posting.doc_id for posting in entries]
    array["score"] = [posting.score for posting in entries]
    return array.tobytes()


def _unpack_entries_python(data: bytes, offset: int,
                           count: int) -> List[Posting]:
    """Reference entry-block decoder."""
    end = offset + count * POSTING_WIRE_BYTES
    if end > len(data):
        raise ValueError(
            f"packed postings truncated: need {end - offset} bytes at "
            f"offset {offset}, have {len(data) - offset}")
    unpack = _POSTING_STRUCT.unpack_from
    return [Posting(*unpack(data, position))
            for position in range(offset, end, POSTING_WIRE_BYTES)]


def _unpack_entries_numpy(data: bytes, offset: int,
                          count: int) -> List[Posting]:
    """Vectorized entry-block decoder (one ``frombuffer``, no per-entry
    parsing; values round-trip to the exact Python ints/floats the
    reference decoder produces)."""
    if offset + count * POSTING_WIRE_BYTES > len(data):
        raise ValueError(
            f"packed postings truncated: need "
            f"{count * POSTING_WIRE_BYTES} bytes at offset {offset}, "
            f"have {len(data) - offset}")
    array = np.frombuffer(data, dtype=_PACKED_DTYPE, count=count,
                          offset=offset)
    return [Posting(doc_id, score)
            for doc_id, score in zip(array["doc_id"].tolist(),
                                     array["score"].tolist())]


def pack_entries(entries: Sequence[Posting]) -> bytes:
    """Encode postings as the flat 16-byte-per-entry block."""
    if np is not None and len(entries) >= 8:
        return _pack_entries_numpy(entries)
    return _pack_entries_python(entries)


def unpack_entries(data: bytes, offset: int, count: int) -> List[Posting]:
    """Decode ``count`` postings from ``data`` at ``offset``.

    Raises :class:`ValueError` when the buffer is too short.
    """
    if np is not None and count >= 8:
        return _unpack_entries_numpy(data, offset, count)
    return _unpack_entries_python(data, offset, count)


def pack_postings(postings: "PostingList") -> bytes:
    """Encode a posting list into its full packed layout.

    Envelope (global df, truncation flag, count) followed by the entry
    block; ``len(pack_postings(p)) == p.wire_size()`` always.
    """
    return (_ENVELOPE_STRUCT.pack(int(postings.global_df),
                                  1 if postings.truncated else 0,
                                  len(postings.entries))
            + pack_entries(postings.entries))


def unpack_postings(data: bytes,
                    offset: int = 0) -> Tuple["PostingList", int]:
    """Decode one packed posting list; returns ``(list, next_offset)``.

    Tolerates an untruncated flag with ``global_df > len(entries)`` the
    way the wire codec does — ``global_df`` already encodes truncation,
    so the flag is advisory.  Raises :class:`ValueError` on a short
    buffer (the wire codec maps it to ``TruncatedDatagramError``).
    """
    if offset + _LIST_ENVELOPE_BYTES > len(data):
        raise ValueError(
            f"packed postings truncated: need the {_LIST_ENVELOPE_BYTES}"
            f"-byte envelope at offset {offset}, have "
            f"{len(data) - offset}")
    global_df, _truncated_flag, count = _ENVELOPE_STRUCT.unpack_from(
        data, offset)
    entries = unpack_entries(data, offset + _LIST_ENVELOPE_BYTES, count)
    posting_list = PostingList(entries,
                               global_df=max(global_df, len(entries)))
    next_offset = (offset + _LIST_ENVELOPE_BYTES
                   + count * POSTING_WIRE_BYTES)
    return posting_list, next_offset


class PackedPostings:
    """A posting list in its packed wire form, materialized lazily.

    The simulator's indexing-phase payloads (HDK publish, incremental
    publish, churn handover) can carry this instead of a
    :class:`PostingList`: ``wire_size()`` is identical by construction,
    so the byte accounting cannot tell the two apart, while the packed
    form is exactly what a real deployment would put on the wire.

    Packing is deferred: the byte block's *size* follows from the entry
    count alone, so a simulated delivery (which hands the object across
    by reference and only ever asks for its size) never pays for the
    encode.  Reading :attr:`data` — the real wire codec, the UDP
    transport, the round-trip tests — materializes and caches the exact
    bytes :func:`pack_postings` would produce.
    """

    __slots__ = ("_data", "_entries", "global_df", "count")

    def __init__(self, data: bytes, global_df: int, count: int):
        self._data = data
        self._entries: Optional[Sequence[Posting]] = None
        self.global_df = int(global_df)
        self.count = int(count)

    @classmethod
    def from_list(cls, postings: "PostingList") -> "PackedPostings":
        """Wrap a posting list (the sender-side conversion); lazy."""
        packed = cls.__new__(cls)
        packed._data = None
        packed._entries = postings.entries
        packed.global_df = int(postings.global_df)
        packed.count = len(postings.entries)
        return packed

    @property
    def data(self) -> bytes:
        """The packed bytes (encoded on first access, then cached)."""
        if self._data is None:
            self._data = (_ENVELOPE_STRUCT.pack(
                self.global_df, 1 if self.truncated else 0, self.count)
                + pack_entries(self._entries))
        return self._data

    def to_posting_list(self) -> "PostingList":
        """Unpack back into an object posting list (receiver side)."""
        if self._entries is not None:
            # Entries came straight from a PostingList, so they already
            # satisfy the canonical invariants the decode path enforces.
            return PostingList._from_canonical(
                self._entries,
                max(self.global_df, len(self._entries)))
        posting_list, _next_offset = unpack_postings(self._data)
        return posting_list

    @property
    def truncated(self) -> bool:
        return self.count < self.global_df

    def __len__(self) -> int:
        return self.count

    def wire_size(self) -> int:
        """Identical to the equivalent ``PostingList.wire_size()``."""
        return _LIST_ENVELOPE_BYTES + POSTING_WIRE_BYTES * self.count

    def __repr__(self) -> str:
        flag = "truncated" if self.truncated else "complete"
        return (f"PackedPostings({self.count}/{self.global_df} {flag}, "
                f"{self.wire_size()}B)")

"""Postings and posting lists.

A :class:`Posting` is a document reference with a relevance score — this is
what travels over the network, so its wire size is fixed and small (the
heart of the paper's bounded-bandwidth argument).  A :class:`PostingList`
carries the truncation flag that drives query-lattice pruning: an
*untruncated* list is complete, so every sub-combination of its key is
redundant for the query at hand.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Posting", "PostingList", "POSTING_WIRE_BYTES"]

#: Wire size of one posting: 8-byte document id + 8-byte score.
POSTING_WIRE_BYTES = 16

#: Fixed posting-list envelope: global df (8) + truncated flag (1) +
#: length prefix (4).
_LIST_ENVELOPE_BYTES = 13


@dataclass(frozen=True)
class Posting:
    """A scored document reference."""

    doc_id: int
    score: float

    def wire_size(self) -> int:
        """Bytes this posting occupies in a message payload."""
        return POSTING_WIRE_BYTES


class PostingList:
    """A (possibly truncated) list of postings for one key.

    Invariants maintained by construction:

    * entries are sorted by descending score (ties broken by ascending
      document id, so ordering is total and deterministic);
    * document ids are unique;
    * ``global_df`` is the *untruncated* result-set size; ``truncated`` is
      true iff ``len(entries) < global_df``.
    """

    __slots__ = ("entries", "global_df")

    def __init__(self, entries: Optional[Iterable[Posting]] = None,
                 global_df: Optional[int] = None):
        ordered = sorted(entries or [],
                         key=lambda posting: (-posting.score, posting.doc_id))
        deduped: List[Posting] = []
        seen = set()
        for posting in ordered:
            if posting.doc_id not in seen:
                seen.add(posting.doc_id)
                deduped.append(posting)
        self.entries: List[Posting] = deduped
        self.global_df: int = (len(deduped) if global_df is None
                               else int(global_df))
        if self.global_df < len(self.entries):
            raise ValueError(
                f"global_df {self.global_df} smaller than stored entries "
                f"{len(self.entries)}")

    # ------------------------------------------------------------------

    @property
    def truncated(self) -> bool:
        """True when the stored entries are a strict prefix of the result."""
        return len(self.entries) < self.global_df

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def doc_ids(self) -> List[int]:
        """Document ids in rank order."""
        return [posting.doc_id for posting in self.entries]

    def wire_size(self) -> int:
        """Bytes the list occupies in a message payload.

        Constant-bounded for truncated lists — the property that makes
        AlvisP2P retrieval traffic independent of collection size.
        """
        return _LIST_ENVELOPE_BYTES + POSTING_WIRE_BYTES * len(self.entries)

    # ------------------------------------------------------------------

    def truncate(self, k: int) -> "PostingList":
        """Return a copy keeping only the top ``k`` entries.

        ``global_df`` is preserved, so the copy knows it is truncated.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        clone = PostingList(self.entries[:k], global_df=self.global_df)
        return clone

    @staticmethod
    def from_scores(doc_ids: Sequence[int], scores: Sequence[float],
                    global_df: Optional[int] = None,
                    limit: Optional[int] = None) -> "PostingList":
        """Build a (possibly truncated) list from parallel id/score arrays.

        The packed complement of building one :class:`Posting` per
        candidate and calling :meth:`truncate`: with a ``limit``, only
        the top entries by ``(-score, doc_id)`` are materialized as
        ``Posting`` objects — the owner-side publish path scores every
        matching document but ships ``k`` of them, so skipping the other
        allocations is the win.  Accepts plain sequences or numpy
        arrays; the result is identical to the build-all-then-truncate
        construction.
        """
        count = len(doc_ids)
        resolved_df = count if global_df is None else int(global_df)
        if limit is not None and limit < count:
            top = heapq.nsmallest(
                limit, range(count),
                key=lambda index: (-scores[index], doc_ids[index]))
            entries = [Posting(int(doc_ids[index]), float(scores[index]))
                       for index in top]
        else:
            entries = [Posting(int(doc_id), float(score))
                       for doc_id, score in zip(doc_ids, scores)]
        return PostingList(entries, global_df=resolved_df)

    def merge(self, other: "PostingList",
              limit: Optional[int] = None) -> "PostingList":
        """Merge two lists (max score wins on duplicate ids).

        ``global_df`` of the merge is a lower bound: the true union size is
        unknown without full lists, so we take the max of the inputs and the
        merged length — sufficient for the aggregation protocol, which
        sums *contributing* dfs separately.
        """
        by_id = {}
        for posting in list(self.entries) + list(other.entries):
            existing = by_id.get(posting.doc_id)
            if existing is None or posting.score > existing.score:
                by_id[posting.doc_id] = posting
        merged = sorted(by_id.values(),
                        key=lambda posting: (-posting.score, posting.doc_id))
        if limit is not None:
            merged = merged[:limit]
        global_df = max(self.global_df, other.global_df, len(by_id))
        return PostingList(merged, global_df=global_df)

    @staticmethod
    def union(lists: Iterable["PostingList"],
              limit: Optional[int] = None) -> "PostingList":
        """Union of many lists (max score per document)."""
        result = PostingList()
        for posting_list in lists:
            result = result.merge(posting_list, limit=None)
        if limit is not None:
            result = PostingList(result.entries[:limit],
                                 global_df=result.global_df)
        return result

    def __repr__(self) -> str:
        flag = "truncated" if self.truncated else "complete"
        return (f"PostingList({len(self.entries)}/{self.global_df} "
                f"{flag})")

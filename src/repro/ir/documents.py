"""Documents and the per-peer document store.

Every document lives at exactly one peer (the paper: "local documents
always remain at the peer that holds them"); the global index only carries
*references* (document ids plus scores).  Global document ids are integers
so a posting costs a constant number of bytes on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Document", "DocumentStore"]


@dataclass
class Document:
    """One retrievable document.

    ``doc_id`` is globally unique (assigned by the network facade as
    ``peer_index * DOC_ID_STRIDE + local sequence``).  ``url`` follows the
    paper's addressing scheme ``http://PeerIP:Port/SharedDir/DocumentName``.
    """

    doc_id: int
    title: str
    text: str
    url: str = ""
    owner_peer: int = -1
    access: str = "public"  #: "public" or "protected" (see repro.core.access)

    def length_terms(self, analyzer) -> int:
        """Number of index terms in the document body (after analysis)."""
        return len(analyzer.analyze(self.text))


class DocumentStore:
    """The shared-directory contents of one peer."""

    def __init__(self):
        self._documents: Dict[int, Document] = {}

    def add(self, document: Document) -> None:
        """Register a document; rejects duplicate ids."""
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate document id {document.doc_id}")
        self._documents[document.doc_id] = document

    def remove(self, doc_id: int) -> Document:
        """Remove and return a document (KeyError if absent)."""
        return self._documents.pop(doc_id)

    def get(self, doc_id: int) -> Optional[Document]:
        """Return the document or ``None``."""
        return self._documents.get(doc_id)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def ids(self) -> List[int]:
        """All stored document ids."""
        return list(self._documents.keys())

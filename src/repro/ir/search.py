"""The local search engine attached to each peer (Layer 5).

Offers the generic API the paper describes: index local documents, answer
term-combination scoring requests from the P2P layers, and answer full
queries locally (the second, "refinement" step of the two-step retrieval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document, DocumentStore
from repro.ir.inverted_index import InvertedIndex
from repro.ir.postings import PostingList
from repro.ir.scoring import (
    BM25Parameters,
    CollectionStatistics,
    bm25_score,
    bm25_scores_packed,
)
from repro.util.npcompat import np

__all__ = ["SearchResult", "LocalSearchEngine"]

#: Number of words of context on each side of a snippet match.
_SNIPPET_CONTEXT_WORDS = 6


@dataclass
class SearchResult:
    """One ranked result, mirroring the fields of the client GUI (Fig. 5):
    hosting-peer URL, title, snippet and relevance score."""

    doc_id: int
    score: float
    title: str
    snippet: str
    url: str
    owner_peer: int


class LocalSearchEngine:
    """Per-peer engine: document store + positional index + BM25."""

    def __init__(self, analyzer: Optional[Analyzer] = None,
                 bm25: BM25Parameters = BM25Parameters()):
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.store = DocumentStore()
        self.index = InvertedIndex()
        self.bm25 = bm25

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def add_document(self, document: Document) -> None:
        """Index one document into the local engine."""
        self.store.add(document)
        terms = self.analyzer.analyze(document.text)
        self.index.add_document(document.doc_id, terms)

    def remove_document(self, doc_id: int) -> Document:
        """Remove a document from store and index."""
        self.index.remove_document(doc_id)
        return self.store.remove(doc_id)

    @property
    def num_documents(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    # Statistics (exported to the global statistics service)
    # ------------------------------------------------------------------

    def local_statistics(self) -> CollectionStatistics:
        """BM25 statistics over the local collection only."""
        return CollectionStatistics(
            num_documents=self.index.num_documents,
            average_document_length=self.index.average_document_length,
            document_frequencies=self.index.document_frequency,
        )

    # ------------------------------------------------------------------
    # Scoring services used by the distributed index (L3)
    # ------------------------------------------------------------------

    def score_document(self, doc_id: int, terms: Sequence[str],
                       stats: Optional[CollectionStatistics] = None) -> float:
        """BM25 score of one local document for a term combination."""
        if stats is None:
            stats = self.local_statistics()
        term_frequencies = {term: self.index.term_frequency(term, doc_id)
                            for term in terms}
        return bm25_score(terms, term_frequencies,
                          self.index.document_length(doc_id), stats,
                          self.bm25)

    def score_documents(self, doc_ids: Sequence[int],
                        terms: Sequence[str],
                        stats: Optional[CollectionStatistics] = None
                        ) -> List[float]:
        """Bulk BM25: scores aligned with ``doc_ids``.

        Vectorized over the index's packed posting arrays when numpy is
        available, with results bitwise-identical to calling
        :meth:`score_document` per document (asserted by tests); the
        scalar loop is the always-available fallback.
        """
        if stats is None:
            stats = self.local_statistics()
        if np is None or len(doc_ids) < 2:
            return [self.score_document(doc_id, terms, stats)
                    for doc_id in doc_ids]
        index = self.index
        ids = np.asarray(doc_ids, dtype=np.int64)
        all_ids, all_lengths = index.packed_doc_lengths()
        position = np.searchsorted(all_ids, ids)
        # Callers only pass indexed documents (score_document would
        # KeyError otherwise), so the gather is exact.
        lengths = all_lengths[position]
        term_frequencies = {}
        for term in terms:
            if term in term_frequencies:
                continue
            packed = index.packed_postings(term)
            if packed is None:
                continue
            term_ids, term_tfs = packed
            slot = np.searchsorted(term_ids, ids)
            slot_clipped = np.minimum(slot, len(term_ids) - 1)
            tf = np.where(term_ids[slot_clipped] == ids,
                          term_tfs[slot_clipped], 0)
            term_frequencies[term] = tf
        scores = bm25_scores_packed(terms, term_frequencies, lengths,
                                    stats, self.bm25)
        return scores.tolist()

    def top_k_for_key(self, terms: Sequence[str], k: int,
                      stats: Optional[CollectionStatistics] = None
                      ) -> PostingList:
        """Local top-``k`` postings for a key (conjunctive semantics).

        This is the primitive both indexing strategies are built on: HDK
        calls it when publishing keys; QDI calls it during on-demand
        indexing.  The returned list's ``global_df`` is the *local* df; the
        key's responsible peer aggregates dfs across contributors.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        matching = sorted(self.index.documents_with_all(terms))
        scores = self.score_documents(matching, terms, stats)
        return PostingList.from_scores(matching, scores,
                                       global_df=len(matching), limit=k)

    # ------------------------------------------------------------------
    # Local querying (Layer 5 front end + two-step refinement)
    # ------------------------------------------------------------------

    def search(self, query: str, k: int = 10,
               stats: Optional[CollectionStatistics] = None
               ) -> List[SearchResult]:
        """Rank local documents for ``query`` (disjunctive BM25).

        Used both as the standalone local engine and as the refinement
        step when remote peers forward a query to the document holder.
        """
        terms = self.analyzer.analyze_query(query)
        if not terms:
            return []
        if stats is None:
            stats = self.local_statistics()
        candidates = set()
        for term in terms:
            candidates |= self.index.documents_with_term(term)
        ordered = sorted(candidates)
        scores = self.score_documents(ordered, terms, stats)
        scored = sorted(zip(scores, ordered),
                        key=lambda pair: (-pair[0], pair[1]))
        results = []
        for score, doc_id in scored[:k]:
            document = self.store.get(doc_id)
            assert document is not None
            results.append(SearchResult(
                doc_id=doc_id, score=score, title=document.title,
                snippet=self.make_snippet(document, terms),
                url=document.url, owner_peer=document.owner_peer))
        return results

    def structured_search(self, query: str, k: int = 10,
                          stats: Optional[CollectionStatistics] = None
                          ) -> List[SearchResult]:
        """Boolean/phrase search ("complex structured queries", §3).

        Parses ``query`` with :mod:`repro.ir.query_language`, evaluates
        the boolean/phrase semantics against the positional index, and
        ranks the matching documents by BM25 over the query's positive
        terms.  Raises :class:`QuerySyntaxError` on malformed input.
        """
        from repro.ir.query_language import evaluate, parse_query
        node = parse_query(query, self.analyzer)
        matching = evaluate(node, self.index)
        ranking_terms = list(dict.fromkeys(node.positive_terms()))
        if stats is None:
            stats = self.local_statistics()
        ordered = sorted(matching)
        if ranking_terms:
            scores = self.score_documents(ordered, ranking_terms, stats)
        else:
            scores = [0.0] * len(ordered)
        scored = sorted(zip(scores, ordered),
                        key=lambda pair: (-pair[0], pair[1]))
        results = []
        for score, doc_id in scored[:k]:
            document = self.store.get(doc_id)
            assert document is not None
            results.append(SearchResult(
                doc_id=doc_id, score=score, title=document.title,
                snippet=self.make_snippet(document, ranking_terms),
                url=document.url, owner_peer=document.owner_peer))
        return results

    def make_snippet(self, document: Document, terms: Sequence[str],
                     highlight: bool = False) -> str:
        """Extract a short text window around the densest term match.

        With ``highlight=True``, words whose analyzed form matches a
        query term are wrapped in ``**…**`` (what the GUI renders in
        bold in Figure 5).
        """
        words = document.text.split()
        if not words:
            return ""
        term_set = set(terms)
        best_index = 0
        best_hits = -1
        window = 2 * _SNIPPET_CONTEXT_WORDS
        analyzed = [self.analyzer.analyze(word) for word in words]
        flat = [parts[0] if parts else "" for parts in analyzed]
        for start in range(0, max(1, len(words) - window)):
            hits = sum(1 for token in flat[start:start + window]
                       if token in term_set)
            if hits > best_hits:
                best_hits = hits
                best_index = start
        selected = words[best_index:best_index + window]
        if highlight:
            selected = [
                f"**{word}**"
                if flat[best_index + offset] in term_set else word
                for offset, word in enumerate(selected)]
        prefix = "..." if best_index > 0 else ""
        suffix = "..." if best_index + window < len(words) else ""
        return f"{prefix}{' '.join(selected)}{suffix}"

"""English stopword list.

Stopword removal matters doubly in AlvisP2P: besides the usual retrieval
quality argument, stopwords are exactly the terms whose posting lists are
largest, i.e. the ones that make single-term P2P indexes unscalable.  The
HDK approach additionally neutralizes remaining frequent terms through key
expansion, but dropping classic stopwords first keeps the key vocabulary
sane.

The list below is the classic SMART-derived short list used by many IR
systems.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["DEFAULT_STOPWORDS"]

DEFAULT_STOPWORDS: FrozenSet[str] = frozenset("""
a about above after again against all am an and any are aren as at be
because been before being below between both but by can cannot could
couldn did didn do does doesn doing don down during each few for from
further had hadn has hasn have haven having he her here hers herself him
himself his how i if in into is isn it its itself just me more most mustn
my myself no nor not now of off on once only or other our ours ourselves
out over own same shan she should shouldn so some such than that the their
theirs them themselves then there these they this those through to too
under until up very was wasn we were weren what when where which while who
whom why will with won would wouldn you your yours yourself yourselves
""".split())

"""Positional in-memory inverted index (per peer).

Besides classic term -> postings lookups, the index supports the two
operations the distributed layers are built on:

* conjunctive matching (documents containing *all* terms of a key), and
* proximity-constrained co-occurrence queries, which the HDK indexer uses
  to enumerate expansion candidates ("terms appearing within a window of w
  positions of an existing key occurrence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.util.npcompat import np

__all__ = ["TermOccurrences", "InvertedIndex"]


@dataclass
class TermOccurrences:
    """Occurrences of one term in one document."""

    doc_id: int
    positions: Tuple[int, ...]

    @property
    def term_frequency(self) -> int:
        return len(self.positions)


class InvertedIndex:
    """Maps terms to per-document positional occurrence lists."""

    def __init__(self):
        self._postings: Dict[str, Dict[int, Tuple[int, ...]]] = {}
        self._doc_lengths: Dict[int, int] = {}
        # Forward index (doc -> analyzed term sequence); costs memory but
        # makes proximity expansion O(window) instead of O(vocabulary).
        self._forward: Dict[int, Tuple[str, ...]] = {}
        # Packed-array caches for the vectorized BM25 path (term ->
        # parallel sorted (doc_ids, tfs) arrays; plus the doc-length
        # arrays).  Invalidated wholesale on any index mutation.
        self._packed: Dict[str, Tuple[Any, Any]] = {}
        self._packed_lengths: Optional[Tuple[Any, Any]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_document(self, doc_id: int, terms: Sequence[str]) -> None:
        """Index an analyzed document (term sequence with positions)."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id} already indexed")
        self._doc_lengths[doc_id] = len(terms)
        self._forward[doc_id] = tuple(terms)
        positions_by_term: Dict[str, List[int]] = {}
        for position, term in enumerate(terms):
            positions_by_term.setdefault(term, []).append(position)
        for term, positions in positions_by_term.items():
            self._postings.setdefault(term, {})[doc_id] = tuple(positions)
        self._invalidate_packed()

    def remove_document(self, doc_id: int) -> None:
        """Remove a document from every posting list it appears in."""
        if doc_id not in self._doc_lengths:
            raise KeyError(f"document {doc_id} not indexed")
        del self._doc_lengths[doc_id]
        del self._forward[doc_id]
        empty_terms = []
        for term, docs in self._postings.items():
            docs.pop(doc_id, None)
            if not docs:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        self._invalidate_packed()

    def _invalidate_packed(self) -> None:
        if self._packed:
            self._packed.clear()
        self._packed_lengths = None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def total_terms(self) -> int:
        """Total number of term occurrences across all documents."""
        return sum(self._doc_lengths.values())

    @property
    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self.total_terms / len(self._doc_lengths)

    def document_length(self, doc_id: int) -> int:
        """Length (in terms) of one document."""
        return self._doc_lengths[doc_id]

    def document_ids(self) -> List[int]:
        return list(self._doc_lengths.keys())

    def vocabulary(self) -> List[str]:
        """All indexed terms."""
        return list(self._postings.keys())

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of local documents containing ``term``."""
        docs = self._postings.get(term)
        return len(docs) if docs else 0

    def term_frequency(self, term: str, doc_id: int) -> int:
        """Occurrences of ``term`` in ``doc_id`` (0 if absent)."""
        docs = self._postings.get(term)
        if not docs:
            return 0
        positions = docs.get(doc_id)
        return len(positions) if positions else 0

    # ------------------------------------------------------------------
    # Packed arrays (vectorized BM25 support; requires numpy)
    # ------------------------------------------------------------------

    def packed_postings(self, term: str) -> Optional[Tuple[Any, Any]]:
        """Parallel ``(doc_ids, tfs)`` int64 arrays for ``term``.

        Document ids are sorted ascending, so lookups against arbitrary
        id arrays are one ``searchsorted`` gather.  Cached until the
        next index mutation; ``None`` when the term is absent (or numpy
        is unavailable — callers use the scalar path then).
        """
        if np is None:
            return None
        cached = self._packed.get(term)
        if cached is None:
            docs = self._postings.get(term)
            if not docs:
                return None
            count = len(docs)
            doc_ids = np.fromiter(sorted(docs), dtype=np.int64,
                                  count=count)
            tfs = np.fromiter((len(docs[doc_id])
                               for doc_id in doc_ids.tolist()),
                              dtype=np.int64, count=count)
            cached = (doc_ids, tfs)
            self._packed[term] = cached
        return cached

    def packed_doc_lengths(self) -> Optional[Tuple[Any, Any]]:
        """Parallel ``(doc_ids, lengths)`` int64 arrays over all docs."""
        if np is None:
            return None
        if self._packed_lengths is None:
            count = len(self._doc_lengths)
            doc_ids = np.fromiter(sorted(self._doc_lengths),
                                  dtype=np.int64, count=count)
            lengths = np.fromiter((self._doc_lengths[doc_id]
                                   for doc_id in doc_ids.tolist()),
                                  dtype=np.int64, count=count)
            self._packed_lengths = (doc_ids, lengths)
        return self._packed_lengths

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def occurrences(self, term: str) -> List[TermOccurrences]:
        """All occurrences of ``term``, one entry per document."""
        docs = self._postings.get(term, {})
        return [TermOccurrences(doc_id, positions)
                for doc_id, positions in docs.items()]

    def documents_with_term(self, term: str) -> Set[int]:
        """Ids of documents containing ``term``."""
        return set(self._postings.get(term, {}).keys())

    def documents_with_all(self, terms: Iterable[str]) -> Set[int]:
        """Conjunctive match: documents containing every term.

        Intersects smallest-first for speed; an unknown term short-circuits
        to the empty set.
        """
        term_list = list(terms)
        if not term_list:
            return set()
        doc_maps = []
        for term in term_list:
            docs = self._postings.get(term)
            if not docs:
                return set()
            doc_maps.append(docs)
        doc_maps.sort(key=len)
        result = set(doc_maps[0].keys())
        for docs in doc_maps[1:]:
            result &= docs.keys()
            if not result:
                break
        return result

    def key_document_frequency(self, terms: Iterable[str]) -> int:
        """Local df of a term combination (conjunctive)."""
        return len(self.documents_with_all(terms))

    # ------------------------------------------------------------------
    # Proximity support for HDK expansion
    # ------------------------------------------------------------------

    def cooccurring_terms(self, terms: Sequence[str], window: int,
                          doc_ids: Optional[Iterable[int]] = None
                          ) -> Dict[str, int]:
        """Expansion candidates for the key ``terms``.

        Returns ``{candidate_term: local_df}`` for terms that occur within
        ``window`` positions of *some* occurrence of each key term, in the
        documents matching the key (or in ``doc_ids`` when given).  The key
        terms themselves are excluded.

        This realizes the HDK rule that expansions must be *proximity
        relevant*: combining terms that never appear near each other would
        index combinations no user queries for, inflating the key set.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        matching = (set(doc_ids) if doc_ids is not None
                    else self.documents_with_all(terms))
        if not matching:
            return {}
        key_terms = set(terms)
        candidates: Dict[str, Set[int]] = {}
        if np is not None and terms:
            # Vectorized proximity windows: per document, mark
            # ``[p - w, p + w]`` around every key-term occurrence with
            # slice assignment and AND the per-term masks.  Positions
            # past the end of the document fall off the mask exactly as
            # ``_terms_at_positions`` drops them on the scalar path
            # below, which stays the REPRO_PURE_PYTHON=1 reference —
            # both yield the same ``{candidate: df}`` mapping.
            postings = self._postings
            forward = self._forward
            for doc_id in matching:
                sequence = forward.get(doc_id, ())
                length = len(sequence)
                if not length:
                    continue
                mask = None
                for term in terms:
                    positions = postings.get(term, {}).get(doc_id, ())
                    if not positions:
                        mask = None
                        break
                    covered = np.zeros(length, dtype=bool)
                    for position in positions:
                        covered[max(0, position - window):
                                position + window + 1] = True
                    if mask is None:
                        mask = covered
                    else:
                        mask &= covered
                        if not mask.any():
                            mask = None
                            break
                if mask is None:
                    continue
                for position in np.nonzero(mask)[0].tolist():
                    term = sequence[position]
                    if term not in key_terms:
                        candidates.setdefault(term, set()).add(doc_id)
            return {term: len(docs) for term, docs in candidates.items()}
        for doc_id in matching:
            near = self._positions_near_all(doc_id, terms, window)
            if not near:
                continue
            doc_terms = self._terms_at_positions(doc_id, near)
            for term in doc_terms:
                if term in key_terms:
                    continue
                candidates.setdefault(term, set()).add(doc_id)
        return {term: len(docs) for term, docs in candidates.items()}

    def _positions_near_all(self, doc_id: int, terms: Sequence[str],
                            window: int) -> Set[int]:
        """Positions within ``window`` of an occurrence of every key term."""
        result: Optional[Set[int]] = None
        for term in terms:
            positions = self._postings.get(term, {}).get(doc_id, ())
            covered: Set[int] = set()
            for position in positions:
                covered.update(range(max(0, position - window),
                                     position + window + 1))
            result = covered if result is None else (result & covered)
            if not result:
                return set()
        return result or set()

    def _terms_at_positions(self, doc_id: int,
                            positions: Set[int]) -> Set[str]:
        """Terms of ``doc_id`` occurring at any of ``positions``."""
        sequence = self._forward.get(doc_id, ())
        length = len(sequence)
        return {sequence[position] for position in positions
                if 0 <= position < length}

    def term_sequence(self, doc_id: int) -> Tuple[str, ...]:
        """The analyzed term sequence of a document (forward index)."""
        return self._forward[doc_id]

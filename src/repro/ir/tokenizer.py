"""Tokenization.

A deliberately simple, deterministic tokenizer: lowercase, split on
non-alphanumeric characters, drop pure punctuation and overly long junk
tokens.  This matches the behaviour of classic IR toolkits (Terrier's
default English tokenizer) closely enough for the reproduction, where the
interesting behaviour lives above the tokenizer.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize", "MAX_TOKEN_LENGTH"]

#: Tokens longer than this are discarded as junk (base64 blobs, URLs...).
MAX_TOKEN_LENGTH = 40

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    >>> tokenize("Hello, World! hello-world 42")
    ['hello', 'world', 'hello', 'world', '42']
    >>> tokenize("")
    []
    """
    return [token for token in _TOKEN_PATTERN.findall(text.lower())
            if len(token) <= MAX_TOKEN_LENGTH]

"""Structured queries for the local search engine (Layer 5).

Section 3 of the paper: a sophisticated local engine "can support complex
structured queries or/and employ a particular ranking strategy".  This
module provides that capability: a small boolean query language evaluated
against the positional inverted index, with

* ``AND`` / ``OR`` / ``NOT`` operators (``AND`` binds tighter than
  ``OR``; ``NOT`` is a prefix operator),
* parentheses for grouping,
* ``"quoted phrases"`` matched positionally (adjacent index terms), and
* bare terms (analyzed with the engine's pipeline, so ``Retrieval``
  matches ``retrieving``).

Grammar (recursive descent)::

    query   := or_expr
    or_expr := and_expr ( OR and_expr )*
    and_expr:= unary ( [AND] unary )*        # juxtaposition = AND
    unary   := NOT unary | atom
    atom    := '(' or_expr ')' | PHRASE | TERM

Evaluation returns the matching document-id set; ranking of the matches
is delegated to the engine's BM25 over the query's positive terms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

__all__ = ["QuerySyntaxError", "QueryNode", "Term", "Phrase", "And",
           "Or", "Not", "parse_query", "evaluate"]


class QuerySyntaxError(ValueError):
    """Raised on malformed structured queries."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class QueryNode:
    """Base class of query AST nodes."""

    def positive_terms(self) -> List[str]:
        """Analyzed terms usable for ranking (NOT-branches excluded)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Term(QueryNode):
    """A single analyzed index term."""

    term: str

    def positive_terms(self) -> List[str]:
        return [self.term]


@dataclass(frozen=True)
class Phrase(QueryNode):
    """A positional phrase: terms adjacent in analyzed order."""

    terms: tuple

    def positive_terms(self) -> List[str]:
        return list(self.terms)


@dataclass(frozen=True)
class And(QueryNode):
    children: tuple

    def positive_terms(self) -> List[str]:
        terms: List[str] = []
        for child in self.children:
            terms.extend(child.positive_terms())
        return terms


@dataclass(frozen=True)
class Or(QueryNode):
    children: tuple

    def positive_terms(self) -> List[str]:
        terms: List[str] = []
        for child in self.children:
            terms.extend(child.positive_terms())
        return terms


@dataclass(frozen=True)
class Not(QueryNode):
    child: QueryNode

    def positive_terms(self) -> List[str]:
        return []  # negated terms must not contribute to ranking


# ---------------------------------------------------------------------------
# Tokenizer + parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(
        \(            |
        \)            |
        "[^"]*"       |
        \bAND\b       |
        \bOR\b        |
        \bNOT\b       |
        [^\s()"]+
    )""", re.VERBOSE)


def _tokenize(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QuerySyntaxError(
                f"cannot tokenize at: {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], analyzer):
        self.tokens = tokens
        self.analyzer = analyzer
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.position += 1
        return token

    # -- grammar ----------------------------------------------------------

    def parse(self) -> QueryNode:
        node = self.or_expr()
        if self.peek() is not None:
            raise QuerySyntaxError(
                f"unexpected token {self.peek()!r}")
        return node

    def or_expr(self) -> QueryNode:
        children = [self.and_expr()]
        while self.peek() == "OR":
            self.take()
            children.append(self.and_expr())
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def and_expr(self) -> QueryNode:
        children = [self.unary()]
        while True:
            token = self.peek()
            if token == "AND":
                self.take()
                children.append(self.unary())
            elif token is not None and token not in ("OR", ")"):
                children.append(self.unary())  # implicit AND
            else:
                break
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def unary(self) -> QueryNode:
        if self.peek() == "NOT":
            self.take()
            return Not(self.unary())
        return self.atom()

    def atom(self) -> QueryNode:
        token = self.take()
        if token == "(":
            node = self.or_expr()
            if self.take() != ")":
                raise QuerySyntaxError("missing closing parenthesis")
            return node
        if token == ")":
            raise QuerySyntaxError("unexpected ')'")
        if token.startswith('"'):
            terms = self.analyzer.analyze(token.strip('"'))
            if not terms:
                raise QuerySyntaxError(
                    f"phrase {token!r} has no index terms")
            if len(terms) == 1:
                return Term(terms[0])
            return Phrase(tuple(terms))
        terms = self.analyzer.analyze(token)
        if not terms:
            raise QuerySyntaxError(
                f"term {token!r} has no index terms (stopword?)")
        if len(terms) == 1:
            return Term(terms[0])
        return Phrase(tuple(terms))  # e.g. "peer-to-peer" splits


def parse_query(text: str, analyzer) -> QueryNode:
    """Parse a structured query string into an AST.

    >>> from repro.ir.analysis import Analyzer
    >>> node = parse_query('peer AND (ranking OR "posting list")',
    ...                    Analyzer())
    >>> isinstance(node, And)
    True
    """
    if not text or not text.strip():
        raise QuerySyntaxError("empty query")
    tokens = _tokenize(text)
    if not tokens:
        raise QuerySyntaxError("empty query")
    return _Parser(tokens, analyzer).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def _phrase_matches(index, terms: Sequence[str]) -> Set[int]:
    """Documents where ``terms`` occur at consecutive positions."""
    candidates = index.documents_with_all(terms)
    matches = set()
    for doc_id in candidates:
        first_positions = index.occurrences(terms[0])
        starts = ()
        for occurrence in first_positions:
            if occurrence.doc_id == doc_id:
                starts = occurrence.positions
                break
        sequence = index.term_sequence(doc_id)
        length = len(sequence)
        for start in starts:
            if start + len(terms) > length:
                continue
            if all(sequence[start + offset] == term
                   for offset, term in enumerate(terms)):
                matches.add(doc_id)
                break
    return matches


def evaluate(node: QueryNode, index) -> Set[int]:
    """Evaluate an AST against an :class:`InvertedIndex`.

    ``NOT`` complements relative to the whole local collection (as usual
    for boolean IR); a top-level bare ``NOT x`` therefore returns every
    document without ``x``.
    """
    if isinstance(node, Term):
        return index.documents_with_term(node.term)
    if isinstance(node, Phrase):
        return _phrase_matches(index, node.terms)
    if isinstance(node, And):
        result: Optional[Set[int]] = None
        for child in node.children:
            matched = evaluate(child, index)
            result = matched if result is None else (result & matched)
            if not result:
                return set()
        return result if result is not None else set()
    if isinstance(node, Or):
        result: Set[int] = set()
        for child in node.children:
            result |= evaluate(child, index)
        return result
    if isinstance(node, Not):
        universe = set(index.document_ids())
        return universe - evaluate(node.child, index)
    raise TypeError(f"unknown query node {type(node).__name__}")

"""The Alvis document digest (Section 4, "Heterogeneity support").

A *document digest* is "an explicit XML-based representation of the index
of a document collection": for each document, its URL and the list of its
indexing terms with positions.  External engines (e.g. a digital library)
export their proprietary index as a digest; the receiving peer regenerates
a local index from it and publishes the collection to the P2P network.

The schema used here::

    <digest>
      <document url="http://..." title="...">
        <term value="scalabl"><pos>0</pos><pos>17</pos></term>
        ...
      </document>
      ...
    </digest>
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["DocumentDigest", "render_digest", "parse_digest",
           "digest_from_terms"]


@dataclass
class DocumentDigest:
    """Digest of one document: URL, title, and term -> positions."""

    url: str
    title: str
    term_positions: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def term_sequence(self) -> List[str]:
        """Reconstruct the positional term sequence.

        Gaps (positions occupied by stopwords in the original document)
        are dropped, preserving relative order — sufficient for proximity
        operations, which work on index-term positions anyway.
        """
        slots: List[Tuple[int, str]] = []
        for term, positions in self.term_positions.items():
            for position in positions:
                slots.append((position, term))
        slots.sort()
        return [term for _position, term in slots]

    def validate(self) -> None:
        """Raise ValueError on malformed digests (negative/clashing slots)."""
        seen: Dict[int, str] = {}
        for term, positions in self.term_positions.items():
            if not term:
                raise ValueError("digest contains an empty term")
            for position in positions:
                if position < 0:
                    raise ValueError(
                        f"negative position {position} for term {term!r}")
                previous = seen.get(position)
                if previous is not None and previous != term:
                    raise ValueError(
                        f"position {position} claimed by both "
                        f"{previous!r} and {term!r}")
                seen[position] = term


def digest_from_terms(url: str, title: str,
                      terms: Sequence[str]) -> DocumentDigest:
    """Build a digest from an analyzed term sequence."""
    term_positions: Dict[str, List[int]] = {}
    for position, term in enumerate(terms):
        term_positions.setdefault(term, []).append(position)
    return DocumentDigest(
        url=url, title=title,
        term_positions={term: tuple(positions)
                        for term, positions in term_positions.items()})


def render_digest(documents: Sequence[DocumentDigest]) -> str:
    """Serialize digests to the Alvis XML format."""
    root = ElementTree.Element("digest")
    for digest in documents:
        digest.validate()
        doc_el = ElementTree.SubElement(root, "document",
                                        url=digest.url, title=digest.title)
        for term in sorted(digest.term_positions):
            term_el = ElementTree.SubElement(doc_el, "term", value=term)
            for position in digest.term_positions[term]:
                pos_el = ElementTree.SubElement(term_el, "pos")
                pos_el.text = str(position)
    return ElementTree.tostring(root, encoding="unicode")


def parse_digest(xml_text: str) -> List[DocumentDigest]:
    """Parse the Alvis XML digest format.

    Raises :class:`ValueError` on structural problems (wrong root tag,
    missing attributes, non-integer positions).
    """
    try:
        root = ElementTree.fromstring(xml_text)
    except ElementTree.ParseError as error:
        raise ValueError(f"malformed digest XML: {error}") from error
    if root.tag != "digest":
        raise ValueError(f"expected <digest> root, got <{root.tag}>")
    documents = []
    for doc_el in root.findall("document"):
        url = doc_el.get("url")
        if url is None:
            raise ValueError("<document> missing url attribute")
        title = doc_el.get("title", "")
        term_positions: Dict[str, Tuple[int, ...]] = {}
        for term_el in doc_el.findall("term"):
            value = term_el.get("value")
            if not value:
                raise ValueError("<term> missing value attribute")
            positions = []
            for pos_el in term_el.findall("pos"):
                text = (pos_el.text or "").strip()
                try:
                    positions.append(int(text))
                except ValueError as error:
                    raise ValueError(
                        f"non-integer position {text!r} for term "
                        f"{value!r}") from error
            term_positions[value] = tuple(positions)
        digest = DocumentDigest(url=url, title=title,
                                term_positions=term_positions)
        digest.validate()
        documents.append(digest)
    return documents

"""Compile a :class:`Scenario` onto the event kernel and evaluate it.

Determinism contract: everything stochastic draws from a stream derived
from ``(seed, "scenario", name, ...)`` — the corpus, the query pool, the
base/flash query streams, and *one stream per timeline event* (wave
offsets at compile time, victim selection at fire time).  Two runs at
the same seed therefore produce byte-identical
:class:`~repro.scenarios.report.ScenarioReport` JSON.

The run proceeds in four phases:

1. **build** — fresh network + synthetic corpus + global index;
2. **oracle** — every distinct query of the compiled streams runs once
   against the fault-free network; its top-k is the recall reference.
   Traffic counters reset afterwards, so the report accounts only the
   adversarial window;
3. **timeline** — workloads are submitted
   (:meth:`~repro.core.network.AlvisNetwork.submit_workload`) and every
   timeline event is scheduled, then one ``simulator.run()`` drives the
   whole story;
4. **evaluate** — measured recall/latency/goodput/handover-bytes are
   checked against the scenario's :class:`PassCriteria`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.core.workload import (PoissonArrivals, RoundRobinOrigins,
                                 UniformOrigins, Workload)
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.net import protocol
from repro.scenarios.report import ScenarioReport, overlap_at_k
from repro.scenarios.spec import (FlashCrowd, GracefulDeparture, Heal,
                                  JoinWave, LeaveWave, Partition,
                                  Scenario, SlowPeers)
from repro.util.rng import derive_seed, make_rng
from repro.util.stats import percentile

__all__ = ["ScenarioRunner"]


class ScenarioRunner:
    """Runs one :class:`Scenario` at one seed."""

    def __init__(self, scenario: Scenario, seed: int = 0):
        self.scenario = scenario
        self.seed = seed
        config_overrides = dict(scenario.config_overrides)
        if any(isinstance(event, SlowPeers)
               and event.service_rate_factor is not None
               for event in scenario.timeline) \
                and config_overrides.get("service_rate", 0.0) <= 0:
            raise ValueError(
                f"scenario {scenario.name!r} uses SlowPeers with a "
                f"service_rate_factor but config.service_rate is 0 "
                f"(no service model to slow down)")
        self._config_overrides = config_overrides
        # Populated by run() — the benchmark layer reads these to
        # replay the base stream through the legacy run_queries path.
        self.network: AlvisNetwork = None
        self.base_queries: List[Tuple[str, ...]] = []
        self.base_jobs: List = []
        self.flash_jobs: List = []
        self.oracle: Dict[Tuple[str, ...], List[int]] = {}
        self._joins = 0
        self._crashes = 0
        self._graceful = 0
        self._partitions = 0
        self._degraded = 0

    # ------------------------------------------------------------------
    # Phase 1: build
    # ------------------------------------------------------------------

    def build_network(self) -> AlvisNetwork:
        """A fresh network + corpus + index for this scenario/seed.

        Repeated calls build identical networks (the benchmark uses a
        second one to replay the base stream through ``run_queries``).
        """
        scenario = self.scenario
        overrides = dict(self._config_overrides)
        overrides["async_queries"] = True
        config = AlvisConfig(**overrides)
        network = AlvisNetwork(num_peers=scenario.num_peers,
                               config=config, seed=self.seed)
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=scenario.num_documents,
            vocabulary_size=scenario.vocabulary_size,
            num_topics=scenario.num_topics,
            seed=derive_seed(self.seed, "scenario", scenario.name,
                             "corpus")))
        network.distribute_documents(corpus.documents())
        network.build_index(mode=scenario.index_mode)
        return network

    def build_pool(self) -> QueryWorkload:
        """The scenario's Zipf query pool (answerable multi-term
        queries over its own corpus)."""
        scenario = self.scenario
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=scenario.num_documents,
            vocabulary_size=scenario.vocabulary_size,
            num_topics=scenario.num_topics,
            seed=derive_seed(self.seed, "scenario", scenario.name,
                             "corpus")))
        return QueryWorkload.from_corpus(
            corpus,
            QueryWorkloadConfig(
                pool_size=scenario.pool_size,
                seed=derive_seed(self.seed, "scenario", scenario.name,
                                 "pool")))

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def run(self) -> ScenarioReport:
        scenario = self.scenario
        network = self.build_network()
        self.network = network
        pool = self.build_pool()
        peer_ids = network.peer_ids()

        # Compile the query streams (base + flash crowds) up front.
        spec = scenario.workload
        stream_rng = make_rng(self.seed, "scenario", scenario.name,
                              "base-queries")
        self.base_queries = list(pool.stream(stream_rng, spec.queries,
                                             spec.drift_per_query))
        pinned = tuple(peer_ids[:spec.pinned_origins]) \
            if spec.pinned_origins else ()
        flash_streams: List[Tuple[int, FlashCrowd,
                                  List[Tuple[str, ...]]]] = []
        for index, event in enumerate(scenario.timeline):
            if isinstance(event, FlashCrowd):
                rng = self._event_rng(index)
                flash_streams.append(
                    (index, event,
                     list(pool.stream(rng, event.queries,
                                      event.drift_per_query))))

        # Peers the adversary never removes or isolates: the pinned
        # origins (the surviving clients whose experience the criteria
        # measure) and the oracle origin.
        protected: Set[int] = set(pinned) | {peer_ids[0]}

        # Phase 2: the fault-free oracle.  One sync-completing run per
        # distinct query, then zero the counters so the report measures
        # only the adversarial window.
        k = network.config.result_k
        distinct = list(dict.fromkeys(
            self.base_queries
            + [query for _, _, queries in flash_streams
               for query in queries]))
        for query in distinct:
            results, _trace = network.query(peer_ids[0], query)
            self.oracle[tuple(query)] = \
                [document.doc_id for document in results[:k]]
        network.reset_traffic()

        # Phase 3: schedule the whole story, then run it.
        origin_policy = RoundRobinOrigins(pinned) if pinned \
            else UniformOrigins()
        self.base_jobs = network.submit_workload(
            Workload(queries=tuple(self.base_queries),
                     arrival=PoissonArrivals(spec.arrival_rate),
                     origins=origin_policy))
        self.flash_jobs = []
        for index, event, queries in flash_streams:
            self.flash_jobs.append(network.submit_workload(
                Workload(queries=tuple(queries),
                         arrival=PoissonArrivals(event.arrival_rate)),
                start=event.at))
        for index, event in enumerate(scenario.timeline):
            if not isinstance(event, FlashCrowd):
                self._schedule_event(network, index, event, protected)
        start = network.simulator.now
        network.simulator.run()

        # Phase 4: measure and judge.
        return self._evaluate(network, start, k)

    # ------------------------------------------------------------------
    # Timeline compilation
    # ------------------------------------------------------------------

    def _event_rng(self, index: int) -> random.Random:
        """One derived stream per scripted timeline event."""
        return make_rng(self.seed, "scenario", self.scenario.name,
                        "event", index)

    def _wave_offsets(self, rng: random.Random, count: int,
                      spread: float) -> List[float]:
        if spread <= 0 or count == 1:
            return [0.0] * count
        return sorted(rng.uniform(0.0, spread) for _ in range(count))

    def _schedule_event(self, network: AlvisNetwork, index: int,
                        event, protected: Set[int]) -> None:
        simulator = network.simulator
        rng = self._event_rng(index)
        if isinstance(event, JoinWave):
            # The churn process is created at compile time so its
            # derived stream index depends only on timeline order.
            process = network.faults.churn()
            for offset in self._wave_offsets(rng, event.count,
                                             event.spread):
                simulator.schedule(
                    event.at + offset,
                    lambda process=process: self._fire_join(process))
        elif isinstance(event, LeaveWave):
            for offset in self._wave_offsets(rng, event.count,
                                             event.spread):
                simulator.schedule(
                    event.at + offset,
                    lambda: self._fire_crash(network, rng, protected))
        elif isinstance(event, GracefulDeparture):
            for offset in self._wave_offsets(rng, event.count,
                                             event.spread):
                simulator.schedule(
                    event.at + offset,
                    lambda: self._fire_graceful(network, rng, protected))
        elif isinstance(event, Partition):
            simulator.schedule(
                event.at,
                lambda: self._fire_partition(network, rng,
                                             event.fraction, protected))
        elif isinstance(event, Heal):
            simulator.schedule(event.at,
                               lambda: self._fire_heal(network))
        elif isinstance(event, SlowPeers):
            simulator.schedule(
                event.at,
                lambda: self._fire_slow(network, rng, event, protected))
        else:  # pragma: no cover - exhaustive over TimelineEvent
            raise TypeError(f"unknown timeline event {event!r}")

    # ------------------------------------------------------------------
    # Event firing (runs on the event kernel)
    # ------------------------------------------------------------------

    def _fire_join(self, process) -> None:
        process.join()
        self._joins += 1

    def _victims(self, network: AlvisNetwork, rng: random.Random,
                 count: int, protected: Set[int]) -> List[int]:
        candidates = [peer_id for peer_id in network.peer_ids()
                      if peer_id not in protected]
        # Never shrink the network to (or below) one peer.
        count = min(count, len(candidates), network.num_peers - 1)
        if count <= 0:
            return []
        return rng.sample(candidates, count)

    def _fire_crash(self, network: AlvisNetwork, rng: random.Random,
                    protected: Set[int]) -> None:
        victims = self._victims(network, rng, 1, protected)
        if victims:
            network.faults.crash(victims[0])
            self._crashes += 1

    def _fire_graceful(self, network: AlvisNetwork, rng: random.Random,
                       protected: Set[int]) -> None:
        victims = self._victims(network, rng, 1, protected)
        if victims:
            network.faults.graceful_depart(victims[0])
            self._graceful += 1

    def _fire_partition(self, network: AlvisNetwork, rng: random.Random,
                        fraction: float, protected: Set[int]) -> None:
        count = max(1, int(network.num_peers * fraction))
        isolated = self._victims(network, rng, count, protected)
        if isolated:
            network.faults.partition(isolated)
            self._partitions += 1

    def _fire_heal(self, network: AlvisNetwork) -> None:
        if network.faults.partitioned:
            network.faults.heal()

    def _fire_slow(self, network: AlvisNetwork, rng: random.Random,
                   event: SlowPeers, protected: Set[int]) -> None:
        count = max(1, int(network.num_peers * event.fraction))
        victims = self._victims(network, rng, count, protected)
        service_rate = None
        if event.service_rate_factor is not None:
            service_rate = (network.config.service_rate
                            * event.service_rate_factor)
        for victim in victims:
            network.faults.degrade(victim, service_rate=service_rate,
                                   cache_bytes=event.cache_bytes)
        self._degraded += len(victims)

    # ------------------------------------------------------------------
    # Phase 4: evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, network: AlvisNetwork, start: float,
                  k: int) -> ScenarioReport:
        scenario = self.scenario
        all_jobs = list(self.base_jobs)
        for jobs in self.flash_jobs:
            all_jobs.extend(jobs)
        submitted = (scenario.workload.queries
                     + sum(event.queries for event in scenario.timeline
                           if isinstance(event, FlashCrowd)))
        completed = [job for job in all_jobs if job.done]
        recalls = []
        for job in completed:
            expected = self.oracle.get(tuple(job.terms))
            if expected is None:  # pragma: no cover - oracle covers all
                continue
            got = [document.doc_id for document in (job.results or [])[:k]]
            recalls.append(overlap_at_k(expected, got))
        recall = sum(recalls) / len(recalls) if recalls else 0.0
        latencies = [job.trace.latency for job in completed]
        p50 = percentile(latencies, 50) if latencies else 0.0
        p95 = percentile(latencies, 95) if latencies else 0.0
        p99 = percentile(latencies, 99) if latencies else 0.0
        makespan = network.simulator.now - start
        goodput = len(completed) / makespan if makespan > 0 \
            else float(len(completed))
        handover_bytes = int(network.bytes_by_kind()
                             .get(protocol.HANDOVER, 0))
        dropped = sum(job.trace.dropped_count for job in completed)
        completed_fraction = (len(completed) / submitted
                              if submitted else 1.0)
        criteria = scenario.criteria.evaluate(
            recall_at_k=recall, latency_p99=p99, goodput_qps=goodput,
            handover_bytes=handover_bytes,
            completed_fraction=completed_fraction)
        return ScenarioReport(
            scenario=scenario.name,
            seed=self.seed,
            k=k,
            peers_start=scenario.num_peers,
            peers_end=network.num_peers,
            queries_submitted=submitted,
            queries_completed=len(completed),
            dropped_probes=dropped,
            recall_at_k=recall,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            makespan=makespan,
            goodput_qps=goodput,
            bytes_total=int(network.bytes_sent_total()),
            messages_total=int(network.messages_sent_total()),
            handover_bytes=handover_bytes,
            joins=self._joins,
            crashes=self._crashes,
            graceful_departures=self._graceful,
            partitions=self._partitions,
            degraded_peers=self._degraded,
            criteria=criteria,
            passed=all(criterion.passed for criterion in criteria))

"""Declarative scenario specifications.

A :class:`Scenario` is data, not code: a network shape, a base
:class:`WorkloadSpec`, a timeline of typed events and explicit
:class:`PassCriteria`.  The :class:`~repro.scenarios.runner.ScenarioRunner`
compiles it onto the event kernel; nothing here touches the simulator.

Every event carries ``at`` — virtual seconds after the scenario starts —
and waves spread their sub-events over ``spread`` further seconds.  All
specs are frozen dataclasses so scenarios can be shared, scaled with
:func:`dataclasses.replace` and hashed into registries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.scenarios.report import CriterionResult

__all__ = ["FlashCrowd", "GracefulDeparture", "Heal", "JoinWave",
           "LeaveWave", "Partition", "PassCriteria", "Scenario",
           "SlowPeers", "TimelineEvent", "WorkloadSpec"]


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class JoinWave:
    """``count`` fresh peers join (with key-range handover), spread over
    ``[at, at + spread]``."""

    at: float
    count: int
    spread: float = 0.0

    def __post_init__(self):
        _non_negative("at", self.at)
        _positive("count", self.count)
        _non_negative("spread", self.spread)


@dataclass(frozen=True)
class LeaveWave:
    """``count`` peers *crash* (fail-stop, no handover), spread over
    ``[at, at + spread]``.  Victims are drawn from the non-protected
    live peers by the event's own RNG stream."""

    at: float
    count: int
    spread: float = 0.0

    def __post_init__(self):
        _non_negative("at", self.at)
        _positive("count", self.count)
        _non_negative("spread", self.spread)


@dataclass(frozen=True)
class GracefulDeparture:
    """``count`` peers leave cleanly — key handover to the ring
    successor before the endpoint detaches."""

    at: float
    count: int = 1
    spread: float = 0.0

    def __post_init__(self):
        _non_negative("at", self.at)
        _positive("count", self.count)
        _non_negative("spread", self.spread)


@dataclass(frozen=True)
class Partition:
    """Isolate a random ``fraction`` of the non-protected peers from the
    rest of the network (messages across the cut are dropped)."""

    at: float
    fraction: float = 0.3

    def __post_init__(self):
        _non_negative("at", self.at)
        if not 0 < self.fraction < 1:
            raise ValueError(
                f"fraction must be in (0, 1), got {self.fraction}")


@dataclass(frozen=True)
class Heal:
    """Reconnect all partitioned groups."""

    at: float

    def __post_init__(self):
        _non_negative("at", self.at)


@dataclass(frozen=True)
class FlashCrowd:
    """A query spike: ``queries`` extra arrivals at ``arrival_rate``
    starting at ``at``, with per-query topic drift (interest shift)."""

    at: float
    queries: int
    arrival_rate: float
    drift_per_query: float = 0.0

    def __post_init__(self):
        _non_negative("at", self.at)
        _positive("queries", self.queries)
        _positive("arrival_rate", self.arrival_rate)
        _non_negative("drift_per_query", self.drift_per_query)


@dataclass(frozen=True)
class SlowPeers:
    """Degrade a random ``fraction`` of the non-protected peers:
    multiply their transport service rate by ``service_rate_factor``
    (requires ``config.service_rate > 0``) and/or shrink their probe
    cache to ``cache_bytes``."""

    at: float
    fraction: float = 0.25
    service_rate_factor: Optional[float] = 0.25
    cache_bytes: Optional[int] = None

    def __post_init__(self):
        _non_negative("at", self.at)
        if not 0 < self.fraction < 1:
            raise ValueError(
                f"fraction must be in (0, 1), got {self.fraction}")
        if self.service_rate_factor is not None \
                and not 0 < self.service_rate_factor <= 1:
            raise ValueError(
                f"service_rate_factor must be in (0, 1], got "
                f"{self.service_rate_factor}")
        if self.cache_bytes is not None and self.cache_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}")


TimelineEvent = Union[JoinWave, LeaveWave, GracefulDeparture, Partition,
                      Heal, FlashCrowd, SlowPeers]


@dataclass(frozen=True)
class WorkloadSpec:
    """The base query stream of a scenario.

    ``pinned_origins`` > 0 pins the stream to the first N peers
    (round-robin) and *protects* them from crash/departure/partition
    victim selection — the survivable-client view of an adversarial
    network; 0 draws origins uniformly from all initial peers.
    """

    queries: int = 40
    arrival_rate: float = 50.0
    drift_per_query: float = 0.0
    pinned_origins: int = 0

    def __post_init__(self):
        _positive("queries", self.queries)
        _positive("arrival_rate", self.arrival_rate)
        _non_negative("drift_per_query", self.drift_per_query)
        _non_negative("pinned_origins", self.pinned_origins)


@dataclass(frozen=True)
class PassCriteria:
    """Explicit floors/ceilings a scenario run must satisfy.

    ``None`` disables a criterion; ``min_completed_fraction`` defaults
    to 1.0 — every submitted query must complete (drops surface in
    probe outcomes, never as lost queries).
    """

    min_recall_at_k: Optional[float] = None
    max_p99_latency: Optional[float] = None
    min_goodput_qps: Optional[float] = None
    max_handover_bytes: Optional[int] = None
    min_completed_fraction: float = 1.0

    def evaluate(self, *, recall_at_k: float, latency_p99: float,
                 goodput_qps: float, handover_bytes: int,
                 completed_fraction: float) -> List[CriterionResult]:
        """Check every declared criterion against measured values."""
        results: List[CriterionResult] = []

        def floor(name: str, threshold: Optional[float],
                  value: float) -> None:
            if threshold is not None:
                results.append(CriterionResult(
                    name, ">=", float(threshold), float(value),
                    value >= threshold))

        def ceiling(name: str, threshold: Optional[float],
                    value: float) -> None:
            if threshold is not None:
                results.append(CriterionResult(
                    name, "<=", float(threshold), float(value),
                    value <= threshold))

        floor("recall_at_k", self.min_recall_at_k, recall_at_k)
        ceiling("p99_latency", self.max_p99_latency, latency_p99)
        floor("goodput_qps", self.min_goodput_qps, goodput_qps)
        ceiling("handover_bytes", self.max_handover_bytes,
                handover_bytes)
        floor("completed_fraction", self.min_completed_fraction,
              completed_fraction)
        return results


@dataclass(frozen=True)
class Scenario:
    """A named adversarial workload: network shape + stream + timeline
    + pass criteria."""

    name: str
    description: str
    num_peers: int = 16
    num_documents: int = 120
    vocabulary_size: int = 900
    num_topics: int = 6
    pool_size: int = 30
    index_mode: str = "hdk"
    #: ``AlvisConfig`` overrides as a tuple of pairs (kept hashable);
    #: ``async_queries`` is forced on by the runner.
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    timeline: Tuple[TimelineEvent, ...] = ()
    criteria: PassCriteria = field(default_factory=PassCriteria)

    def __post_init__(self):
        _positive("num_peers", self.num_peers)
        object.__setattr__(self, "config_overrides",
                           tuple((str(key), value) for key, value
                                 in self.config_overrides))
        object.__setattr__(self, "timeline", tuple(self.timeline))

    def scaled(self, num_peers: Optional[int] = None,
               queries: Optional[int] = None) -> "Scenario":
        """A resized copy (CLI ``--peers`` / benchmark smoke mode)."""
        scenario = self
        if num_peers is not None:
            scenario = dataclasses.replace(scenario, num_peers=num_peers)
        if queries is not None:
            scenario = dataclasses.replace(
                scenario,
                workload=dataclasses.replace(scenario.workload,
                                             queries=queries))
        return scenario

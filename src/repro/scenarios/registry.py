"""The named scenario atlas.

Six adversarial stories, each with explicit pass criteria, sized so the
whole atlas runs in seconds (``repro scenario run <name>`` /
``benchmarks/bench_e17_scenarios.py``).  Thresholds are deliberately
slack floors/ceilings — regression tripwires, not tuned SLOs: they must
hold across seeds and smoke scalings, and a behavior change that breaks
one is worth a look.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (FlashCrowd, GracefulDeparture, Heal,
                                  JoinWave, LeaveWave, Partition,
                                  PassCriteria, Scenario, SlowPeers,
                                  WorkloadSpec)

__all__ = ["get_scenario", "scenario_names", "SCENARIOS"]


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


#: The control: static membership, Poisson arrivals over the Zipf mix —
#: exactly the E14 open workload, which the benchmark cross-checks
#: against ``run_queries`` at identical top-k.
BASELINE_POISSON = _register(Scenario(
    name="baseline_poisson",
    description="Static membership, Poisson arrivals over a Zipf query "
                "mix (the E14 control; top-k pinned against "
                "run_queries).",
    workload=WorkloadSpec(queries=40, arrival_rate=50.0),
    criteria=PassCriteria(min_recall_at_k=0.99,
                          max_p99_latency=0.5,
                          min_goodput_qps=5.0)))

#: Mass joins and fail-stop crashes overlapping the query stream.
#: Crashed fragments are gone (no replication configured), so the
#: recall floor is deliberately modest; the real assertions are that
#: every query still completes and drops surface as probe outcomes.
CHURN_STORM = _register(Scenario(
    name="churn_storm",
    description="Overlapping join wave and crash wave under load: "
                "queries survive (dropped probes, never exceptions) "
                "with bounded recall loss.",
    workload=WorkloadSpec(queries=40, arrival_rate=40.0,
                          pinned_origins=4),
    timeline=(JoinWave(at=0.10, count=3, spread=0.50),
              LeaveWave(at=0.15, count=3, spread=0.50)),
    criteria=PassCriteria(min_recall_at_k=0.45,
                          max_p99_latency=0.5,
                          min_goodput_qps=5.0)))

#: An arrival-rate spike (>6x base) with topic drift on the side.
FLASH_CROWD = _register(Scenario(
    name="flash_crowd",
    description="Query spike at >6x the base arrival rate with topic "
                "drift; recall holds and p99 stays bounded.",
    workload=WorkloadSpec(queries=20, arrival_rate=30.0),
    timeline=(FlashCrowd(at=0.20, queries=40, arrival_rate=200.0,
                         drift_per_query=0.5),),
    criteria=PassCriteria(min_recall_at_k=0.99,
                          max_p99_latency=0.5,
                          min_goodput_qps=15.0)))

#: A third of the network is unreachable for half the run, then heals.
#: Cross-cut probes drop (bounded recall loss); nothing wedges, and
#: queries after the heal see the full index again.
PARTITION_HEAL = _register(Scenario(
    name="partition_heal",
    description="A minority partition under load, healed mid-stream: "
                "cross-cut probes drop, every query completes, the "
                "post-heal tail recovers.",
    workload=WorkloadSpec(queries=40, arrival_rate=40.0),
    timeline=(Partition(at=0.10, fraction=0.30),
              Heal(at=0.60)),
    criteria=PassCriteria(min_recall_at_k=0.60,
                          max_p99_latency=0.5,
                          min_goodput_qps=5.0)))

#: Peers leave cleanly, handing their key ranges over.  Their *documents*
#: leave with them — a quarter of the collection at count=4/16 peers —
#: so the recall floor is 1 minus that share with a little slack; the
#: point is that the *index* survives (recall tracks the document loss
#: instead of collapsing like a crash) within a handover-byte budget.
GRACEFUL_DRAIN = _register(Scenario(
    name="graceful_drain",
    description="Four graceful departures with key handover under "
                "load: recall tracks only the departed document share "
                "(the index survives) within a handover-byte budget.",
    workload=WorkloadSpec(queries=40, arrival_rate=40.0,
                          pinned_origins=4),
    timeline=(GracefulDeparture(at=0.10, count=4, spread=0.60),),
    criteria=PassCriteria(min_recall_at_k=0.65,
                          max_p99_latency=0.5,
                          min_goodput_qps=5.0,
                          max_handover_bytes=200_000)))

#: Heterogeneity: a quarter of the peers serve requests at a quarter of
#: the configured rate (bounded service queues active) with their probe
#: caches disabled — the latency ceiling is the criterion under test.
SLOW_MINORITY = _register(Scenario(
    name="slow_minority",
    description="A slow minority (quarter-rate service, no probe "
                "cache) under the bounded-service-queue model: recall "
                "intact, p99 within the heterogeneity ceiling.",
    config_overrides=(("service_rate", 400.0),
                      ("queue_capacity", 64),
                      ("dispatch_window", 0.002)),
    workload=WorkloadSpec(queries=40, arrival_rate=40.0),
    timeline=(SlowPeers(at=0.0, fraction=0.25,
                        service_rate_factor=0.25, cache_bytes=0),),
    criteria=PassCriteria(min_recall_at_k=0.99,
                          max_p99_latency=1.0,
                          min_goodput_qps=4.0)))


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a named scenario (ValueError with the catalog on miss)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(scenario_names())}") from None

"""Structured scenario outcomes.

A :class:`ScenarioReport` carries only virtual-clock-derived numbers —
no wall clocks, no process state — so two runs of the same scenario at
the same seed produce byte-identical JSON (the CLI determinism test
pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["CriterionResult", "ScenarioReport", "overlap_at_k"]


def overlap_at_k(expected: Sequence[int], got: Sequence[int]) -> float:
    """Fraction of the expected top-k found in the observed top-k.

    The scenario layer's recall@k against the fault-free oracle run.
    An empty oracle answer counts as full recall (nothing to find).
    (Computed inline rather than via :mod:`repro.eval` — the scenarios
    and eval segments share a layer rank, so neither imports the other.)
    """
    if not expected:
        return 1.0
    expected_set = set(expected)
    return len(expected_set & set(got)) / len(expected_set)


@dataclass
class CriterionResult:
    """One evaluated pass criterion."""

    name: str           #: e.g. ``"recall_at_k"``
    op: str             #: ``">="`` or ``"<="``
    threshold: float
    value: float
    passed: bool

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "op": self.op,
                "threshold": self.threshold, "value": self.value,
                "passed": self.passed}

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (f"{verdict} {self.name}: {self.value:.4f} "
                f"{self.op} {self.threshold:.4f}")


@dataclass
class ScenarioReport:
    """Everything a scenario run measured, plus its verdict."""

    scenario: str
    seed: int
    k: int                          #: top-k depth of the recall oracle
    peers_start: int
    peers_end: int
    queries_submitted: int
    queries_completed: int
    dropped_probes: int             #: DROPPED probe outcomes across jobs
    recall_at_k: float              #: mean overlap@k vs the oracle
    latency_p50: float
    latency_p95: float
    latency_p99: float
    makespan: float                 #: virtual seconds, start to drain
    goodput_qps: float              #: completed queries per virtual second
    bytes_total: int
    messages_total: int
    handover_bytes: int             #: ``IndexHandover`` traffic
    joins: int
    crashes: int
    graceful_departures: int
    partitions: int
    degraded_peers: int
    criteria: List[CriterionResult] = field(default_factory=list)
    passed: bool = True

    def to_dict(self) -> Dict[str, object]:
        payload = {name: value for name, value in self.__dict__.items()
                   if name != "criteria"}
        payload["criteria"] = [criterion.to_dict()
                               for criterion in self.criteria]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"scenario {self.scenario} (seed {self.seed}) — "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  peers {self.peers_start} -> {self.peers_end}  "
            f"[joins {self.joins}, crashes {self.crashes}, "
            f"graceful {self.graceful_departures}, "
            f"partitions {self.partitions}, "
            f"degraded {self.degraded_peers}]",
            f"  queries {self.queries_completed}/{self.queries_submitted} "
            f"completed, {self.dropped_probes} dropped probes",
            f"  recall@{self.k} {self.recall_at_k:.3f}  "
            f"p50/p95/p99 {self.latency_p50:.4f}/"
            f"{self.latency_p95:.4f}/{self.latency_p99:.4f} s",
            f"  goodput {self.goodput_qps:.1f} q/s over "
            f"{self.makespan:.3f} s  "
            f"({self.bytes_total} bytes, {self.messages_total} msgs, "
            f"{self.handover_bytes} handover bytes)",
        ]
        for criterion in self.criteria:
            lines.append(f"  {criterion}")
        return "\n".join(lines)

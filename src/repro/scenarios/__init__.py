"""The scenario atlas: declarative adversarial workloads.

A :class:`~repro.scenarios.spec.Scenario` scripts a timeline of typed
membership/load events (join waves, crashes, graceful drains,
partitions, flash crowds, slow minorities) against an
:class:`~repro.core.network.AlvisNetwork`, paired with a declarative
:class:`~repro.core.workload.Workload` and explicit
:class:`~repro.scenarios.spec.PassCriteria`.  The
:class:`~repro.scenarios.runner.ScenarioRunner` compiles the timeline
onto the event kernel (one derived RNG stream per scripted process,
deterministic under a fixed seed) and evaluates the criteria into a
:class:`~repro.scenarios.report.ScenarioReport` — so every scenario in
the :mod:`~repro.scenarios.registry` doubles as a regression gate
(``repro scenario run <name>`` and ``benchmarks/bench_e17_scenarios.py``).
"""

from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.report import CriterionResult, ScenarioReport
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import (FlashCrowd, GracefulDeparture, Heal,
                                  JoinWave, LeaveWave, Partition,
                                  PassCriteria, Scenario, SlowPeers,
                                  WorkloadSpec)

__all__ = [
    "CriterionResult",
    "FlashCrowd",
    "GracefulDeparture",
    "Heal",
    "JoinWave",
    "LeaveWave",
    "Partition",
    "PassCriteria",
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "SlowPeers",
    "WorkloadSpec",
    "get_scenario",
    "scenario_names",
]

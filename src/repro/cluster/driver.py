"""The cluster driver: spawns peer hosts and runs queries over UDP.

The driver is host 0: it owns its own slice of peers, spawns one OS
process per remaining host (``python -m repro cluster --serve-host i``),
and runs the join handshake — each host repeats ``__hello__`` with its
port and state fingerprint until the driver's ``__welcome__`` lands.
The driver rejects any host whose fingerprint differs from its own
build (see :func:`~repro.cluster.host.state_fingerprint`); accepted
hosts become routes on the driver's transport, keyed by the peer ids
the positional assignment gives them.

All query traffic originates here: iterative DHT lookups execute in the
driver process and send per-hop ``LookupHop`` messages from the
driver's socket, probes/refinements go straight to the owning peer's
host, and hosts only ever *reply* — so no host needs a route table, and
churn on the driver's side (an unregistered peer) surfaces exactly like
the simulator's, as a nack.

Two execution modes mirror the simulator's:

* :meth:`run_query` / :meth:`run_query_set` — the synchronous engine,
  one blocking round-trip at a time (``network.query`` unchanged).
* :meth:`run_open_workload` — the async runtime under a
  :class:`~repro.cluster.realtime.RealtimeKernel`, overlapping queries
  with Poisson arrivals in wall-clock time (``runtime.submit``
  unchanged).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.host import (
    ClusterSpec,
    build_network,
    peers_for_host,
    state_fingerprint,
)
from repro.cluster.realtime import RealtimeKernel
from repro.core.runtime import QueryJob
from repro.net import wire
from repro.net.udp import UdpTransport
from repro.util.rng import make_rng

__all__ = ["ClusterDriver"]


class ClusterDriver:
    """Builds the twin network, spawns hosts, and issues queries."""

    def __init__(self, spec: ClusterSpec,
                 python: Optional[str] = None,
                 inherit_output: bool = False):
        self.spec = spec
        self.python = python or sys.executable
        self.inherit_output = inherit_output
        self.network = None
        self.transport: Optional[UdpTransport] = None
        self.sim_transport = None
        self.fingerprint: Optional[str] = None
        self._processes: List[subprocess.Popen] = []
        #: host index -> (address, reported fingerprint)
        self._hosts: Dict[int, Tuple[Tuple[str, int], str]] = {}
        self._host_errors: List[str] = []
        self._workload_streams = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, join_timeout: float = 60.0) -> "ClusterDriver":
        """Build state, spawn the hosts, and complete the handshake."""
        spec = self.spec
        self.network = build_network(spec)
        self.fingerprint = state_fingerprint(self.network)
        self.transport = UdpTransport(
            metrics=self.network.simulator.metrics,
            default_timeout=spec.request_timeout).start()
        self.sim_transport = self.network.attach_transport(self.transport)
        for peer_id in peers_for_host(self.network, 0, spec.num_hosts):
            self.transport.register(peer_id, self.network.peer(peer_id))
        self.transport.on_control(wire.HELLO, self._on_hello)
        try:
            self._spawn_hosts()
            self._await_hosts(join_timeout)
        except Exception:
            self.close()
            raise
        return self

    def _on_hello(self, payload, addr):
        host = int(payload.get("host", -1))
        fingerprint = str(payload.get("fingerprint", ""))
        if not 0 < host < self.spec.num_hosts:
            return wire.WELCOME, {"ok": False,
                                  "error": f"unknown host index {host}"}
        if fingerprint != self.fingerprint:
            self._host_errors.append(
                f"host {host} built divergent state "
                f"({fingerprint[:12]} != {self.fingerprint[:12]})")
            return wire.WELCOME, {"ok": False,
                                  "error": "state fingerprint mismatch"}
        # Reply to the socket the hello came from: on re-sent hellos this
        # is idempotent, the host just sees another welcome.
        self._hosts[host] = ((addr[0], int(payload["port"])), fingerprint)
        return wire.WELCOME, {"ok": True, "error": ""}

    def _spawn_hosts(self) -> None:
        driver_addr = self.transport.local_address
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "0"
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else os.pathsep.join([src_dir, existing]))
        sink = None if self.inherit_output else subprocess.DEVNULL
        for host in range(1, self.spec.num_hosts):
            command = [self.python, "-m", "repro", "cluster",
                       "--serve-host", str(host),
                       "--driver", f"{driver_addr[0]}:{driver_addr[1]}",
                       "--spec", self.spec.to_json()]
            self._processes.append(subprocess.Popen(
                command, env=env, stdout=sink, stderr=sink))

    def _await_hosts(self, join_timeout: float) -> None:
        expected = set(range(1, self.spec.num_hosts))
        deadline = time.monotonic() + join_timeout
        while set(self._hosts) != expected:
            if self._host_errors:
                raise RuntimeError("; ".join(self._host_errors))
            if time.monotonic() > deadline:
                missing = sorted(expected - set(self._hosts))
                raise RuntimeError(
                    f"hosts {missing} did not join within "
                    f"{join_timeout:.0f}s")
            time.sleep(0.05)
        for host, (addr, _fingerprint) in self._hosts.items():
            for peer_id in peers_for_host(self.network, host,
                                          self.spec.num_hosts):
                self.transport.add_route(peer_id, addr)

    def close(self) -> None:
        """Dismiss the hosts, reap the processes, free the socket."""
        if self.transport is not None:
            for addr, _fingerprint in self._hosts.values():
                self.transport.send_control(wire.BYE, {}, addr)
        deadline = time.monotonic() + 3.0
        for process in self._processes:
            try:
                process.wait(max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
        self._processes = []
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        if self.network is not None and self.sim_transport is not None:
            # Leave the network usable in-process (e.g. for a simulator
            # comparison pass after the cluster run).
            self.network.attach_transport(self.sim_transport)
            self.sim_transport = None

    def __enter__(self) -> "ClusterDriver":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def run_query(self, origin: int,
                  query: Union[str, Sequence[str]],
                  refine: Optional[bool] = None):
        """One synchronous query over UDP; returns ``(results, trace)``."""
        return self.network.query(origin, query, refine=refine)

    def run_query_set(self, queries: Sequence[Union[str, Sequence[str]]],
                      origins: Optional[Sequence[int]] = None,
                      refine: Optional[bool] = None) -> List[tuple]:
        """Run ``queries`` back to back; origins round-robin if given."""
        peer_ids = sorted(self.network.peer_ids())
        outputs = []
        for index, query in enumerate(queries):
            if origins is not None:
                origin = origins[index % len(origins)]
            else:
                origin = peer_ids[index % len(peer_ids)]
            outputs.append(self.run_query(origin, query, refine=refine))
        return outputs

    def run_open_workload(self, queries: Sequence[Union[str,
                                                        Sequence[str]]],
                          origins: Optional[Sequence[int]] = None,
                          arrival_rate: float = 20.0,
                          refine: Optional[bool] = None,
                          timeout: float = 60.0) -> List[QueryJob]:
        """Overlapping queries through the async runtime, over UDP.

        Mirrors :meth:`AlvisNetwork.run_queries`: Poisson arrivals at
        ``arrival_rate`` per (now wall-clock) second, every query's
        L3/L4 path executed by the event-kernel dispatchers — driven by
        a :class:`RealtimeKernel` instead of ``simulator.run()``.
        Returns the completed jobs in submission order.
        """
        if arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {arrival_rate}")
        network = self.network
        rng = make_rng(self.spec.seed, "udp-workload",
                       self._workload_streams)
        self._workload_streams += 1
        peer_ids = sorted(network.peer_ids())
        submissions = []
        arrival = 0.0
        for index, query in enumerate(queries):
            arrival += rng.expovariate(arrival_rate)
            if origins is not None:
                origin = origins[index % len(origins)]
            else:
                origin = rng.choice(peer_ids)
            submissions.append((arrival, origin, query))
        saved_config = network.config
        network.config = saved_config.with_overrides(
            async_queries=True,
            request_timeout=self.spec.request_timeout)
        jobs: List[QueryJob] = []
        kernel = RealtimeKernel(network.simulator, self.transport)
        try:
            kernel.start()

            def submit_all() -> None:
                for delay, origin, query in submissions:
                    network.simulator.schedule(
                        delay,
                        lambda origin=origin, query=query:
                            jobs.append(network.runtime.submit(
                                origin, query, refine=refine)))

            kernel.submit(submit_all)
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if (len(jobs) == len(submissions)
                        and all(job.done for job in jobs)):
                    break
                time.sleep(0.01)
            else:
                pending = sum(1 for job in jobs if not job.done)
                raise RuntimeError(
                    f"open workload timed out: {pending} of "
                    f"{len(submissions)} queries still pending after "
                    f"{timeout:.0f}s")
        finally:
            kernel.stop()
            network.config = saved_config
        return jobs

"""Cluster spec, deterministic network construction, and the peer host.

The cluster runs on the **twin-network** idiom: every OS process builds
the *same* :class:`~repro.core.network.AlvisNetwork` from the shared
:class:`ClusterSpec` (same seed, same corpus, same index build), then
swaps the simulated transport for a :class:`~repro.net.udp.UdpTransport`
that registers only the peer slice the process owns.  Identical builds
mean a probe served by host 2 answers from exactly the state the driver
would have consulted in the simulator — which is what makes the
cross-backend equivalence assertion (same seed, same top-k) possible.
Construction determinism is *verified*, not assumed: every host reports
a :func:`state_fingerprint` during the join handshake and the driver
refuses hosts whose digest differs from its own.

Peer ownership is positional — ``sorted(peer_ids)[i]`` belongs to host
``i % num_hosts`` — so the assignment needs no coordination, and host 0
(the driver process) always owns a slice too.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import AlvisConfig
from repro.core.fingerprint import state_fingerprint as _state_fingerprint
from repro.core.network import AlvisNetwork
from repro.corpus.loader import sample_documents
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.net import wire
from repro.net.udp import UdpTransport

__all__ = ["ClusterSpec", "PeerProcessHost", "build_network",
           "peers_for_host", "state_fingerprint"]


@dataclass
class ClusterSpec:
    """Everything a process needs to rebuild the shared network state.

    Serialized to JSON and passed to host subprocesses on their command
    line, so every field must stay JSON-representable.
    """

    num_peers: int = 10
    num_hosts: int = 2
    seed: int = 1234
    #: ``0`` indexes the built-in sample collection; otherwise a
    #: synthetic corpus of this many documents.
    num_docs: int = 0
    vocabulary_size: int = 600
    mode: str = "hdk"
    #: Per-request UDP timeout (wall-clock seconds).
    request_timeout: float = 5.0
    #: ``AlvisConfig.with_overrides`` keyword arguments.
    config_overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.num_hosts < 1:
            raise ValueError(
                f"num_hosts must be >= 1, got {self.num_hosts}")
        if self.num_peers < self.num_hosts:
            raise ValueError(
                f"need at least one peer per host: {self.num_peers} "
                f"peers over {self.num_hosts} hosts")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        return cls(**json.loads(text))


def build_network(spec: ClusterSpec) -> AlvisNetwork:
    """Build the deterministic network every cluster process shares."""
    config = AlvisConfig()
    if spec.config_overrides:
        config = config.with_overrides(**spec.config_overrides)
    network = AlvisNetwork(num_peers=spec.num_peers, config=config,
                           seed=spec.seed)
    if spec.num_docs > 0:
        corpus = SyntheticCorpus(SyntheticCorpusConfig(
            num_documents=spec.num_docs,
            vocabulary_size=spec.vocabulary_size,
            seed=spec.seed))
        documents = corpus.documents()
    else:
        documents = sample_documents()
    network.distribute_documents(documents)
    network.build_index(mode=spec.mode)
    return network


def peers_for_host(network: AlvisNetwork, host_index: int,
                   num_hosts: int) -> List[int]:
    """The peer ids owned by ``host_index`` (positional assignment)."""
    ordered = sorted(network.peer_ids())
    return [peer_id for position, peer_id in enumerate(ordered)
            if position % num_hosts == host_index]


# Canonical implementation lives in repro.core.fingerprint (the digest
# walks only core state, and the scale-sweep legs need it without
# reaching up into the cluster layer); re-exported here because the
# join handshake is its original home.
state_fingerprint = _state_fingerprint


class PeerProcessHost:
    """One cluster process serving its slice of peers over UDP.

    ``serve()`` builds the twin network, registers the owned peers on a
    fresh :class:`UdpTransport`, then runs the join handshake: it
    resends ``__hello__`` (host index, port, state fingerprint) to the
    driver until the driver's ``__welcome__`` arrives, and serves
    requests until ``__bye__`` (or until the driver kills the process).
    Incoming protocol requests are handled entirely by the transport's
    loop thread; the serve thread just parks.
    """

    def __init__(self, spec: ClusterSpec, host_index: int,
                 driver_address: Tuple[str, int],
                 bind_host: str = "127.0.0.1"):
        if not 0 < host_index < spec.num_hosts:
            raise ValueError(
                f"host_index must be in [1, {spec.num_hosts}), got "
                f"{host_index} (host 0 is the driver process)")
        self.spec = spec
        self.host_index = host_index
        self.driver_address = (driver_address[0], int(driver_address[1]))
        self.bind_host = bind_host
        self._welcomed = threading.Event()
        self._stopped = threading.Event()
        self._welcome_error: Optional[str] = None

    def serve(self, join_timeout: float = 30.0,
              serve_timeout: Optional[float] = None) -> int:
        """Run the host until the driver says goodbye; returns exit code."""
        network = build_network(self.spec)
        fingerprint = state_fingerprint(network)
        transport = UdpTransport(
            metrics=network.simulator.metrics,
            default_timeout=self.spec.request_timeout,
            bind_host=self.bind_host).start()
        network.attach_transport(transport)
        owned = peers_for_host(network, self.host_index,
                               self.spec.num_hosts)
        for peer_id in owned:
            transport.register(peer_id, network.peer(peer_id))

        def on_welcome(payload, _addr):
            if payload.get("ok"):
                self._welcome_error = None
            else:
                self._welcome_error = payload.get("error") or "rejected"
                self._stopped.set()
            self._welcomed.set()
            return None

        def on_bye(_payload, _addr):
            self._stopped.set()
            return None

        transport.on_control(wire.WELCOME, on_welcome)
        transport.on_control(wire.BYE, on_bye)
        hello = {"host": self.host_index,
                 "port": transport.local_address[1],
                 "fingerprint": fingerprint}
        try:
            # Datagrams drop; resend the hello until the driver answers.
            waited = 0.0
            while not self._welcomed.is_set():
                if waited >= join_timeout:
                    return 3
                transport.send_control(wire.HELLO, hello,
                                       self.driver_address)
                self._welcomed.wait(0.5)
                waited += 0.5
            if self._welcome_error is not None:
                return 4
            self._stopped.wait(serve_timeout)
            return 0
        finally:
            transport.close()

"""Wall-clock driver for the discrete-event kernel.

The async query runtime (:mod:`repro.core.runtime`) is written against
the simulator: its dispatchers are procs, its timers are simulator
events, its futures resolve from transport callbacks.  To run that
machinery over real UDP sockets nothing needs rewriting — the event
loop just has to advance in *wall-clock* time instead of jumping from
event to event.  :class:`RealtimeKernel` is that adapter: an asyncio
task on the UDP transport's loop thread that

* executes every simulator event whose timestamp has come due (virtual
  time is anchored to ``time.monotonic()`` at start), then parks the
  virtual clock at the current wall-elapsed time, so ``simulator.now``
  — and therefore every measured ``trace.latency`` — is real elapsed
  seconds;
* sleeps until the next scheduled event, capped at ``max_sleep`` so
  freshly scheduled work is never stranded behind a long timer; and
* wakes immediately on datagram activity (the transport's
  ``on_activity`` hook), because a UDP reply resolves futures that
  typically schedule follow-up events at the current time.

Everything — datagram handlers, simulator events, proc steps — runs on
the single transport loop thread, preserving the simulator's
no-concurrency invariant; the driving (main) thread only reads
``job.done`` flags and must not touch the simulator while the kernel
runs.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Callable, Optional

from repro.net.udp import UdpTransport
from repro.sim.events import Simulator

__all__ = ["RealtimeKernel"]


class RealtimeKernel:
    """Drives a :class:`Simulator` in wall-clock time on a UDP loop."""

    def __init__(self, simulator: Simulator, transport: UdpTransport,
                 max_sleep: float = 0.05):
        if max_sleep <= 0:
            raise ValueError(f"max_sleep must be > 0, got {max_sleep}")
        self.simulator = simulator
        self.transport = transport
        self.max_sleep = max_sleep
        self._wake: Optional[asyncio.Event] = None
        self._task = None            # concurrent.futures.Future
        self._stopped = False

    # ------------------------------------------------------------------

    def start(self) -> "RealtimeKernel":
        """Begin driving the simulator on the transport's loop thread."""
        if self._task is not None:
            raise RuntimeError("kernel already started")
        self._stopped = False
        started = threading.Event()
        self.transport.on_activity = self._wake_from_loop
        self._task = asyncio.run_coroutine_threadsafe(
            self._drive(started), self.transport.loop)
        started.wait(5.0)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the driving task (pending simulator events remain queued)."""
        if self._task is None:
            return
        self._stopped = True
        self.transport.call_in_loop(self._wake_from_loop)
        self._task.result(timeout)
        self._task = None
        self.transport.on_activity = None

    def submit(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the kernel thread (to schedule simulator work)."""
        def work() -> None:
            fn()
            self._wake_from_loop()
        self.transport.call_in_loop(work)

    # ------------------------------------------------------------------

    def _wake_from_loop(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _drive(self, started: threading.Event) -> None:
        self._wake = asyncio.Event()
        started.set()
        anchor_wall = time.monotonic()
        anchor_virtual = self.simulator.now
        queue = self.simulator.queue
        clock = self.simulator.clock
        while not self._stopped:
            now_virtual = anchor_virtual + (time.monotonic() - anchor_wall)
            # Run everything due.  Events are popped in timestamp order
            # and are never scheduled in the past, so advance_to is safe.
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > now_virtual:
                    break
                event = queue.pop()
                clock.advance_to(event.time)
                event.callback()
                self.simulator._events_processed += 1
            # Park the clock at wall-elapsed virtual time so latency
            # measurements (clock.now deltas) report real seconds.
            if now_virtual > clock.now:
                clock.advance_to(now_virtual)
            next_time = queue.peek_time()
            if next_time is None:
                delay = self.max_sleep
            else:
                delay = min(max(next_time - now_virtual, 0.0),
                            self.max_sleep)
            try:
                await asyncio.wait_for(self._wake.wait(),
                                       timeout=max(delay, 0.001))
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
        self._wake = None

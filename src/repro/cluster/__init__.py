"""Process layer: real multi-process UDP clusters (opt-in).

Hosts N peers per OS process over the :mod:`repro.net.udp` backend while
the simulator remains the default everywhere else.  See
:class:`~repro.cluster.host.ClusterSpec` for the shared deterministic
build, :class:`~repro.cluster.driver.ClusterDriver` for the process that
spawns hosts and issues queries, and
:class:`~repro.cluster.realtime.RealtimeKernel` for how the unchanged
async runtime is driven in wall-clock time.
"""

from repro.cluster.driver import ClusterDriver
from repro.cluster.host import (
    ClusterSpec,
    PeerProcessHost,
    build_network,
    peers_for_host,
    state_fingerprint,
)
from repro.cluster.realtime import RealtimeKernel

__all__ = [
    "ClusterDriver",
    "ClusterSpec",
    "PeerProcessHost",
    "RealtimeKernel",
    "build_network",
    "peers_for_host",
    "state_fingerprint",
]

"""Declarative open-workload specs for the async query runtime.

``AlvisNetwork.run_queries`` historically took a positional-kwarg soup
(queries, origins, arrival_rate); a :class:`Workload` names the three
independent choices instead:

* the **arrival process** (:class:`PoissonArrivals` — exponential
  interarrival gaps, i.e. a Poisson open workload),
* the **origin policy** (:class:`UniformOrigins` draws a live peer per
  query, :class:`RoundRobinOrigins` cycles a pinned list),
* the **query source** — the explicit query sequence itself (scenario
  layers generate it from a :class:`~repro.corpus.queries.QueryWorkload`
  pool with drift and pass the materialized list down).

RNG discipline: :meth:`Workload.compile` takes *two* derived streams —
one for arrivals, one for origin selection.  The legacy ``run_queries``
interleaved ``rng.expovariate`` with ``rng.choice`` on a single stream,
so passing explicit ``origins`` (no choice draws) shifted every arrival
time relative to the uniform-origin case; with split streams the arrival
schedule is identical whichever origin policy is plugged in
(``tests/test_core_workload.py`` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple, Union

__all__ = ["ArrivalProcess", "OriginPolicy", "PoissonArrivals",
           "RoundRobinOrigins", "Submission", "UniformOrigins", "Workload"]

#: One query: a raw string (analyzed downstream) or a term sequence.
Query = Union[str, Sequence[str]]


@dataclass(frozen=True)
class Submission:
    """One compiled arrival: when, from where, and what to ask."""

    at: float           #: arrival time, relative to the workload start
    origin: int         #: submitting peer
    query: Query


class ArrivalProcess(Protocol):
    """Generates interarrival gaps for an open workload."""

    def gaps(self, rng: random.Random, count: int) -> List[float]:
        """Return ``count`` successive interarrival gaps (seconds)."""
        ...


class OriginPolicy(Protocol):
    """Chooses the submitting peer for each query of a workload."""

    def pick(self, rng: random.Random, index: int,
             peer_ids: Sequence[int]) -> int:
        """The origin peer for query ``index``."""
        ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential interarrival gaps: ``rate`` arrivals per virtual second."""

    rate: float = 50.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {self.rate}")

    def gaps(self, rng: random.Random, count: int) -> List[float]:
        return [rng.expovariate(self.rate) for _ in range(count)]


@dataclass(frozen=True)
class UniformOrigins:
    """Each query originates at a peer drawn uniformly from all peers."""

    def pick(self, rng: random.Random, index: int,
             peer_ids: Sequence[int]) -> int:
        return rng.choice(peer_ids)


@dataclass(frozen=True)
class RoundRobinOrigins:
    """Queries cycle through a pinned origin list (no RNG draws)."""

    origins: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "origins", tuple(self.origins))
        if not self.origins:
            raise ValueError("origins must not be empty")

    def pick(self, rng: random.Random, index: int,
             peer_ids: Sequence[int]) -> int:
        return self.origins[index % len(self.origins)]


@dataclass(frozen=True)
class Workload:
    """An open workload: queries + arrival process + origin policy.

    Submit with :meth:`AlvisNetwork.run_workload` (or
    :meth:`~AlvisNetwork.submit_workload` to overlap several workloads
    on one simulator run).
    """

    queries: Tuple[Query, ...]
    arrival: ArrivalProcess = field(default_factory=PoissonArrivals)
    origins: OriginPolicy = field(default_factory=UniformOrigins)

    def __post_init__(self):
        object.__setattr__(self, "queries", tuple(self.queries))

    def compile(self, arrival_rng: random.Random,
                origin_rng: random.Random,
                peer_ids: Sequence[int],
                start: float = 0.0) -> List[Submission]:
        """Materialize the arrival schedule.

        ``arrival_rng`` and ``origin_rng`` must be *distinct* derived
        streams so the arrival schedule never depends on how many random
        draws the origin policy makes.
        """
        gaps = self.arrival.gaps(arrival_rng, len(self.queries))
        submissions: List[Submission] = []
        arrival = start
        for index, query in enumerate(self.queries):
            arrival += gaps[index]
            origin = self.origins.pick(origin_rng, index, peer_ids)
            submissions.append(Submission(arrival, origin, query))
        return submissions

"""Compatibility shim: the protocol kinds live in :mod:`repro.net.protocol`.

The kind constants moved down to the ``net`` layer so the binary wire
codec (:mod:`repro.net.wire`) can key its schemas on them without an
upward import into ``core`` (the layering invariant ``repro lint``
enforces as RPL050).  Every historical ``repro.core.protocol`` import
keeps working through this re-export.
"""

from __future__ import annotations

from repro.net.protocol import *            # noqa: F401,F403
from repro.net.protocol import __all__      # noqa: F401

"""Replication of global-index entries (crash fault tolerance).

Graceful departures hand their key range to the successor
(:mod:`repro.dht.churn`); a *crash* does not get that chance.  Deployed
DHTs therefore replicate every stored entry on the owner's first ``r``
successors, and after a failure the first live successor — which, by ring
geometry, is the new owner of the crashed peer's range — *promotes* its
replicas to primary entries.

Protocol pieces:

* ``ReplicaPush`` — owner → successor: full entries for a key batch
  (byte-accounted; the steady-state replication cost).
* :meth:`ReplicationManager.replicate_all` — push every primary entry to
  the ``r`` current successors (run after index construction and after
  membership changes).
* :meth:`ReplicationManager.repair` — every peer promotes the replicas it
  now owns and re-replicates them; run after failures are detected.

The demo paper's network must survive peers disappearing mid-demo; this
module plus :meth:`AlvisNetwork.fail_peer` reproduce that behaviour, and
``tests/test_core_replication.py`` asserts query results survive crashes
up to ``r`` simultaneous failures.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.core import protocol
from repro.core.global_index import KeyEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["ReplicationManager"]

#: Message kind for replica transfer (re-exported for compatibility; the
#: constant itself lives with the other kinds in repro.net.protocol so
#: the handler table in AlvisPeer and this module share one definition).
REPLICA_PUSH = protocol.REPLICA_PUSH


class ReplicationManager:
    """Drives replica placement and post-failure repair on a network."""

    def __init__(self, network: "AlvisNetwork", replication_factor: int = 2):
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got "
                f"{replication_factor}")
        self.network = network
        self.replication_factor = replication_factor
        self.replicas_pushed = 0
        self.entries_promoted = 0

    # ------------------------------------------------------------------

    def _successors_of(self, peer_id: int) -> List[int]:
        """The first ``r`` live successors of ``peer_id`` on the ring."""
        ring = self.network.ring
        members = list(ring.member_ids)
        if len(members) <= 1:
            return []
        index = members.index(peer_id)
        successors = []
        for offset in range(1, min(self.replication_factor,
                                   len(members) - 1) + 1):
            successors.append(members[(index + offset) % len(members)])
        return successors

    # ------------------------------------------------------------------

    def replicate_all(self) -> int:
        """Push every primary entry to its owner's successor set.

        Returns the number of (entry, replica-target) pushes.  Pushes are
        idempotent: replicas are installed keyed by Key, so repeating the
        call refreshes rather than duplicates.
        """
        pushes = 0
        for peer in self.network.peers():
            entries = [entry for entry in peer.fragment
                       if entry.postings or entry.contributors]
            if not entries:
                continue
            for successor in self._successors_of(peer.peer_id):
                payload = {"entries": entries, "primary": peer.peer_id}
                self.network.send(peer.peer_id, successor, REPLICA_PUSH,
                                  payload)
                pushes += len(entries)
        self.replicas_pushed += pushes
        return pushes

    def repair(self) -> int:
        """Promote replicas whose key range this peer now owns.

        Call after one or more crashes (the network's failure detector
        would trigger this in a deployment).  Returns the number of
        promoted entries.  Promoted entries are re-replicated so the
        replication factor is restored.
        """
        ring = self.network.ring
        promoted = 0
        for peer in self.network.peers():
            to_promote: List[KeyEntry] = []
            for entry in list(peer.replica_store.values()):
                owner = ring.successor_of(entry.key.key_id)
                if owner != peer.peer_id:
                    continue
                if peer.fragment.get(entry.key) is not None:
                    # Already primary here (e.g. graceful handover beat
                    # the repair pass); drop the stale replica.
                    del peer.replica_store[entry.key]
                    continue
                to_promote.append(entry)
            for entry in to_promote:
                peer.fragment.install(entry)
                del peer.replica_store[entry.key]
                promoted += 1
        self.entries_promoted += promoted
        if promoted:
            self.replicate_all()
        return promoted

    # ------------------------------------------------------------------

    def replica_counts(self) -> Dict[int, int]:
        """{peer id: replicas held} — replication storage accounting."""
        return {peer.peer_id: len(peer.replica_store)
                for peer in self.network.peers()}

"""The unified membership-fault surface of :class:`AlvisNetwork`.

Every way a peer population can degrade lives behind one facade
(``network.faults``), with one naming scheme:

* :meth:`FaultInjector.churn` — a :class:`~repro.dht.churn.ChurnProcess`
  wired for index handover (random joins/leaves on its own derived RNG
  stream);
* :meth:`FaultInjector.crash` — fail-stop: no handover, no goodbye
  (the historical ``AlvisNetwork.fail_peer``);
* :meth:`FaultInjector.graceful_depart` — a *chosen* peer leaves
  cleanly, handing its key range to its ring successor (byte-accounted
  ``IndexHandover`` traffic), like EldenRingTorrent's shutdown
  redistribution;
* :meth:`FaultInjector.partition` / :meth:`FaultInjector.heal` —
  split the transport into non-communicating groups and reconnect;
* :meth:`FaultInjector.degrade` — peer heterogeneity: a slower
  service rate and/or a smaller probe-cache budget for one peer.

``AlvisNetwork.churn()`` and ``AlvisNetwork.fail_peer()`` delegate here
unchanged (``tests/test_core_faults.py`` pins the equivalence), so the
facade is a pure re-surfacing, not a behavior change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.cache import LRUByteCache
from repro.dht.churn import ChurnProcess
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["FaultInjector"]


class FaultInjector:
    """Membership and heterogeneity faults against one network."""

    def __init__(self, network: "AlvisNetwork"):
        self._network = network

    # ------------------------------------------------------------------
    # Random churn
    # ------------------------------------------------------------------

    def churn(self) -> ChurnProcess:
        """A churn process wired for index handover on this network.

        Each call hands out a fresh process with its own derived RNG
        stream — a second process never replays the first one's
        join/leave sequence.  Not supported with ``virtual_nodes > 1``
        (handover would need to vacate several ring positions
        atomically, which this implementation does not model).
        """
        network = self._network
        if network.virtual_nodes > 1:
            raise NotImplementedError(
                "churn is not supported with virtual_nodes > 1")
        stream = network._churn_streams
        network._churn_streams += 1
        # The first process keeps the historical "churn" label (seed
        # compatibility); later ones get distinct derived streams instead
        # of replaying the same join/leave sequence.
        labels = ("churn",) if stream == 0 else ("churn", stream)
        return ChurnProcess(network.ring,
                            make_rng(network.seed, *labels),
                            on_handover=network._handover)

    # ------------------------------------------------------------------
    # Single-peer departures
    # ------------------------------------------------------------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop ``peer_id``: no handover, no goodbye.

        Its index fragment, replicas and documents vanish with it; the
        ring and routing tables converge to the survivors.  In-flight
        async requests addressed to it resolve as ``"dropped"``
        outcomes (never exceptions).  Use
        :class:`repro.core.replication.ReplicationManager` beforehand to
        make the global index survive.
        """
        network = self._network
        if peer_id not in network._peers:
            raise KeyError(f"peer {peer_id} not present")
        if network.num_peers <= 1:
            raise ValueError("cannot crash the last peer")
        if network.virtual_nodes > 1:
            raise NotImplementedError(
                "fail_peer is not supported with virtual_nodes > 1")
        network.ring.remove_node(peer_id)
        network.ring.maintain()
        network.transport.unregister(peer_id)
        del network._peers[peer_id]
        network.note_index_update()

    def graceful_depart(self, peer_id: int) -> None:
        """``peer_id`` leaves cleanly: its key range is handed to its
        ring successor (byte-accounted ``IndexHandover`` messages)
        before the endpoint detaches.

        The deterministic, single-peer form of
        :meth:`~repro.dht.churn.ChurnProcess.leave` — no RNG draw, so
        scenario scripts can target a specific peer.
        """
        network = self._network
        if peer_id not in network._peers:
            raise KeyError(f"peer {peer_id} not present")
        if network.num_peers <= 1:
            raise ValueError("cannot remove the last peer")
        if network.virtual_nodes > 1:
            raise NotImplementedError(
                "graceful departure is not supported with "
                "virtual_nodes > 1")
        ring = network.ring
        predecessor = ring.predecessor_of(peer_id)
        ring.remove_node(peer_id)
        ring.maintain()
        new_owner = ring.successor_of(peer_id)
        # _handover moves the fragment, accounts the bytes and — because
        # the ring no longer contains peer_id — detaches the endpoint.
        network._handover(peer_id, new_owner, predecessor, peer_id)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def partition(self, *groups: Iterable[int]) -> None:
        """Split the network: each ``groups`` argument is an iterable of
        peer ids forming one side; peers not listed form the implicit
        majority side.

        Cross-group messages (and in-flight replies) are dropped by the
        transport: synchronous requests raise
        :class:`~repro.net.transport.DeliveryError` (surfaced as
        ``DROPPED`` probes by the query engine), async requests resolve
        as ``"dropped"`` outcomes.  Replaces any previous partition.
        """
        mapping = {}
        for index, group in enumerate(groups, start=1):
            for peer_id in group:
                mapping[peer_id] = index
        self._set_partition(mapping)

    def heal(self) -> None:
        """Reconnect all partitioned groups."""
        transport = self._network.transport
        clear = getattr(transport, "clear_partition", None)
        if clear is None:
            raise NotImplementedError(
                f"{type(transport).__name__} does not support "
                f"partition fault injection")
        clear()

    @property
    def partitioned(self) -> bool:
        """True while a transport partition is in effect."""
        return bool(getattr(self._network.transport, "partition_active",
                            False))

    def _set_partition(self, mapping) -> None:
        transport = self._network.transport
        setter = getattr(transport, "set_partition", None)
        if setter is None:
            raise NotImplementedError(
                f"{type(transport).__name__} does not support "
                f"partition fault injection")
        setter(mapping)

    # ------------------------------------------------------------------
    # Heterogeneity
    # ------------------------------------------------------------------

    def degrade(self, peer_id: int,
                service_rate: Optional[float] = None,
                cache_bytes: Optional[int] = None) -> None:
        """Make ``peer_id`` a weak peer.

        ``service_rate`` overrides its endpoint's request service rate
        (requires the bounded-service-queue model, i.e.
        ``config.service_rate > 0``); ``cache_bytes`` replaces its probe
        cache with a smaller (possibly zero) byte budget, dropping the
        current contents.
        """
        network = self._network
        if peer_id not in network._peers:
            raise KeyError(f"peer {peer_id} not present")
        if service_rate is not None:
            setter = getattr(network.transport, "set_service_rate", None)
            if setter is None:
                raise NotImplementedError(
                    f"{type(network.transport).__name__} does not "
                    f"support service-rate overrides")
            setter(peer_id, service_rate)
        if cache_bytes is not None:
            if cache_bytes < 0:
                raise ValueError(
                    f"cache_bytes must be >= 0, got {cache_bytes}")
            peer = network.peer(peer_id)
            peer.probe_cache = LRUByteCache(
                cache_bytes, ttl=network.config.cache_ttl)

"""The batched + cached query execution engine (L3/L4 hot path).

Per-probe execution (one DHT lookup plus one ``ProbeKey`` round trip per
lattice node) dominates AlvisP2P's retrieval cost; the paper's
scalability argument rests on keeping this traffic sublinear in query
volume.  The engine makes the path batch-first and cache-aware while
producing outcomes identical to the per-probe path:

* **frontier batching** — all DHT lookups of one lattice level travel in
  a single shared routed round (:meth:`repro.dht.ring.DHTRing.lookup_many`
  amortizes finger-table traversals across the batch), and probes bound
  for the same responsible peer share one ``ProbeBatch`` message.  Safe
  because domination-based exclusions only ever cover strictly smaller
  keys, so a level's results cannot exclude its own siblings;

* **probe-result caching** — a byte-budgeted LRU cache per querying peer
  (:class:`repro.core.cache.LRUByteCache`) short-circuits repeated
  probes together with their lookups.  Entries are invalidated wholesale
  when the ring membership or the global index changes, and optionally
  expired after a logical TTL.  Inactive under QDI, whose decentralized
  popularity monitoring requires the responsible peers to observe every
  probe (see :meth:`QueryEngine._origin_cache`);

* **top-k early termination** — between lattice levels, exploration
  stops once the BM25 score ceiling of the still-unprobed keys cannot
  lift any document into the current top-k (threshold termination in the
  spirit of Akbarinia et al.'s top-k query processing).  The ceiling per
  term is the BM25 weight limit ``idf * (k1 + 1)`` computed from the
  best available document-frequency lower bound (cached global dfs plus
  the dfs learned from already-retrieved keys), so unknown terms keep
  the bound conservative.

The per-probe path survives as a compatibility mode (``batch_lookups``
off, ``cache_bytes`` 0): it issues byte-for-byte the same traffic as the
pre-engine implementation, which keeps the seed benchmarks comparable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core import protocol
from repro.core.cache import LRUByteCache
from repro.core.keys import Key
from repro.core.lattice import ExplorationOutcome, LatticeExplorer
from repro.core.ranking import rank_with_margin
from repro.ir.postings import PostingList
from repro.ir.scoring import BM25Parameters, bm25_weight_ceiling
from repro.net.transport import DeliveryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork
    from repro.core.retrieval import QueryTrace

__all__ = ["QueryEngine"]

#: Fixed per-entry bookkeeping charged against the cache byte budget.
_CACHE_ENTRY_OVERHEAD = 16

#: A probe result as the engine moves it around: (found, postings).  A
#: probe lost to churn is the 3-tuple ``(False, None, True)`` — the
#: explorer records it as :attr:`ProbeStatus.DROPPED`.
ProbeResult = Tuple[bool, Optional[PostingList]]

#: The churn-drop marker handed to the lattice explorer.
DROPPED_PROBE = (False, None, True)


class QueryEngine:
    """Executes lattice exploration against the network for one query."""

    def __init__(self, network: "AlvisNetwork"):
        self.network = network
        self.explorer = LatticeExplorer(
            prune_on_truncated=network.config.prune_on_truncated)

    # ------------------------------------------------------------------

    def execute(self, origin: int, terms: List[str], trace: "QueryTrace",
                rank_k: int) -> Tuple[ExplorationOutcome, Dict[Key, int]]:
        """Explore the query lattice of ``terms`` from peer ``origin``.

        All traffic is accounted into ``trace``; ``rank_k`` is the
        candidate-pool size the caller will rank (``result_k``, enlarged
        when refinement re-scores a bigger pool) and parameterizes the
        early-termination test.  Returns the exploration outcome plus
        the resolved owner of every key that was actually looked up
        (cache hits skip resolution — and, for QDI, the corresponding
        feedback, which would be redundant re-sends anyway).
        """
        network = self.network
        config = network.config
        owners: Dict[Key, int] = {}
        #: level size -> probe round-trips, for the latency model.
        probe_rtts: Dict[int, List[float]] = {}
        cache = self._origin_cache(origin)

        def cache_lookup(key: Key) -> Optional[ProbeResult]:
            return self.cache_get(cache, trace, key)

        def cache_store(key: Key, found: bool,
                        postings: Optional[PostingList]) -> None:
            self.cache_put(cache, key, found, postings)

        def probe_one(key: Key) -> ProbeResult:
            """The per-probe compatibility path (seed-identical traffic)."""
            cached = cache_lookup(key)
            if cached is not None:
                return cached
            try:
                owner, hops = network.lookup_owner(origin, key.key_id)
            except DeliveryError:
                # A routing hop hit a departed peer: give up on this
                # probe gracefully instead of crashing the query.
                return DROPPED_PROBE
            owners[key] = owner
            trace.lookup_hops += hops
            payload = {"key_terms": list(key.terms)}
            try:
                reply, rtt = network.send(origin, owner, protocol.PROBE_KEY,
                                          payload)
            except DeliveryError:
                # The owner departed between resolution and send (stale
                # lookup cache, or churn interleaved with the query).
                trace.request_messages += 1
                return DROPPED_PROBE
            trace.request_messages += 1
            probe_rtts.setdefault(len(key), []).append(rtt)
            if reply is None or not reply["found"]:
                result: ProbeResult = (False, None)
            else:
                result = (True, reply["postings"])
            cache_store(key, *result)
            return result

        def probe_frontier(frontier: List[Key]) -> List[ProbeResult]:
            """One batched round for a whole lattice level."""
            results: Dict[Key, ProbeResult] = {}
            misses: List[Key] = []
            for key in frontier:
                cached = cache_lookup(key)
                if cached is not None:
                    results[key] = cached
                else:
                    misses.append(key)
            if misses:
                try:
                    resolved, hop_messages = network.lookup_owners(
                        origin, [key.key_id for key in misses])
                except DeliveryError:
                    for key in misses:
                        results[key] = DROPPED_PROBE
                    return [results[key] for key in frontier]
                trace.lookup_hops += hop_messages
                by_owner: Dict[int, List[Key]] = {}
                for key in misses:
                    owner = resolved[key.key_id]
                    owners[key] = owner
                    by_owner.setdefault(owner, []).append(key)
                level = len(frontier[0])
                for owner, batch in by_owner.items():
                    payload = {"keys": [list(key.terms) for key in batch]}
                    try:
                        reply, rtt = network.send(origin, owner,
                                                  protocol.PROBE_BATCH,
                                                  payload)
                    except DeliveryError:
                        trace.request_messages += 1
                        for key in batch:
                            results[key] = DROPPED_PROBE
                        continue
                    trace.request_messages += 1
                    probe_rtts.setdefault(level, []).append(rtt)
                    if reply is None:
                        items = [{"found": False, "postings": None}
                                 for _key in batch]
                    else:
                        items = reply["results"]
                    for key, item in zip(batch, items):
                        found = bool(item["found"])
                        postings = item["postings"] if found else None
                        results[key] = (found, postings)
                        cache_store(key, found, postings)
            return [results[key] for key in frontier]

        should_stop = (self._make_stop_test(origin, Key(terms), rank_k)
                       if config.topk_early_stop else None)
        if config.batch_lookups:
            outcome = self.explorer.explore(terms,
                                            probe_level=probe_frontier,
                                            should_stop=should_stop)
        else:
            outcome = self.explorer.explore(terms, probe=probe_one,
                                            should_stop=should_stop)
        # Latency: probes within one lattice level run concurrently in
        # the deployed client, so a level costs its slowest probe.
        if config.parallel_probes:
            trace.rtt_estimate += sum(max(rtts)
                                      for rtts in probe_rtts.values())
        else:
            trace.rtt_estimate += sum(rtt for rtts in probe_rtts.values()
                                      for rtt in rtts)
        return outcome, owners

    # ------------------------------------------------------------------
    # Probe-cache plumbing (shared with the async runtime)
    # ------------------------------------------------------------------

    def cache_get(self, cache: Optional[LRUByteCache], trace: "QueryTrace",
                  key: Key) -> Optional[ProbeResult]:
        """Consult the origin's probe cache, accounting hit/miss."""
        if cache is None:
            return None
        hit, value = cache.get(key)
        if hit:
            trace.cache_hits += 1
            return value
        trace.cache_misses += 1
        return None

    def cache_put(self, cache: Optional[LRUByteCache], key: Key,
                  found: bool, postings: Optional[PostingList]) -> None:
        """Store one probe outcome with its byte-accounted size."""
        if cache is None:
            return
        size = (key.wire_size() + _CACHE_ENTRY_OVERHEAD
                + (postings.wire_size() if postings is not None else 1))
        cache.put(key, (found, postings), size)

    # ------------------------------------------------------------------

    def _origin_cache(self, origin: int) -> Optional[LRUByteCache]:
        """The origin peer's probe cache, freshened for this query.

        Disabled under QDI: on-demand indexing is driven by owner-side
        popularity monitoring, which must see every probe — absorbing
        probes at the querying peer would starve hot keys' counters
        until maintenance evicts them, only for the next cold query to
        re-activate them (a permanent evict/harvest oscillation).
        """
        network = self.network
        if network.config.cache_bytes <= 0 or network.mode == "qdi":
            return None
        cache = network.peer(origin).probe_cache
        cache.ensure_version((network.ring.membership_epoch,
                              network.index_version))
        cache.tick()
        return cache

    def _make_stop_test(self, origin: int, query: Key, rank_k: int
                        ) -> Optional[Callable[[ExplorationOutcome,
                                                List[Key]], bool]]:
        """Build the top-k threshold termination test.

        Requires the origin's cached collection totals (for idf); without
        them no bound is computable and exploration never stops early.
        """
        stats_cache = self.network.peer(origin).stats_cache
        if stats_cache.totals is None:
            return None
        n = max(stats_cache.totals.num_documents, 1)
        # The peers' publish-time scoring runs on the default BM25
        # parameters (no knob plumbs custom ones through the network
        # yet), so the ceiling uses the same defaults.
        params = BM25Parameters()

        def term_ceiling(df_lower_bound: int) -> float:
            return bm25_weight_ceiling(df_lower_bound, n, params)

        def should_stop(outcome: ExplorationOutcome,
                        remaining: List[Key]) -> bool:
            _top, kth, runner_up = rank_with_margin(outcome.retrieved,
                                                    query, rank_k)
            if kth <= 0.0:
                return False          # top-k not even full yet
            df_bounds: Dict[str, int] = {}
            for key, postings in outcome.retrieved.items():
                # A conjunction's result-set size lower-bounds each of
                # its terms' dfs — free df knowledge from this query.
                for term in key.terms:
                    df_bounds[term] = max(df_bounds.get(term, 0),
                                          postings.global_df)
            remaining_terms = set()
            for key in remaining:
                remaining_terms.update(key.terms)
            # Any document (seen outside the top-k, or never seen) can
            # gain at most one ceiling per remaining term: disjoint
            # covers touch each term once.
            potential = sum(
                term_ceiling(max(df_bounds.get(term, 0),
                                 stats_cache.df(term)))
                for term in remaining_terms)
            return runner_up + potential < kth

        return should_stop

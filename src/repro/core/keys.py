"""Keys: indexing-term combinations.

A key is an *unordered set* of index terms ({a,b} == {b,a}).  Keys of size
one are the classic single-term index entries; larger keys are the
combinations HDK and QDI add.  Canonical form is the sorted tuple of terms,
which makes hashing, wire encoding and subset enumeration deterministic.

Keys are **interned**: constructing ``Key(terms)`` returns the one shared
instance per canonical term tuple from the process-global
:class:`KeyTable`.  Routing, caches and wire accounting therefore stop
re-hashing tuple-of-str on every hop — the SHA-1 DHT id, the Python
hash, the term frozenset and the wire size are all computed at most once
per distinct key and cached on the singleton.  Each interned key also
carries a dense integer :attr:`Key.kid`, usable as an array index.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.dht.hashing import hash_terms

__all__ = ["Key", "KeyTable", "KEY_TABLE"]


class KeyTable:
    """Process-global intern table mapping canonical term tuples to keys.

    ``kid`` numbers are dense (0, 1, 2, ...) in interning order and stay
    unique for the lifetime of the process even across :meth:`clear` —
    clearing only drops the tuple->Key mapping (so tests and benchmark
    legs can release memory / isolate themselves), it never recycles
    ids, which keeps stale keys from colliding with fresh ones.
    """

    __slots__ = ("_by_terms", "_next_kid")

    def __init__(self):
        self._by_terms: Dict[Tuple[str, ...], "Key"] = {}
        self._next_kid = 0

    def intern(self, canonical: Tuple[str, ...]) -> "Key":
        """Return the shared :class:`Key` for ``canonical`` terms."""
        key = self._by_terms.get(canonical)
        if key is not None:
            return key
        if not canonical:
            raise ValueError("a key needs at least one term")
        if any(not term for term in canonical):
            raise ValueError("key terms must be non-empty strings")
        key = object.__new__(Key)
        object.__setattr__(key, "terms", canonical)
        object.__setattr__(key, "kid", self._next_kid)
        object.__setattr__(key, "_hash", hash(canonical))
        object.__setattr__(key, "_key_id", None)
        object.__setattr__(key, "_term_set", None)
        object.__setattr__(key, "_wire_size", None)
        self._next_kid += 1
        # setdefault keeps interning single-winner even if two threads
        # race on the same tuple (the loser's kid is simply skipped).
        return self._by_terms.setdefault(canonical, key)

    def clear(self) -> None:
        """Drop all interned keys (kid numbering keeps monotonic)."""
        self._by_terms.clear()

    def __len__(self) -> int:
        return len(self._by_terms)


#: The process-global intern table used by ``Key(...)``.
KEY_TABLE = KeyTable()


class Key:
    """An immutable, canonicalized, interned term combination."""

    __slots__ = ("terms", "kid", "_hash", "_key_id", "_term_set",
                 "_wire_size")

    def __new__(cls, terms: Iterable[str]) -> "Key":
        canonical: Tuple[str, ...] = tuple(sorted(set(terms)))
        return KEY_TABLE.intern(canonical)

    # Immutability ------------------------------------------------------

    def __setattr__(self, name, value):
        raise AttributeError("Key is immutable")

    def __reduce__(self):
        # Re-intern on unpickle so value semantics (and identity within
        # the receiving process) survive serialization.
        return (Key, (self.terms,))

    # Value semantics ----------------------------------------------------

    def __eq__(self, other) -> bool:
        if self is other:
            return True  # the common case: interning makes equals identical
        if not isinstance(other, Key):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self.terms)

    def __repr__(self) -> str:
        return "Key({})".format("+".join(self.terms))

    # DHT mapping ---------------------------------------------------------

    @property
    def key_id(self) -> int:
        """Identifier of this key in the DHT id space (cached SHA-1)."""
        key_id: Optional[int] = self._key_id
        if key_id is None:
            key_id = hash_terms(self.terms)
            object.__setattr__(self, "_key_id", key_id)
        return key_id

    def wire_size(self) -> int:
        """Bytes to encode the key in a message payload (cached)."""
        size = self._wire_size
        if size is None:
            size = 4 + sum(2 + len(term.encode("utf-8"))
                           for term in self.terms)
            object.__setattr__(self, "_wire_size", size)
        return size

    # Set algebra ----------------------------------------------------------

    @property
    def term_set(self) -> FrozenSet[str]:
        term_set = self._term_set
        if term_set is None:
            term_set = frozenset(self.terms)
            object.__setattr__(self, "_term_set", term_set)
        return term_set

    def contains(self, other: "Key") -> bool:
        """True if ``other``'s terms are a subset of this key's."""
        return other.term_set <= self.term_set

    def dominates(self, other: "Key") -> bool:
        """True if this key strictly dominates ``other`` in the lattice.

        In the query lattice, a node dominates all its *proper subsets*
        (the part "below" it, cf. Figure 1 of the paper).
        """
        return other.term_set < self.term_set

    def is_disjoint(self, other: "Key") -> bool:
        """True when the two keys share no terms."""
        return self.term_set.isdisjoint(other.term_set)

    def extend(self, term: str) -> "Key":
        """Return the key with one extra term (an HDK *expansion*)."""
        if term in self.terms:
            raise ValueError(f"term {term!r} already in {self!r}")
        return Key(self.terms + (term,))

    def subsets(self, size: int) -> List["Key"]:
        """All sub-keys of exactly ``size`` terms."""
        if not 1 <= size <= len(self.terms):
            return []
        return [Key(combo)
                for combo in itertools.combinations(self.terms, size)]

    def proper_subsets(self) -> List["Key"]:
        """All proper sub-keys, largest first (lattice 'below' this node)."""
        result = []
        for size in range(len(self.terms) - 1, 0, -1):
            result.extend(self.subsets(size))
        return result

    @staticmethod
    def lattice_levels(query_terms: Iterable[str]) -> List[List["Key"]]:
        """The query lattice as levels of decreasing combination size.

        >>> levels = Key.lattice_levels(["a", "b", "c"])
        >>> [len(level) for level in levels]
        [1, 3, 3]
        >>> levels[0][0]
        Key(a+b+c)
        """
        full = Key(query_terms)
        levels: List[List[Key]] = []
        for size in range(len(full), 0, -1):
            levels.append(full.subsets(size))
        return levels

"""Keys: indexing-term combinations.

A key is an *unordered set* of index terms ({a,b} == {b,a}).  Keys of size
one are the classic single-term index entries; larger keys are the
combinations HDK and QDI add.  Canonical form is the sorted tuple of terms,
which makes hashing, wire encoding and subset enumeration deterministic.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Tuple

from repro.dht.hashing import hash_terms

__all__ = ["Key"]


class Key:
    """An immutable, canonicalized term combination."""

    __slots__ = ("terms", "_hash")

    def __init__(self, terms: Iterable[str]):
        canonical: Tuple[str, ...] = tuple(sorted(set(terms)))
        if not canonical:
            raise ValueError("a key needs at least one term")
        if any(not term for term in canonical):
            raise ValueError("key terms must be non-empty strings")
        object.__setattr__(self, "terms", canonical)
        object.__setattr__(self, "_hash", hash(canonical))

    # Immutability ------------------------------------------------------

    def __setattr__(self, name, value):
        raise AttributeError("Key is immutable")

    # Value semantics ----------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Key):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self.terms)

    def __repr__(self) -> str:
        return "Key({})".format("+".join(self.terms))

    # DHT mapping ---------------------------------------------------------

    @property
    def key_id(self) -> int:
        """Identifier of this key in the DHT id space."""
        return hash_terms(self.terms)

    def wire_size(self) -> int:
        """Bytes to encode the key in a message payload."""
        return 4 + sum(2 + len(term.encode("utf-8")) for term in self.terms)

    # Set algebra ----------------------------------------------------------

    @property
    def term_set(self) -> FrozenSet[str]:
        return frozenset(self.terms)

    def contains(self, other: "Key") -> bool:
        """True if ``other``'s terms are a subset of this key's."""
        return other.term_set <= self.term_set

    def dominates(self, other: "Key") -> bool:
        """True if this key strictly dominates ``other`` in the lattice.

        In the query lattice, a node dominates all its *proper subsets*
        (the part "below" it, cf. Figure 1 of the paper).
        """
        return other.term_set < self.term_set

    def is_disjoint(self, other: "Key") -> bool:
        """True when the two keys share no terms."""
        return self.term_set.isdisjoint(other.term_set)

    def extend(self, term: str) -> "Key":
        """Return the key with one extra term (an HDK *expansion*)."""
        if term in self.terms:
            raise ValueError(f"term {term!r} already in {self!r}")
        return Key(self.terms + (term,))

    def subsets(self, size: int) -> List["Key"]:
        """All sub-keys of exactly ``size`` terms."""
        if not 1 <= size <= len(self.terms):
            return []
        return [Key(combo)
                for combo in itertools.combinations(self.terms, size)]

    def proper_subsets(self) -> List["Key"]:
        """All proper sub-keys, largest first (lattice 'below' this node)."""
        result = []
        for size in range(len(self.terms) - 1, 0, -1):
            result.extend(self.subsets(size))
        return result

    @staticmethod
    def lattice_levels(query_terms: Iterable[str]) -> List[List["Key"]]:
        """The query lattice as levels of decreasing combination size.

        >>> levels = Key.lattice_levels(["a", "b", "c"])
        >>> [len(level) for level in levels]
        [1, 3, 3]
        >>> levels[0][0]
        Key(a+b+c)
        """
        full = Key(query_terms)
        levels: List[List[Key]] = []
        for size in range(len(full), 0, -1):
            levels.append(full.subsets(size))
        return levels

"""The AlvisP2P peer: all five layers composed into one endpoint.

A peer simultaneously plays two roles (Section 2):

* it *owns documents* — a local search engine (L5) indexes its shared
  directory, generates index entries for the global index, and answers
  refinement/harvest/document requests about its documents;
* it *maintains a fraction of the global index* — the keys the DHT assigns
  to it, with aggregated truncated posting lists, contributor sets,
  global term statistics and (under QDI) popularity monitoring.

All network-facing behaviour is in :meth:`on_message`, keyed by the
protocol kinds of :mod:`repro.core.protocol`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import protocol
from repro.core.access import AccessControlError, AccessManager, AccessPolicy
from repro.core.cache import LRUByteCache
from repro.core.config import AlvisConfig
from repro.core.global_index import (GlobalIndexFragment, KeyEntry,
                                     PackedKeyEntry)
from repro.core.global_stats import GlobalStatsCache, StatsStore
from repro.core.keys import Key
from repro.core.qdi import QDIManager
from repro.core.services import NetworkServices
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.postings import PackedPostings, PostingList
from repro.ir.search import LocalSearchEngine
from repro.net.message import Message

__all__ = ["AlvisPeer"]


class AlvisPeer:
    """One peer of the AlvisP2P network."""

    def __init__(self, peer_id: int, config: AlvisConfig,
                 analyzer: Optional[Analyzer] = None):
        self.peer_id = peer_id
        self.config = config
        self.engine = LocalSearchEngine(analyzer)
        self.fragment = GlobalIndexFragment(config.truncation_k)
        self.stats_store = StatsStore()
        self.stats_cache = GlobalStatsCache()
        self.access = AccessManager()
        self.qdi: Optional[QDIManager] = None
        self.services: Optional[NetworkServices] = None
        #: Probe-result cache for queries *issued by* this peer (the
        #: query engine's L3/L4 cache); disabled when ``cache_bytes`` is 0.
        self.probe_cache = LRUByteCache(config.cache_bytes,
                                        ttl=config.cache_ttl)
        #: Keys this peer was told to expand in the next HDK round.
        self.pending_expansions: List[Key] = []
        #: Replicas of other peers' entries (crash fault tolerance);
        #: promoted to ``fragment`` by ReplicationManager.repair().
        self.replica_store: Dict[Key, KeyEntry] = {}

    #: Class-level dispatch table (kind -> handler method name).  Shared
    #: by every peer instead of a per-instance dict of bound methods —
    #: at 100k peers the 17 bound-method entries per peer dominate the
    #: per-peer footprint for otherwise-empty peers.
    _HANDLER_NAMES: Dict[str, str] = {
        protocol.LOOKUP_HOP: "_on_lookup_hop",
        protocol.DF_PUBLISH: "_on_df_publish",
        protocol.DF_GET: "_on_df_get",
        protocol.COLLECTION_PUBLISH: "_on_collection_publish",
        protocol.COLLECTION_GET: "_on_collection_get",
        protocol.PUBLISH_KEY: "_on_publish_key",
        protocol.EXPAND_NOTIFY: "_on_expand_notify",
        protocol.PROBE_KEY: "_on_probe_key",
        protocol.PROBE_BATCH: "_on_probe_batch",
        protocol.FEEDBACK: "_on_feedback",
        protocol.CONTRIBUTORS_GET: "_on_contributors_get",
        protocol.HARVEST_KEY: "_on_harvest_key",
        protocol.REFINE_QUERY: "_on_refine_query",
        protocol.DOC_FETCH: "_on_doc_fetch",
        protocol.RETRACT_DOC: "_on_retract_doc",
        protocol.HANDOVER: "_on_handover",
        protocol.REPLICA_PUSH: "_on_replica_push",
    }

    # ------------------------------------------------------------------
    # Local document management (the "shared directory")
    # ------------------------------------------------------------------

    def publish_document(self, document: Document,
                         policy: Optional[AccessPolicy] = None) -> None:
        """Add a document to the shared directory and the local index.

        Making it visible in the *global* index additionally requires an
        indexing round (HDK build or QDI single-term base) — the network
        facade offers :meth:`AlvisNetwork.publish_incremental` for
        post-build additions.
        """
        document.owner_peer = self.peer_id
        self.engine.add_document(document)
        if policy is not None:
            self.access.set_policy(document.doc_id, policy)

    def unpublish_document(self, doc_id: int) -> Document:
        """Remove a document from the shared directory and local index."""
        self.access.remove(doc_id)
        return self.engine.remove_document(doc_id)

    def enable_qdi(self) -> None:
        """Attach a query-driven indexing manager to this peer."""
        self.qdi = QDIManager(self, self.config)

    # ------------------------------------------------------------------
    # Contributions to the statistics phase
    # ------------------------------------------------------------------

    def local_df_contributions(self) -> Dict[str, int]:
        """{term: local df} over this peer's collection."""
        index = self.engine.index
        return {term: index.document_frequency(term)
                for term in index.vocabulary()}

    def collection_report(self) -> Tuple[int, int]:
        """(number of local documents, total local term count)."""
        return self.engine.index.num_documents, self.engine.index.total_terms

    def global_statistics(self):
        """BM25-ready global statistics (after the statistics phase)."""
        return self.stats_cache.statistics()

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> Optional[Message]:
        """Transport entry point."""
        name = self._HANDLER_NAMES.get(message.kind)
        if name is None:
            raise ValueError(
                f"peer {self.peer_id} cannot handle {message.kind!r}")
        return getattr(self, name)(message)

    # -- overlay ---------------------------------------------------------

    def _on_lookup_hop(self, message: Message) -> Optional[Message]:
        return None  # routing hop; nothing to do at the IR layer

    # -- statistics -------------------------------------------------------

    def _on_df_publish(self, message: Message) -> Optional[Message]:
        self.stats_store.fold_dfs(dict(message.payload["dfs"]))
        return None

    def _on_df_get(self, message: Message) -> Optional[Message]:
        terms = list(message.payload["terms"])
        return message.reply(protocol.DF_REPLY,
                             {"dfs": self.stats_store.dfs(terms)})

    def _on_collection_publish(self, message: Message) -> Optional[Message]:
        payload = message.payload
        self.stats_store.fold_collection(int(payload["peer"]),
                                         int(payload["docs"]),
                                         int(payload["terms"]))
        return None

    def _on_collection_get(self, message: Message) -> Optional[Message]:
        totals = self.stats_store.collection_totals()
        return message.reply(protocol.COLLECTION_REPLY,
                             {"docs": totals.num_documents,
                              "terms": totals.total_terms,
                              "peers": totals.num_peers})

    # -- index construction ------------------------------------------------

    def _on_publish_key(self, message: Message) -> Optional[Message]:
        contributor = int(message.payload["contributor"])
        accepted = 0
        for item in message.payload["items"]:
            key = Key(item["key_terms"])
            postings = item["postings"]
            if isinstance(postings, PackedPostings):
                postings = postings.to_posting_list()
            self.fragment.publish(key, postings, int(item["local_df"]),
                                  contributor,
                                  on_demand=bool(item.get("on_demand")))
            accepted += 1
        return message.reply(protocol.PUBLISH_ACK, {"accepted": accepted})

    def _on_expand_notify(self, message: Message) -> Optional[Message]:
        self.pending_expansions.append(Key(message.payload["key_terms"]))
        return None

    # -- retrieval ----------------------------------------------------------

    def _probe_entry(self, key: Key) -> Tuple[bool, Optional[PostingList]]:
        """Resolve one lattice probe against this peer's fragment.

        Shared by the single-probe and batched-probe handlers so QDI's
        per-key monitoring sees every probe either way.
        """
        entry = self.fragment.get(key)
        found = entry is not None and (bool(entry.postings)
                                       or bool(entry.contributors))
        if self.qdi is not None:
            self.qdi.on_probe(key, found)
        if not found:
            return False, None
        assert entry is not None
        return True, entry.postings

    def _on_probe_key(self, message: Message) -> Optional[Message]:
        found, postings = self._probe_entry(Key(message.payload["key_terms"]))
        return message.reply(protocol.PROBE_REPLY,
                             {"found": found, "postings": postings})

    def _on_probe_batch(self, message: Message) -> Optional[Message]:
        """All of one lattice frontier's probes owned by this peer, in
        a single message (the query engine's batched round)."""
        results = []
        for key_terms in message.payload["keys"]:
            found, postings = self._probe_entry(Key(key_terms))
            results.append({"found": found, "postings": postings})
        return message.reply(protocol.PROBE_BATCH_REPLY,
                             {"results": results})

    def _on_feedback(self, message: Message) -> Optional[Message]:
        if self.qdi is not None:
            key = Key(message.payload["key_terms"])
            self.qdi.on_feedback(key, bool(message.payload["redundant"]))
        return None

    # -- on-demand indexing support -----------------------------------------

    def _on_contributors_get(self, message: Message) -> Optional[Message]:
        key = Key([message.payload["term"]])
        entry = self.fragment.get(key)
        contributors = dict(entry.contributors) if entry else {}
        return message.reply(protocol.CONTRIBUTORS_REPLY,
                             {"contributors": contributors})

    def _on_harvest_key(self, message: Message) -> Optional[Message]:
        terms = list(message.payload["key_terms"])
        k = int(message.payload["k"])
        stats = (self.stats_cache.statistics()
                 if self.stats_cache.totals is not None else None)
        postings = self.engine.top_k_for_key(terms, k, stats=stats)
        return message.reply(protocol.HARVEST_REPLY,
                             {"postings": postings,
                              "local_df": postings.global_df})

    # -- two-step refinement and document access ------------------------------

    def _on_refine_query(self, message: Message) -> Optional[Message]:
        terms = list(message.payload["terms"])
        stats = (self.stats_cache.statistics()
                 if self.stats_cache.totals is not None else None)
        present = [doc_id for doc_id
                   in (int(raw) for raw in message.payload["doc_ids"])
                   if self.engine.store.get(doc_id) is not None]
        values = self.engine.score_documents(present, terms, stats=stats)
        scores: Dict[int, float] = dict(zip(present, values))
        return message.reply(protocol.REFINE_REPLY, {"scores": scores})

    def _on_doc_fetch(self, message: Message) -> Optional[Message]:
        doc_id = int(message.payload["doc_id"])
        raw_credentials = message.payload.get("credentials")
        credentials = (tuple(raw_credentials)
                       if raw_credentials is not None else None)
        document = self.engine.store.get(doc_id)
        if document is None:
            return message.reply(protocol.DOC_REPLY,
                                 {"ok": False, "error": "not-found"})
        try:
            self.access.check(doc_id, credentials)
        except AccessControlError:
            return message.reply(protocol.DOC_REPLY,
                                 {"ok": False, "error": "access-denied"})
        terms = list(message.payload.get("terms", []))
        snippet = self.engine.make_snippet(document, terms)
        return message.reply(protocol.DOC_REPLY,
                             {"ok": True, "title": document.title,
                              "url": document.url, "snippet": snippet})

    # -- document lifecycle ----------------------------------------------------

    def _on_retract_doc(self, message: Message) -> Optional[Message]:
        """Remove one document's posting from a key this peer owns.

        Sent by the document's holder on unpublish, for the document's
        single-term keys.  Multi-term combination keys are cleaned up
        lazily (the querying peer filters results whose document no
        longer resolves to a live owner).
        """
        key = Key(message.payload["key_terms"])
        doc_id = int(message.payload["doc_id"])
        contributor = int(message.payload["contributor"])
        new_local_df = int(message.payload["new_local_df"])
        entry = self.fragment.get(key)
        if entry is None:
            return None
        remaining = [posting for posting in entry.postings
                     if posting.doc_id != doc_id]
        if new_local_df > 0:
            entry.contributors[contributor] = new_local_df
        else:
            entry.contributors.pop(contributor, None)
        entry.global_df = sum(entry.contributors.values())
        entry.postings = PostingList(
            remaining, global_df=max(entry.global_df, len(remaining)))
        if not entry.postings and not entry.contributors:
            self.fragment.remove(key)
        return None

    # -- churn ----------------------------------------------------------------

    def _on_handover(self, message: Message) -> Optional[Message]:
        for entry in message.payload["entries"]:
            if isinstance(entry, PackedKeyEntry):
                entry = entry.to_entry()
            assert isinstance(entry, KeyEntry)
            self.fragment.install(entry)
        return None

    def _on_replica_push(self, message: Message) -> Optional[Message]:
        for entry in message.payload["entries"]:
            assert isinstance(entry, KeyEntry)
            self.replica_store[entry.key] = entry
        return None

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (f"AlvisPeer(id={self.peer_id}, "
                f"docs={self.engine.num_documents}, "
                f"keys={len(self.fragment)})")

"""Indexing with Highly Discriminative Keys (HDK).

From Section 2: "The HDK approach generates new keys during the indexing
phase based on observed document frequencies: each time a posting list for
some key k exceeds a predefined size, new indexing keys (called expansions
of k) with more terms (and thus associated with a smaller number of
documents) are generated."  (Podnar et al., ICDE 2007.)

The construction proceeds in rounds over key size ``s``:

1. **Round 1** — every peer publishes, for each of its local terms, the
   single-term key with its local top-k postings and local df.  The
   responsible peer aggregates global df and the merged, truncated list.
2. **Expansion notification** — after round ``s``, every responsible peer
   scans its fragment for keys of size ``s`` whose aggregated global df
   exceeds ``DF_max``; those are *non-discriminative*, and each
   contributor is notified (``ExpandNotify``).
3. **Round s+1** — notified contributors enumerate expansion candidates:
   terms co-occurring with the key within the proximity window, capped at
   ``max_expansions_per_key`` (most frequent first).  Each candidate key
   is published like in round 1.  Rounds stop at ``s_max``.

Non-discriminative keys *remain* indexed with their truncated lists (the
paper's retrieval relies on them as fallbacks); expansion adds more
selective alternatives above them.

Scoring at publish time uses the globally aggregated statistics from the
statistics phase, so postings merged across peers are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, TYPE_CHECKING

from repro.core import protocol
from repro.core.config import AlvisConfig
from repro.core.keys import Key
from repro.ir.postings import PackedPostings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["HDKStats", "HDKIndexer"]


@dataclass
class HDKStats:
    """Construction statistics (reported by experiment E3)."""

    rounds: int = 0
    keys_published: int = 0
    publish_messages: int = 0
    expand_notifications: int = 0
    keys_by_size: Dict[int, int] = field(default_factory=dict)

    def record_key(self, size: int) -> None:
        self.keys_published += 1
        self.keys_by_size[size] = self.keys_by_size.get(size, 0) + 1


class HDKIndexer:
    """Orchestrates the round-based HDK construction over a network."""

    def __init__(self, network: "AlvisNetwork"):
        self.network = network
        self.config: AlvisConfig = network.config
        self.stats = HDKStats()

    # ------------------------------------------------------------------

    def build(self) -> HDKStats:
        """Run all rounds; requires the statistics phase to have run."""
        self._require_statistics()
        pending: Dict[int, List[Key]] = {
            peer.peer_id: self._single_term_candidates(peer)
            for peer in self.network.peers()
        }
        for size in range(1, self.config.s_max + 1):
            self.stats.rounds += 1
            self._publish_round(pending)
            if size == self.config.s_max:
                break
            pending = self._expansion_round(size)
            if not any(pending.values()):
                break
        return self.stats

    def build_single_term_only(self) -> HDKStats:
        """Round 1 only — the baseline index QDI starts from."""
        self._require_statistics()
        pending = {peer.peer_id: self._single_term_candidates(peer)
                   for peer in self.network.peers()}
        self.stats.rounds += 1
        self._publish_round(pending)
        return self.stats

    # ------------------------------------------------------------------

    def _require_statistics(self) -> None:
        for peer in self.network.peers():
            if peer.stats_cache.totals is None:
                raise RuntimeError(
                    "run the statistics phase before building the index")

    def _single_term_candidates(self, peer) -> List[Key]:
        return [Key([term]) for term in peer.engine.index.vocabulary()]

    def _publish_round(self, pending: Dict[int, List[Key]]) -> None:
        """Publish each peer's candidate keys, batched by responsible peer.

        With ``config.batch_index_lookups`` every candidate's owner is
        resolved in one shared ``lookup_many`` round per peer (same
        owners, fewer ``LookupHop`` messages); with
        ``config.packed_postings`` the published posting lists travel in
        packed wire form (byte-identical sizes).
        """
        packed = self.config.packed_postings
        for peer in self.network.peers():
            candidates = pending.get(peer.peer_id, [])
            if not candidates:
                continue
            batches: Dict[int, List[Key]] = {}
            if self.config.batch_index_lookups:
                owners, _messages = self.network.lookup_owners(
                    peer.peer_id, [key.key_id for key in candidates])
                for key in candidates:
                    batches.setdefault(owners[key.key_id], []).append(key)
            else:
                for key in candidates:
                    owner, _hops = self.network.lookup_owner(peer.peer_id,
                                                             key.key_id)
                    batches.setdefault(owner, []).append(key)
            for owner, keys in batches.items():
                items = []
                for key in keys:
                    postings = peer.engine.top_k_for_key(
                        key.terms, self.config.truncation_k,
                        stats=peer.stats_cache.statistics())
                    local_df = postings.global_df
                    if local_df == 0:
                        continue
                    if packed:
                        postings = PackedPostings.from_list(postings)
                    items.append({"key_terms": list(key.terms),
                                  "postings": postings,
                                  "local_df": local_df})
                    self.stats.record_key(len(key))
                if not items:
                    continue
                payload = {"contributor": peer.peer_id, "items": items}
                self.network.send(peer.peer_id, owner,
                                  protocol.PUBLISH_KEY, payload)
                self.stats.publish_messages += 1

    def _expansion_round(self, size: int) -> Dict[int, List[Key]]:
        """Notify contributors of non-discriminative keys; collect the
        expansion candidates they generate."""
        self._send_expand_notifications(size)
        pending: Dict[int, List[Key]] = {}
        for peer in self.network.peers():
            if not peer.pending_expansions:
                continue
            candidates = self._expand_locally(peer)
            peer.pending_expansions.clear()
            if candidates:
                pending[peer.peer_id] = candidates
        return pending

    def _send_expand_notifications(self, size: int) -> None:
        for owner in self.network.peers():
            for entry in list(owner.fragment):
                key = entry.key
                if len(key) != size:
                    continue
                if entry.global_df <= self.config.df_max:
                    continue
                for contributor in entry.contributors:
                    payload = {"key_terms": list(key.terms),
                               "global_df": entry.global_df}
                    self.network.send(owner.peer_id, contributor,
                                      protocol.EXPAND_NOTIFY, payload)
                    self.stats.expand_notifications += 1

    def _expand_locally(self, peer) -> List[Key]:
        """Generate this peer's expansion candidates for its notified keys.

        Candidates are terms co-occurring with the key inside the
        proximity window, most locally frequent first, capped per key.
        Deduplicated per peer ({a}+b and {b}+a both yield {a,b}).
        """
        seen: Set[Key] = set()
        candidates: List[Key] = []
        window = self.config.proximity_window
        for key in peer.pending_expansions:
            cooccurring = peer.engine.index.cooccurring_terms(
                key.terms, window)
            ranked = sorted(cooccurring.items(),
                            key=lambda item: (-item[1], item[0]))
            taken = 0
            for term, df in ranked:
                if df < self.config.expansion_min_df:
                    break  # sorted by df: everything after is rarer
                expanded = key.extend(term)
                if expanded in seen:
                    continue
                seen.add(expanded)
                candidates.append(expanded)
                taken += 1
                if taken >= self.config.max_expansions_per_key:
                    break
        return candidates

"""Byte-budgeted LRU caching for the query hot path.

The query engine keeps, at every querying peer, a cache of probe results
(key -> posting list or a negative "not indexed" marker).  Federated
retrieval systems (C-DLSI and successors) show that query streams are
Zipf-skewed, so a small per-peer cache absorbs most of the repeated
lattice probes and their DHT lookups.

Two invalidation mechanisms keep cached postings honest:

* **version invalidation** — the cache carries an opaque ``version`` tag
  (the network derives it from the ring membership epoch and a global
  index-mutation counter); when the tag changes (churn, republication,
  on-demand indexing) the whole cache is dropped, mirroring the wholesale
  invalidation of the lookup cache;
* **TTL expiry** — entries older than ``ttl`` logical ticks (one tick per
  query executed at the caching peer) are treated as misses, bounding
  staleness even without an invalidation signal.

The capacity is a *byte* budget, not an entry count: posting lists have
very different wire sizes and the paper's scalability argument is about
bytes, so eviction is accounted in the same unit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "LRUByteCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (wired into traces and the monitor)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }


class _Entry:
    __slots__ = ("value", "size", "born")

    def __init__(self, value: Any, size: int, born: int):
        self.value = value
        self.size = size
        self.born = born


class LRUByteCache:
    """An LRU cache bounded by total entry bytes.

    ``capacity_bytes == 0`` disables the cache entirely (every ``get`` is
    a miss and ``put`` is a no-op), so callers need no separate flag.
    ``ttl == 0`` disables logical-time expiry.
    """

    def __init__(self, capacity_bytes: int, ttl: int = 0):
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        self.capacity_bytes = capacity_bytes
        self.ttl = ttl
        self.stats = CacheStats()
        #: Opaque validity tag managed by the owner (e.g. the network's
        #: (membership epoch, index version) pair); ``None`` until set.
        self.version: Optional[Hashable] = None
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._used_bytes = 0
        self._clock = 0

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance logical time by one unit (one query at the owner)."""
        self._clock += 1

    def ensure_version(self, version: Hashable) -> bool:
        """Drop everything if the validity tag changed.

        Returns True when an invalidation happened.  The first call just
        adopts the tag (an empty cache has nothing stale to drop).
        """
        if self.version == version:
            return False
        first = self.version is None
        self.version = version
        if first or not self._entries:
            return False
        self.invalidate_all()
        return True

    def invalidate_all(self) -> None:
        """Drop every entry (churn / republication invalidation)."""
        if self._entries:
            self.stats.invalidations += 1
        self._entries.clear()
        self._used_bytes = 0

    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; expired entries count as misses."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return False, None
        if self.ttl and self._clock - entry.born >= self.ttl:
            self._drop(key, entry)
            self.stats.expirations += 1
            self.stats.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return True, entry.value

    def put(self, key: Hashable, value: Any, size: int) -> bool:
        """Insert ``value`` under ``key``; evicts LRU entries to fit.

        Returns False when the cache is disabled or the entry alone
        exceeds the byte budget — and then caches nothing under ``key``:
        a previous value is dropped rather than left to be served as a
        stale hit for a key the caller just tried to overwrite.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        old = self._entries.pop(key, None)
        if old is not None:
            self._used_bytes -= old.size
        if not self.enabled or size > self.capacity_bytes:
            return False
        while self._entries and \
                self._used_bytes + size > self.capacity_bytes:
            victim_key, victim = self._entries.popitem(last=False)
            self._used_bytes -= victim.size
            self.stats.evictions += 1
        self._entries[key] = _Entry(value, size, self._clock)
        self._used_bytes += size
        self.stats.insertions += 1
        return True

    def _drop(self, key: Hashable, entry: _Entry) -> None:
        del self._entries[key]
        self._used_bytes -= entry.size

    def __repr__(self) -> str:
        return (f"LRUByteCache({len(self._entries)} entries, "
                f"{self._used_bytes}/{self.capacity_bytes}B, "
                f"hits={self.stats.hits}, misses={self.stats.misses})")

"""The paper's primary contribution: key-based distributed indexing/retrieval.

Layer 3 (distributed IR) and Layer 4 (distributed ranking) of the AlvisP2P
architecture:

* :mod:`repro.core.keys` — indexing-term combinations ("keys"),
* :mod:`repro.core.global_index` — the per-peer fragment of the global
  index (truncated posting lists, contributor sets, popularity statistics),
* :mod:`repro.core.global_stats` — globally aggregated collection
  statistics for BM25,
* :mod:`repro.core.hdk` — indexing with Highly Discriminative Keys,
* :mod:`repro.core.qdi` — Query-Driven Indexing,
* :mod:`repro.core.lattice` — query-lattice exploration (Figure 1),
* :mod:`repro.core.query_engine` — the batched + cached query execution
  engine (frontier-batched lookups, per-peer probe cache, top-k early
  termination),
* :mod:`repro.core.runtime` — the async query runtime (event-kernel
  execution with concurrent queries, per-origin dispatch queues for
  cross-query batching, level pipelining, clock-measured latency),
* :mod:`repro.core.cache` — the byte-budgeted LRU cache backing it,
* :mod:`repro.core.retrieval` — the distributed retrieval component,
* :mod:`repro.core.ranking` — result merging and distributed BM25,
* :mod:`repro.core.peer` / :mod:`repro.core.network` — the peer client
  and the network facade tying all five layers together.
"""

from repro.core.access import AccessControlError, AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.hdk import HDKIndexer, HDKStats
from repro.core.keys import Key
from repro.core.lattice import ExplorationOutcome, LatticeExplorer, ProbeStatus
from repro.core.network import AlvisNetwork
from repro.core.peer import AlvisPeer
from repro.core.qdi import QDIManager, QDIStats
from repro.core.retrieval import QueryTrace, RetrievalComponent

__all__ = [
    "AccessControlError",
    "AccessPolicy",
    "AlvisConfig",
    "HDKIndexer",
    "HDKStats",
    "Key",
    "ExplorationOutcome",
    "LatticeExplorer",
    "ProbeStatus",
    "AlvisNetwork",
    "AlvisPeer",
    "QDIManager",
    "QDIStats",
    "QueryTrace",
    "RetrievalComponent",
]

"""The async query runtime: event-kernel execution of the L3/L4 path.

The synchronous :class:`~repro.core.query_engine.QueryEngine` runs each
query to completion before the next one starts — queries never overlap
in virtual time, so the engine can neither pipeline lattice levels nor
coalesce traffic across concurrent queries, and "latency under load" is
unmeasurable.  This module is the refactor from *one query at a time*
to *a network serving traffic*:

* every query is a :class:`~repro.sim.procs.Proc` on the event kernel;
  its ``LookupHop``/``ProbeBatch`` messages travel through
  :meth:`Transport.request_async`, so lookups and probes from different
  queries genuinely interleave and per-query **latency** is measured
  from the virtual clock (``QueryTrace.latency``), not estimated;

* a per-origin **dispatch queue** (:class:`_OriginDispatcher`)
  accumulates the lookups and probes issued within one
  ``dispatch_window`` and flushes them as shared rounds: lookups from
  concurrent queries route in one ``lookup_many_async`` traversal, and
  probes bound for the same responsible peer — possibly from different
  queries, deduplicated — share one ``ProbeBatch`` message (server-side
  cross-query batching);

* with ``pipeline_levels``, level N+1's DHT lookups launch while level
  N's probe replies are still in flight — speculative routing traffic
  for keys a level-N result later excludes, in exchange for one lookup
  round of latency per level.  Speculation is charged when it resolves:
  a prefetch invalidated by churn (and re-resolved) or outrun by early
  termination still paid for its hop messages, so its charges land on
  the trace even if the query already finished;

* churn is *survived*, not raised: a probe whose owner departed between
  resolution and delivery resolves as :attr:`ProbeStatus.DROPPED` and
  is counted in the trace;

* with ``congestion_control``, a per-origin AIMD
  :class:`~repro.dht.congestion.CongestionWindow` sits between the
  dispatch queue and the transport: it bounds how many lookup rounds /
  probe batches may be outstanding, queues the excess, retransmits
  probe batches a full service queue rejected, and flushes the dispatch
  queue early once a window's worth of work is pending — closed-loop
  flow control on the retrieval path (the NCA'06 controller E8
  validates in isolation).

For a single query the runtime issues byte-for-byte the traffic of the
synchronous frontier-batched path (asserted by the cross-mode equality
tests): concurrency changes timing, never traffic semantics.  When
messages are shared across queries, each message's wire bytes are
*pro-rated* across the participating queries' traces (integer shares
differing by at most one byte), so summed per-query bytes reconcile
exactly with the transport's global counters; logical message *counts*
are still charged in full to every participant, so those can exceed
wire counts.  One caveat: a request that *times out* may still be
serviced later, and its late reply — discarded by the sender — is
wire-accounted but attributable to no trace, so exact reconciliation
holds only for timeout-free runs (``request_timeout = 0``, the
default).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import (Deque, Dict, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING, Union)

from repro.core import protocol
from repro.core.keys import Key
from repro.core.lattice import ExplorationOutcome
from repro.core.ranking import RankedDocument, merge_and_rank
from repro.core.retrieval import QueryTrace
from repro.dht.congestion import CongestionWindow
from repro.net.message import Message
from repro.net.transport import DeliveryError
from repro.sim.procs import Future, Proc, all_of
from repro.util.stats import percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["QueryJob", "AsyncQueryRuntime"]

#: A probe outcome as the runtime moves it around: (found, postings,
#: dropped).
ProbeOutcome = Tuple[bool, Optional[object], bool]


@dataclass
class QueryJob:
    """One query submitted to the runtime."""

    origin: int
    terms: List[str]
    trace: QueryTrace
    refine: bool
    pool_k: int
    results: Optional[List[RankedDocument]] = None
    done: bool = False
    #: Resolves with the job itself on completion.
    future: Future = field(default_factory=Future)


@dataclass
class _LookupGrant:
    """A dispatch queue's answer to one query's owner-resolution ask."""

    owners: Dict[int, int]      #: key id -> owning *peer*
    messages: int               #: hop messages that carried this ask's keys
    bytes: int                  #: this ask's pro-rated share of their size


class _LookupWaiter:
    __slots__ = ("key_ids", "future")

    def __init__(self, key_ids: List[int]):
        self.key_ids = key_ids
        self.future = Future()


class _ProbeWaiter:
    __slots__ = ("assignments", "future", "results", "remaining",
                 "requests", "bytes_by_kind", "retransmissions")

    def __init__(self, assignments: List[Tuple[Key, int]]):
        self.assignments = assignments      #: ordered (key, owner peer)
        self.future = Future()
        self.results: Dict[Key, ProbeOutcome] = {}
        self.remaining = 0                  #: owner batches outstanding
        self.requests = 0                   #: batches this ask rode in
        self.bytes_by_kind: Dict[str, int] = {}
        self.retransmissions = 0            #: retried batches it rode in


@dataclass
class _Prefetch:
    """A speculative next-level owner resolution (level pipelining)."""

    epoch: int                  #: membership epoch at launch
    proc: Proc                  #: resolves to {key_id: owner peer}


@dataclass
class _PendingLookup:
    """One shared lookup traversal awaiting a congestion-window slot.

    Backlogged traversals merge: their waiters route in one traversal
    once a slot opens, so backpressure *increases* sharing."""

    waiters: List[_LookupWaiter]


@dataclass
class _PendingProbe:
    """One owner's probe batch awaiting a congestion-window slot.

    Backlogged batches for the same owner merge (keys deduplicated,
    participants concatenated): the longer the window holds traffic
    back, the bigger — and fewer — the messages, which is the adaptive
    batching a congested receiver needs.  ``sent_bytes`` accumulates
    the wire cost of earlier (dropped) transmissions of this work so
    the traces reconcile with the transport counters."""

    owner: int
    keys: List[Key]
    participants: List[_ProbeWaiter]
    attempts: int = 0
    sent_bytes: int = 0


class _OriginDispatcher:
    """Per-origin dispatch queue coalescing traffic across queries.

    Lookups and probes enqueued within one ``dispatch_window`` flush
    together: all pending lookups share one routed traversal, and all
    pending probes to the same responsible peer share one ``ProbeBatch``
    (duplicate keys from different queries are sent once and the reply
    fanned back out).  With a single active query this degenerates to
    exactly the synchronous engine's per-level batching.

    With ``congestion_control`` an AIMD :class:`CongestionWindow` gates
    the flushed work: each lookup traversal and each probe batch is one
    outstanding unit; excess sends queue in ``_backlog`` and drain as
    acks open the window.  Queue-overflow drops halve the window (at
    most once per RTT), are retransmitted — window-paced — and once a
    window's worth of work is pending the flush fires early instead of
    waiting out the full ``dispatch_window``.
    """

    def __init__(self, runtime: "AsyncQueryRuntime", origin: int):
        self.runtime = runtime
        self.origin = origin
        self._pending_lookups: List[_LookupWaiter] = []
        self._pending_probes: List[_ProbeWaiter] = []
        self._flush_scheduled = False
        self._flush_event = None
        self._expedited = False
        #: Flushes and coalesced (deduplicated) probe keys, for the bench.
        self.flushes = 0
        self.coalesced_keys = 0
        #: Early (size-triggered) flushes and retransmitted sends.
        self.early_flushes = 0
        self.retransmissions = 0
        config = runtime.network.config
        self.cwnd: Optional[CongestionWindow] = None
        if config.congestion_control:
            # The retransmit timeout seeds the once-per-RTT decrease
            # guard as a conservative RTT upper bound: without it a
            # startup overflow burst (drops before the first ack's RTT
            # sample) would halve the window once per drop.  Real ack
            # samples take over quickly through the smoother.
            self.cwnd = CongestionWindow(
                initial=config.congestion_initial_window,
                max_window=config.congestion_max_window,
                rtt_estimate=config.congestion_retransmit_timeout)
        #: Owners the pending probes address (incremental mirror of the
        #: per-owner batches a flush would send, for _pending_units).
        self._pending_probe_owners: set = set()
        self._backlog: Deque[Union[_PendingLookup, _PendingProbe]] = \
            collections.deque()

    @property
    def backlog(self) -> int:
        """Sends held back by the congestion window right now."""
        return len(self._backlog)

    # ------------------------------------------------------------------

    def lookup(self, key_ids: List[int]) -> Future:
        """Ask for owner resolution of ``key_ids``; resolves to a
        :class:`_LookupGrant`."""
        waiter = _LookupWaiter(list(key_ids))
        self._pending_lookups.append(waiter)
        self._schedule_flush()
        return waiter.future

    def probe(self, assignments: List[Tuple[Key, int]]) -> Future:
        """Ask for probes of ``(key, owner)`` pairs; resolves to the
        :class:`_ProbeWaiter` carrying per-key outcomes and charges."""
        waiter = _ProbeWaiter(list(assignments))
        self._pending_probes.append(waiter)
        for _key, owner in waiter.assignments:
            if owner != self.origin:
                self._pending_probe_owners.add(owner)
        self._schedule_flush()
        return waiter.future

    # ------------------------------------------------------------------

    def _pending_units(self) -> int:
        """Dispatcher sends the pending work would flush into (one
        shared lookup traversal plus one probe batch per owner)."""
        return ((1 if self._pending_lookups else 0)
                + len(self._pending_probe_owners))

    def _should_expedite(self) -> bool:
        """True once the pending work would fill the congestion window's
        *currently idle* capacity — the window could send it all right
        now, so waiting out the rest of ``dispatch_window`` only adds
        latency.  While the window is saturated (no idle slots) the
        flush is never expedited: held-back work keeps accumulating into
        bigger coalesced batches, which is exactly the adaptive
        behaviour congestion calls for."""
        if self.cwnd is None or self._backlog:
            return False
        available = self.cwnd.window - self.cwnd.outstanding
        return available >= 1.0 and self._pending_units() >= available

    def _schedule_flush(self) -> None:
        simulator = self.runtime.network.simulator
        dispatch_window = self.runtime.network.config.dispatch_window
        if self._flush_scheduled:
            if (dispatch_window > 0 and not self._expedited
                    and self._should_expedite()):
                self._expedited = True
                self.early_flushes += 1
                if self._flush_event is not None:
                    self._flush_event.cancel()
                self._flush_event = simulator.schedule(0.0, self._flush)
            return
        self._flush_scheduled = True
        self._expedited = False
        delay = dispatch_window
        if delay > 0 and self._should_expedite():
            delay = 0.0
            self._expedited = True
            self.early_flushes += 1
        self._flush_event = simulator.schedule(delay, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        self._flush_event = None
        self.flushes += 1
        lookups, self._pending_lookups = self._pending_lookups, []
        probes, self._pending_probes = self._pending_probes, []
        self._pending_probe_owners.clear()
        if lookups:
            self._flush_lookups(lookups)
        if probes:
            self._flush_probes(probes)

    # -- congestion-window gating ---------------------------------------

    def _submit(self, send: Union[_PendingLookup, _PendingProbe]) -> None:
        """Dispatch ``send`` now if the congestion window admits another
        outstanding unit, else merge it into the backlog."""
        if self.cwnd is None or self.cwnd.can_send():
            if self.cwnd is not None:
                self.cwnd.on_send()
            self._dispatch(send)
        else:
            self._merge_into_backlog(send)

    def _dispatch(self, send: Union[_PendingLookup, _PendingProbe]) -> None:
        if isinstance(send, _PendingProbe):
            self._transmit_probe(send)
        else:
            self._launch_lookup(send)

    def _merge_into_backlog(
            self, send: Union[_PendingLookup, _PendingProbe]) -> None:
        """Queue ``send``, merging with backlogged work where possible:
        probe batches for the same owner fuse (keys deduplicated), and
        lookup traversals fuse into one shared round — so backpressure
        grows batches instead of queue length."""
        if isinstance(send, _PendingProbe):
            for entry in self._backlog:
                if isinstance(entry, _PendingProbe) \
                        and entry.owner == send.owner:
                    marks = set(entry.keys)
                    for key in send.keys:
                        if key in marks:
                            self.coalesced_keys += 1
                        else:
                            marks.add(key)
                            entry.keys.append(key)
                    entry.participants.extend(send.participants)
                    entry.attempts = max(entry.attempts, send.attempts)
                    entry.sent_bytes += send.sent_bytes
                    return
        else:
            for entry in self._backlog:
                if isinstance(entry, _PendingLookup):
                    entry.waiters.extend(send.waiters)
                    return
        self._backlog.append(send)

    def _drain_backlog(self) -> None:
        if self.cwnd is None:
            return
        while self._backlog and self.cwnd.can_send():
            self.cwnd.on_send()
            self._dispatch(self._backlog.popleft())

    # -- lookups --------------------------------------------------------

    def _flush_lookups(self, waiters: List[_LookupWaiter]) -> None:
        network = self.runtime.network
        if not network.ring.contains(self.origin):
            # The origin itself departed (crash mid-query): nothing can
            # route from it any more.  Resolve via the ownership oracle
            # with zero traffic — replies to the dead origin would be
            # dropped anyway, so its queries wind down as dropped probes.
            for waiter in waiters:
                owners = {key_id: network.owner_peer_of_key(key_id)
                          for key_id in waiter.key_ids}
                waiter.future.resolve(_LookupGrant(owners=owners,
                                                   messages=0, bytes=0))
            return
        self._submit(_PendingLookup(waiters=waiters))

    def _launch_lookup(self, send: _PendingLookup) -> None:
        network = self.runtime.network
        waiters = send.waiters
        if not network.ring.contains(self.origin):
            # The origin departed while the traversal waited for a
            # window slot: resolve via the oracle, zero traffic (as in
            # :meth:`_flush_lookups`), and release the slot.
            if self.cwnd is not None:
                self.cwnd.on_ack(network.simulator.now)
            for waiter in waiters:
                owners = {key_id: network.owner_peer_of_key(key_id)
                          for key_id in waiter.key_ids}
                waiter.future.resolve(_LookupGrant(owners=owners,
                                                   messages=0, bytes=0))
            self._drain_backlog()
            return
        union = list(dict.fromkeys(key_id for waiter in waiters
                                   for key_id in waiter.key_ids))
        sent_at = network.simulator.now
        proc = network.simulator.spawn(
            network.ring.lookup_many_async(
                self.origin, union, account=network.account_lookups),
            name=f"lookup@{self.origin}")

        def on_done(proc: Proc) -> None:
            if self.cwnd is not None:
                self.cwnd.on_ack(
                    network.simulator.now,
                    rtt_sample=network.simulator.now - sent_at)
            result = proc.result
            self.retransmissions += result.retransmissions
            batches = result.message_batches or []
            sizes = result.message_bytes or []
            key_sets = [set(waiter.key_ids) for waiter in waiters]
            messages = [0] * len(waiters)
            shares = [0] * len(waiters)
            # Pro-rate each hop message's bytes across the waiters
            # whose keys it carried; every carrier still counts the
            # whole message (the amortized hop cost is a count, the
            # bytes must reconcile with the wire).
            for batch, size in zip(batches, sizes):
                carriers = [index for index, keys in
                            enumerate(key_sets)
                            if keys.intersection(batch)]
                if not carriers:
                    continue
                split = _split_evenly(size, len(carriers))
                for slot, index in enumerate(carriers):
                    messages[index] += 1
                    shares[index] += split[slot]
            for index, waiter in enumerate(waiters):
                owners = {key_id: network.peer_of_ring_node(
                              result.owners[key_id])
                          for key_id in waiter.key_ids}
                waiter.future.resolve(_LookupGrant(
                    owners=owners, messages=messages[index],
                    bytes=shares[index]))
            self._drain_backlog()

        proc.add_done_callback(on_done)

    # -- probes ---------------------------------------------------------

    def _flush_probes(self, waiters: List[_ProbeWaiter]) -> None:
        network = self.runtime.network
        config = network.config
        by_owner: Dict[int, List[Key]] = {}
        seen: Dict[int, set] = {}
        owner_waiters: Dict[int, List[_ProbeWaiter]] = {}
        for waiter in waiters:
            waiter_owners = []
            for key, owner in waiter.assignments:
                keys = by_owner.setdefault(owner, [])
                marks = seen.setdefault(owner, set())
                if key in marks:
                    self.coalesced_keys += 1
                else:
                    marks.add(key)
                    keys.append(key)
                if owner not in waiter_owners:
                    waiter_owners.append(owner)
            waiter.remaining = len(waiter_owners)
            for owner in waiter_owners:
                owner_waiters.setdefault(owner, []).append(waiter)
        for owner, keys in by_owner.items():
            participants = owner_waiters[owner]
            if owner == self.origin:
                # Self-addressed probes short-circuit in memory, exactly
                # like the synchronous path: no bytes, no latency, no
                # congestion window.  A crashed origin cannot answer
                # even itself.
                payload = {"keys": [list(key.terms) for key in keys]}
                try:
                    reply, _rtt = network.send(self.origin, owner,
                                               protocol.PROBE_BATCH,
                                               payload)
                except DeliveryError:
                    self._deliver(owner, keys, participants, None,
                                  dropped=True, request_bytes=0,
                                  reply_bytes=0)
                    continue
                items = (reply["results"] if reply is not None else
                         [{"found": False, "postings": None}
                          for _key in keys])
                self._deliver(owner, keys, participants, items,
                              dropped=False, request_bytes=0,
                              reply_bytes=0)
                continue
            self._submit(_PendingProbe(owner=owner, keys=keys,
                                       participants=participants))

    def _transmit_probe(self, send: _PendingProbe) -> None:
        network = self.runtime.network
        config = network.config
        payload = {"keys": [list(key.terms) for key in send.keys]}
        message = Message(src=self.origin, dst=send.owner,
                          kind=protocol.PROBE_BATCH, payload=payload)
        # Every attempt hits the wire: the cumulative request bytes
        # (original send plus retransmissions) are what the traces must
        # reconcile against the transport counters.
        send.sent_bytes += message.size_bytes()
        timeout = config.request_timeout or None
        future = network.transport.request_async(message, timeout=timeout)
        future.add_done_callback(
            lambda resolved: self._on_probe_outcome(send, resolved.value))

    def _on_probe_outcome(self, send: _PendingProbe, outcome) -> None:
        network = self.runtime.network
        config = network.config
        now = network.simulator.now
        if outcome.ok and outcome.reply is not None:
            if self.cwnd is not None:
                self.cwnd.on_ack(now, rtt_sample=outcome.rtt)
            self._deliver(send.owner, send.keys, send.participants,
                          outcome.reply.payload["results"], dropped=False,
                          request_bytes=send.sent_bytes,
                          reply_bytes=outcome.reply_bytes)
        elif (outcome.status == "overflow"
                and send.attempts < config.congestion_max_retransmits):
            # The owner's service queue rejected the batch: congestion,
            # not churn — retransmit.  With the AIMD window the drop
            # halves the window (at most once per RTT) and the retry
            # re-enters the window-paced queue after one smoothed RTT —
            # an immediate retry would hit the same still-full queue.
            # Without the window: blind timeout retransmission, the
            # open-loop behaviour whose collapse E8/E15 measure.
            if self.cwnd is not None:
                self.cwnd.on_drop(now)
            self.retransmissions += 1
            for waiter in send.participants:
                waiter.retransmissions += 1
            send.attempts += 1
            if self.cwnd is not None:
                backoff = (self.cwnd.srtt if self.cwnd.srtt > 0
                           else config.congestion_retransmit_timeout)
                network.simulator.schedule(
                    backoff, lambda: self._submit(send))
            else:
                network.simulator.schedule(
                    config.congestion_retransmit_timeout,
                    lambda: self._transmit_probe(send))
        else:
            # Churn drop, timeout, or retransmission budget exhausted:
            # surfaced as dropped probes.
            if self.cwnd is not None:
                self.cwnd.on_drop(now)
            self._deliver(send.owner, send.keys, send.participants, None,
                          dropped=True, request_bytes=send.sent_bytes,
                          reply_bytes=0)
        self._drain_backlog()

    def _deliver(self, owner: int, keys: List[Key],
                 participants: List[_ProbeWaiter],
                 items: Optional[List[Dict]], dropped: bool,
                 request_bytes: int, reply_bytes: int) -> None:
        results: Dict[Key, ProbeOutcome] = {}
        if dropped:
            for key in keys:
                results[key] = (False, None, True)
        else:
            assert items is not None
            for key, item in zip(keys, items):
                found = bool(item["found"])
                postings = item["postings"] if found else None
                results[key] = (found, postings, False)
        # Shared batches pro-rate their wire bytes across participants
        # (summed per-query bytes == transport totals); the *count* is
        # charged to everyone who rode in the batch.
        request_shares = _split_evenly(request_bytes, len(participants))
        reply_shares = _split_evenly(reply_bytes, len(participants))
        for index, waiter in enumerate(participants):
            for key, key_owner in waiter.assignments:
                if key_owner == owner:
                    waiter.results[key] = results[key]
            waiter.requests += 1
            _add_bytes(waiter.bytes_by_kind, protocol.PROBE_BATCH,
                       request_shares[index])
            _add_bytes(waiter.bytes_by_kind, protocol.PROBE_BATCH_REPLY,
                       reply_shares[index])
            waiter.remaining -= 1
            if waiter.remaining == 0:
                waiter.future.resolve(waiter)


def _add_bytes(bucket: Dict[str, int], kind: str, nbytes: int) -> None:
    if nbytes > 0:
        bucket[kind] = bucket.get(kind, 0) + nbytes


def _split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integer shares that sum exactly to
    ``total``, differing by at most one (earlier parts take the
    remainder)."""
    base, remainder = divmod(int(total), parts)
    return [base + 1 if index < remainder else base
            for index in range(parts)]


class AsyncQueryRuntime:
    """Runs queries as concurrent processes on the network's event kernel."""

    def __init__(self, network: "AlvisNetwork"):
        self.network = network
        self.active = 0
        self.peak_active = 0
        self.completed = 0
        #: Clock-measured latency of every completed query, in order.
        self.latencies: List[float] = []
        self._dispatchers: Dict[int, _OriginDispatcher] = {}

    # ------------------------------------------------------------------

    def dispatcher(self, origin: int) -> _OriginDispatcher:
        """The (lazily created) dispatch queue of ``origin``."""
        dispatcher = self._dispatchers.get(origin)
        if dispatcher is None:
            dispatcher = _OriginDispatcher(self, origin)
            self._dispatchers[origin] = dispatcher
        return dispatcher

    def coalesced_probe_keys(self) -> int:
        """Probe keys absorbed by cross-query deduplication so far."""
        return sum(dispatcher.coalesced_keys
                   for dispatcher in self._dispatchers.values())

    def retransmissions(self) -> int:
        """Dispatcher sends retried after congestion drops so far."""
        return sum(dispatcher.retransmissions
                   for dispatcher in self._dispatchers.values())

    def congestion_summary(self) -> Dict[str, float]:
        """Aggregated congestion-control state across all dispatchers:
        retransmissions, backlogged sends, early (size-triggered)
        flushes, and the AIMD window's mean/min plus total
        multiplicative decreases (zeroes when ``congestion_control`` is
        off)."""
        dispatchers = list(self._dispatchers.values())
        windows = [dispatcher.cwnd for dispatcher in dispatchers
                   if dispatcher.cwnd is not None]
        return {
            "retransmissions": float(self.retransmissions()),
            "backlog": float(sum(dispatcher.backlog
                                 for dispatcher in dispatchers)),
            "early_flushes": float(sum(dispatcher.early_flushes
                                       for dispatcher in dispatchers)),
            "window_mean": (sum(cwnd.window for cwnd in windows)
                            / len(windows)) if windows else 0.0,
            "window_min": (min(cwnd.window for cwnd in windows)
                           if windows else 0.0),
            "window_decreases": float(sum(cwnd.decreases
                                          for cwnd in windows)),
        }

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 of the completed queries' clock latencies."""
        if not self.latencies:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"p50": percentile(self.latencies, 50),
                "p95": percentile(self.latencies, 95),
                "p99": percentile(self.latencies, 99)}

    # ------------------------------------------------------------------

    def submit(self, origin: int, query: Union[str, Sequence[str]],
               refine: Optional[bool] = None) -> QueryJob:
        """Start one query as a process; returns its job immediately.

        Drive the simulator (``network.simulator.run()`` or
        :meth:`AlvisNetwork.run_queries`) to make it complete.
        """
        network = self.network
        config = network.config
        terms = (network.analyzer.analyze_query(query)
                 if isinstance(query, str) else
                 list(dict.fromkeys(query)))
        if not terms:
            raise ValueError(f"query {query!r} has no index terms")
        do_refine = (config.refine_with_local_engines
                     if refine is None else refine)
        pool_k = (config.result_k * config.refine_pool_factor
                  if do_refine else config.result_k)
        job = QueryJob(origin=origin, terms=terms,
                       trace=QueryTrace(query=Key(terms), origin=origin),
                       refine=do_refine, pool_k=pool_k)
        network.simulator.spawn(self._run_query(job),
                                name=f"query@{origin}")
        return job

    # ------------------------------------------------------------------
    # The query process
    # ------------------------------------------------------------------

    def _run_query(self, job: QueryJob):
        network = self.network
        trace = job.trace
        trace.started_at = network.simulator.now
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        outcome, owners = yield from self._explore(job)
        trace.probes = [(record.key, record.status)
                        for record in outcome.records]
        if network.mode == "qdi":
            self._send_feedback(job, outcome, owners)
        results = merge_and_rank(outcome.retrieved, trace.query,
                                 job.pool_k)
        # Lazy cleanup, exactly like the synchronous path: drop results
        # whose holder departed.
        results = [document for document in results
                   if network.doc_owner(document.doc_id) is not None]
        if job.refine and results:
            results = yield from self._refine(job, results)
            results = results[: network.config.result_k]
            trace.refined = True
        trace.results = results
        job.results = results
        trace.finished_at = network.simulator.now
        trace.latency = trace.finished_at - trace.started_at
        self.active -= 1
        self.completed += 1
        self.latencies.append(trace.latency)
        job.done = True
        job.future.resolve(job)
        return job

    def _explore(self, job: QueryJob):
        """Async lattice exploration (mirrors the batched sync explorer).

        Record order, exclusion handling and the early-termination test
        replicate :meth:`LatticeExplorer.explore` with a level-probe
        callback, so for identical index state the outcome is identical
        to the synchronous engine's.
        """
        network = self.network
        config = network.config
        engine = network.retrieval.engine
        explorer = engine.explorer
        trace = job.trace
        origin = job.origin
        terms = list(dict.fromkeys(job.terms))[: explorer.max_lattice_terms]
        query = Key(terms)
        outcome = ExplorationOutcome(query=query)
        excluded: set = set()
        owners: Dict[Key, int] = {}
        levels = Key.lattice_levels(terms)
        should_stop = (engine._make_stop_test(origin, query, job.pool_k)
                       if config.topk_early_stop else None)
        cache = engine._origin_cache(origin)
        prefetch: Optional[_Prefetch] = None
        for depth, level in enumerate(levels):
            current_prefetch, prefetch = prefetch, None
            frontier = [key for key in level if key not in excluded]
            results: Dict[Key, ProbeOutcome] = {}
            misses: List[Key] = []
            for key in frontier:
                cached = engine.cache_get(cache, trace, key)
                if cached is not None:
                    results[key] = (cached[0], cached[1], False)
                else:
                    misses.append(key)
            probe_future = None
            if misses:
                prefetched: Dict[int, int] = {}
                if (current_prefetch is not None
                        and current_prefetch.epoch
                        == network.ring.membership_epoch):
                    # Owners resolved speculatively during the previous
                    # level; invalidated wholesale by any membership
                    # change since launch.
                    prefetched = yield current_prefetch.proc
                needed = [key for key in misses
                          if key.key_id not in prefetched]
                owners_by_id = dict(prefetched)
                if needed:
                    resolved = yield from self._resolve_owners(
                        job, [key.key_id for key in needed])
                    owners_by_id.update(resolved)
                assignments = []
                for key in misses:
                    owner = owners_by_id[key.key_id]
                    owners[key] = owner
                    assignments.append((key, owner))
                probe_future = self.dispatcher(origin).probe(assignments)
            if (config.pipeline_levels and depth + 1 < len(levels)):
                candidates = [key for key in levels[depth + 1]
                              if key not in excluded]
                if candidates:
                    prefetch = self._launch_prefetch(job, candidates)
            if probe_future is not None:
                waiter = yield probe_future
                trace.request_messages += waiter.requests
                trace.retransmissions += waiter.retransmissions
                for kind, nbytes in waiter.bytes_by_kind.items():
                    self._charge(trace, kind, nbytes)
                for key in misses:
                    found, postings, dropped = waiter.results[key]
                    results[key] = (found, postings, dropped)
                    if not dropped:
                        engine.cache_put(cache, key, found, postings)
            # Classification, pruning and the stop test go through the
            # explorer's shared building blocks, so the async path can
            # never diverge from the synchronous record semantics.
            explorer.record_level(level, results, outcome, excluded)
            if should_stop is None:
                continue
            remaining = explorer.remaining_after(levels, depth, excluded)
            if remaining and should_stop(outcome, remaining):
                explorer.prune_remaining(levels, depth, outcome,
                                         excluded)
                break
        return outcome, owners

    def _resolve_owners(self, job: QueryJob, key_ids: List[int]):
        """Resolve responsible peers through the dispatch queue.

        Honors the origin's key->owner lookup cache exactly like the
        synchronous :meth:`AlvisNetwork.lookup_owners`; returns
        ``{key_id: owner peer}`` and charges the trace for the hop
        messages that carried this query's keys.
        """
        network = self.network
        config = network.config
        trace = job.trace
        unique = list(dict.fromkeys(key_ids))
        owners: Dict[int, int] = {}
        cache: Optional[Dict[int, int]] = None
        if config.cache_lookups:
            cache = network._fresh_lookup_cache(job.origin)
            for key_id in unique:
                cached_owner = cache.get(key_id)
                if cached_owner is not None:
                    owners[key_id] = cached_owner
        misses = [key_id for key_id in unique if key_id not in owners]
        if misses:
            grant = yield self.dispatcher(job.origin).lookup(misses)
            trace.lookup_hops += grant.messages
            self._charge(trace, protocol.LOOKUP_HOP, grant.bytes)
            for key_id in misses:
                owner = grant.owners[key_id]
                owners[key_id] = owner
                if cache is not None and \
                        len(cache) < config.lookup_cache_size:
                    cache[key_id] = owner
        return owners

    def _launch_prefetch(self, job: QueryJob,
                         candidates: List[Key]) -> _Prefetch:
        """Start next-level owner resolution while probes are in flight."""
        proc = self.network.simulator.spawn(
            self._resolve_owners(job,
                                 [key.key_id for key in candidates]),
            name=f"prefetch@{job.origin}")
        return _Prefetch(epoch=self.network.ring.membership_epoch,
                         proc=proc)

    # ------------------------------------------------------------------
    # Post-exploration steps
    # ------------------------------------------------------------------

    def _send_feedback(self, job: QueryJob, outcome: ExplorationOutcome,
                       owners: Dict[Key, int]) -> None:
        """QDI popularity feedback, fired without blocking completion."""
        network = self.network
        trace = job.trace
        for key in outcome.missing_keys():
            if len(key) < 2:
                continue
            owner = owners.get(key)
            if owner is None:
                continue
            redundant = outcome.covered_by_untruncated(key)
            payload = {"key_terms": list(key.terms),
                       "redundant": redundant}
            trace.request_messages += 1
            if owner == job.origin:
                try:
                    network.send(job.origin, owner, protocol.FEEDBACK,
                                 payload)
                except DeliveryError:
                    pass        # origin crashed mid-query
                continue
            message = Message(src=job.origin, dst=owner,
                              kind=protocol.FEEDBACK, payload=payload)
            self._charge(trace, protocol.FEEDBACK, message.size_bytes())
            network.transport.request_async(message)

    def _refine(self, job: QueryJob, results: List[RankedDocument]):
        """Second retrieval step, one concurrent wave of exact scoring."""
        network = self.network
        config = network.config
        trace = job.trace
        by_owner: Dict[int, List[int]] = {}
        for document in results:
            owner = network.doc_owner(document.doc_id)
            if owner is not None:
                by_owner.setdefault(owner, []).append(document.doc_id)
        exact_scores: Dict[int, float] = {}
        futures = []
        for owner, doc_ids in by_owner.items():
            payload = {"terms": job.terms, "doc_ids": doc_ids}
            trace.request_messages += 1
            if owner == job.origin:
                try:
                    reply, _rtt = network.send(job.origin, owner,
                                               protocol.REFINE_QUERY,
                                               payload)
                except DeliveryError:
                    continue    # origin crashed mid-query
                if reply is not None:
                    for doc_id, score in reply["scores"].items():
                        exact_scores[int(doc_id)] = float(score)
                continue
            message = Message(src=job.origin, dst=owner,
                              kind=protocol.REFINE_QUERY, payload=payload)
            self._charge(trace, protocol.REFINE_QUERY,
                         message.size_bytes())
            futures.append(network.transport.request_async(
                message, timeout=config.request_timeout or None))
        if futures:
            outcomes = yield all_of(futures)
            for outcome in outcomes:
                if outcome.ok and outcome.reply is not None:
                    self._charge(trace, protocol.REFINE_REPLY,
                                 outcome.reply_bytes)
                    for doc_id, score in \
                            outcome.reply.payload["scores"].items():
                        exact_scores[int(doc_id)] = float(score)
        refined = [RankedDocument(
            doc_id=document.doc_id,
            score=exact_scores.get(document.doc_id, document.score),
            covering_keys=document.covering_keys)
            for document in results]
        refined.sort(key=lambda document: (-document.score,
                                           document.doc_id))
        return refined

    # ------------------------------------------------------------------

    @staticmethod
    def _charge(trace: QueryTrace, kind: str, nbytes: int) -> None:
        """Attribute ``nbytes`` of ``kind`` traffic to one query's trace."""
        if nbytes <= 0:
            return
        trace.bytes_sent += int(nbytes)
        trace.bytes_by_kind[kind] = (trace.bytes_by_kind.get(kind, 0)
                                     + int(nbytes))

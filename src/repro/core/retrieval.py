"""The distributed retrieval component (L3/L4 query path).

Drives the query-lattice exploration over the real network through the
batched + cached :class:`~repro.core.query_engine.QueryEngine`: in the
compatibility configuration every lattice probe is a DHT lookup plus a
``ProbeKey`` request to the responsible peer; with ``batch_lookups`` the
lookups of each lattice frontier share one routed round and same-owner
probes share one ``ProbeBatch`` message, and with ``cache_bytes`` a
per-peer LRU absorbs repeated probes entirely.  All traffic is
byte-accounted either way.  After exploration the retrieved lists are
merged and ranked (:mod:`repro.core.ranking`); optionally the query is
then *refined* by the local engines of the peers holding the candidate
documents — the paper's two-step retrieval (Section 3).

Under QDI, the component also sends post-query popularity feedback for the
useful-but-missing combinations, which is what drives on-demand indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.core import protocol
from repro.core.keys import Key
from repro.core.lattice import (
    ExplorationOutcome,
    LatticeExplorer,
    ProbeStatus,
)
from repro.core.query_engine import QueryEngine
from repro.core.ranking import RankedDocument, merge_and_rank
from repro.net.transport import DeliveryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["QueryTrace", "RetrievalComponent"]


@dataclass
class QueryTrace:
    """Everything measured about one query (the unit of experiment E2).

    Accounting invariants (audited by ``tests/test_core_retrieval_trace``):

    * ``bytes_sent`` equals the sum of ``bytes_by_kind`` — both are
      deltas of the same transport counters over the query window;
    * skipped, pruned and cache-served lattice nodes cause no probe
      traffic: only ``probed_count`` minus the cache hits ever turns
      into ``ProbeKey``/``ProbeBatch`` bytes;
    * ``request_messages`` counts logical requests issued by the querying
      peer, including self-addressed ones (which short-circuit in memory
      and contribute zero bytes — so it can exceed the transport's
      message count, never the reverse);
    * ``lookup_hops`` counts routed ``LookupHop`` messages; under
      ``batch_lookups`` keys sharing a hop share a message, so the count
      is the amortized (billed) hop cost of the query.
    """

    query: Key
    origin: int
    #: (key, status) in exploration order — reproduces Figure 1.
    probes: List[Tuple[Key, ProbeStatus]] = field(default_factory=list)
    lookup_hops: int = 0
    request_messages: int = 0
    bytes_sent: int = 0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Modelled round-trip estimate of the synchronous compatibility
    #: path (levels cost their slowest probe under ``parallel_probes``).
    rtt_estimate: float = 0.0
    #: Virtual times of query start/finish and their difference — the
    #: *measured* latency of the async runtime (``async_queries``); all
    #: zero on the synchronous path, where no virtual time elapses.
    started_at: float = 0.0
    finished_at: float = 0.0
    latency: float = 0.0
    refined: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    #: Probe batches retransmitted after congestion (service-queue
    #: overflow) drops that this query rode in — like
    #: ``request_messages``, a per-participant count, not a wire count.
    retransmissions: int = 0
    results: List[RankedDocument] = field(default_factory=list)

    @property
    def probed_count(self) -> int:
        return sum(1 for _key, status in self.probes
                   if status not in (ProbeStatus.SKIPPED,
                                     ProbeStatus.PRUNED))

    @property
    def skipped_count(self) -> int:
        return sum(1 for _key, status in self.probes
                   if status == ProbeStatus.SKIPPED)

    @property
    def pruned_count(self) -> int:
        """Lattice nodes cut off by top-k early termination."""
        return sum(1 for _key, status in self.probes
                   if status == ProbeStatus.PRUNED)

    @property
    def dropped_count(self) -> int:
        """Probes lost to churn (owner departed mid-query)."""
        return sum(1 for _key, status in self.probes
                   if status == ProbeStatus.DROPPED)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lattice probes served from the origin's cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict for benchmark tables."""
        return {
            "terms": float(len(self.query)),
            "probed": float(self.probed_count),
            "skipped": float(self.skipped_count),
            "pruned": float(self.pruned_count),
            "dropped": float(self.dropped_count),
            "latency": float(self.latency),
            "hops": float(self.lookup_hops),
            "messages": float(self.request_messages),
            "retransmissions": float(self.retransmissions),
            "bytes": float(self.bytes_sent),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "results": float(len(self.results)),
        }


class RetrievalComponent:
    """Executes multi-keyword queries against the global index."""

    def __init__(self, network: "AlvisNetwork"):
        self.network = network
        self.engine = QueryEngine(network)

    @property
    def explorer(self) -> LatticeExplorer:
        """Compatibility alias — the engine owns the explorer."""
        return self.engine.explorer

    # ------------------------------------------------------------------

    def query(self, origin: int, query: Union[str, Sequence[str]],
              refine: Optional[bool] = None
              ) -> Tuple[List[RankedDocument], QueryTrace]:
        """Run one query from peer ``origin``.

        ``query`` is either a raw string (analyzed with the network's
        analyzer) or a pre-analyzed term sequence.  ``refine`` overrides
        the config's ``refine_with_local_engines``.

        With ``config.async_queries`` the query runs as a process on the
        event kernel (:mod:`repro.core.runtime`) and the simulator is
        driven to completion; traffic is identical to the synchronous
        frontier-batched path, but the trace's ``latency`` is measured
        from the virtual clock.  Use :meth:`AlvisNetwork.run_queries`
        to overlap many queries instead of completing them one by one.
        """
        network = self.network
        if network.config.async_queries:
            job = network.runtime.submit(origin, query, refine=refine)
            network.simulator.run()
            if not job.done:
                raise RuntimeError(
                    "async query did not complete: the simulator drained "
                    "with the query still pending")
            return job.results, job.trace
        terms = (network.analyzer.analyze_query(query)
                 if isinstance(query, str) else
                 list(dict.fromkeys(query)))
        if not terms:
            raise ValueError(f"query {query!r} has no index terms")
        trace = QueryTrace(query=Key(terms), origin=origin)
        bytes_before = network.bytes_sent_total()
        kinds_before = network.bytes_by_kind()
        config = network.config
        do_refine = (config.refine_with_local_engines
                     if refine is None else refine)
        # Refinement re-ranks a larger first-step candidate pool with
        # exact scores, then cuts back to result_k.
        pool_k = (config.result_k * config.refine_pool_factor
                  if do_refine else config.result_k)
        outcome, owners = self.engine.execute(origin, terms, trace, pool_k)
        trace.probes = [(record.key, record.status)
                        for record in outcome.records]
        if network.mode == "qdi":
            self._send_feedback(origin, outcome, owners, trace)
        results = merge_and_rank(outcome.retrieved, trace.query, pool_k)
        # Lazy cleanup: drop references to documents whose holder is gone
        # (crash) or that were unpublished — stale postings for them may
        # survive in combination keys until their lists refresh.
        results = [document for document in results
                   if network.doc_owner(document.doc_id) is not None]
        if do_refine and results:
            results = self._refine(origin, terms, results, trace)
            results = results[: config.result_k]
            trace.refined = True
        trace.results = results
        # Both totals are deltas of the same transport counters over the
        # query window, so they reconcile by construction: every kind
        # increment is paired with a global increment of the same size.
        trace.bytes_sent = int(network.bytes_sent_total() - bytes_before)
        kinds_after = network.bytes_by_kind()
        trace.bytes_by_kind = {
            kind: int(kinds_after.get(kind, 0.0)
                      - kinds_before.get(kind, 0.0))
            for kind in kinds_after
            if kinds_after.get(kind, 0.0) > kinds_before.get(kind, 0.0)}
        return results, trace

    # ------------------------------------------------------------------

    def _send_feedback(self, origin: int, outcome: ExplorationOutcome,
                       owners: Dict[Key, int], trace: QueryTrace) -> None:
        """Report missing multi-term combinations to their owners (QDI)."""
        for key in outcome.missing_keys():
            if len(key) < 2:
                continue
            owner = owners.get(key)
            if owner is None:
                continue
            redundant = outcome.covered_by_untruncated(key)
            payload = {"key_terms": list(key.terms),
                       "redundant": redundant}
            try:
                _reply, rtt = self.network.send(origin, owner,
                                                protocol.FEEDBACK, payload)
            except DeliveryError:
                # The owner departed since its probe: popularity feedback
                # is best-effort, never worth crashing the query.
                trace.request_messages += 1
                continue
            trace.request_messages += 1
            trace.rtt_estimate += rtt

    def _refine(self, origin: int, terms: List[str],
                results: List[RankedDocument],
                trace: QueryTrace) -> List[RankedDocument]:
        """Second retrieval step: exact scoring at the document holders."""
        by_owner: Dict[int, List[int]] = {}
        for document in results:
            owner = self.network.doc_owner(document.doc_id)
            if owner is not None:
                by_owner.setdefault(owner, []).append(document.doc_id)
        exact_scores: Dict[int, float] = {}
        for owner, doc_ids in by_owner.items():
            payload = {"terms": terms, "doc_ids": doc_ids}
            try:
                reply, rtt = self.network.send(origin, owner,
                                               protocol.REFINE_QUERY, payload)
            except DeliveryError:
                # Owner departed between the probe and the refinement
                # round-trip: keep the approximate scores for its
                # documents, exactly as the async runtime's _refine does.
                trace.request_messages += 1
                continue
            trace.request_messages += 1
            trace.rtt_estimate += rtt
            if reply is not None:
                for doc_id, score in reply["scores"].items():
                    exact_scores[int(doc_id)] = float(score)
        refined = [RankedDocument(
            doc_id=document.doc_id,
            score=exact_scores.get(document.doc_id, document.score),
            covering_keys=document.covering_keys)
            for document in results]
        refined.sort(key=lambda document: (-document.score,
                                           document.doc_id))
        return refined

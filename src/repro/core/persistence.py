"""Persistence of global-index fragments (peer restart).

The AlvisP2P client is long-lived desktop software: a peer that restarts
must not rebuild its fraction of the global index from scratch (that
would re-trigger network-wide publishing).  This module serializes a
peer's index fragment — keys, truncated posting lists, aggregated dfs,
contributor sets, popularity — to a JSON document and restores it.

JSON is chosen over pickle deliberately: the on-disk state outlives
library versions and must be inspectable/diffable; every field is a
plain scalar or list.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TYPE_CHECKING

from repro.core.global_index import GlobalIndexFragment, KeyEntry
from repro.core.keys import Key
from repro.ir.postings import Posting, PostingList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import AlvisNetwork

__all__ = ["entry_to_dict", "entry_from_dict", "fragment_to_dict",
           "fragment_from_dict", "save_fragment", "load_fragment",
           "save_network_index", "load_network_index"]

_FORMAT_VERSION = 1


def entry_to_dict(entry: KeyEntry) -> Dict[str, Any]:
    """Serialize one key entry to plain JSON-compatible data."""
    return {
        "key": list(entry.key.terms),
        "postings": [[posting.doc_id, posting.score]
                     for posting in entry.postings],
        "postings_global_df": entry.postings.global_df,
        "global_df": entry.global_df,
        "contributors": {str(peer): df
                         for peer, df in entry.contributors.items()},
        "popularity": entry.popularity,
        "on_demand": entry.on_demand,
    }


def entry_from_dict(data: Dict[str, Any]) -> KeyEntry:
    """Rebuild a key entry; raises ValueError on malformed data."""
    try:
        postings = PostingList(
            [Posting(int(doc_id), float(score))
             for doc_id, score in data["postings"]],
            global_df=int(data["postings_global_df"]))
        return KeyEntry(
            key=Key(data["key"]),
            postings=postings,
            global_df=int(data["global_df"]),
            contributors={int(peer): int(df)
                          for peer, df in data["contributors"].items()},
            popularity=float(data["popularity"]),
            on_demand=bool(data["on_demand"]),
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed entry record: {error}") from error


def fragment_to_dict(fragment: GlobalIndexFragment) -> Dict[str, Any]:
    """Serialize a whole fragment."""
    return {
        "version": _FORMAT_VERSION,
        "truncation_k": fragment.truncation_k,
        "entries": [entry_to_dict(entry) for entry in fragment],
    }


def fragment_from_dict(data: Dict[str, Any]) -> GlobalIndexFragment:
    """Rebuild a fragment; rejects unknown format versions."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported fragment format version "
                         f"{version!r}")
    fragment = GlobalIndexFragment(int(data["truncation_k"]))
    for record in data["entries"]:
        fragment.install(entry_from_dict(record))
    return fragment


def save_fragment(fragment: GlobalIndexFragment, path: str) -> None:
    """Write a fragment to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fragment_to_dict(fragment), handle)


def load_fragment(path: str) -> GlobalIndexFragment:
    """Read a fragment back from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return fragment_from_dict(json.load(handle))


def save_network_index(network: "AlvisNetwork", path: str) -> None:
    """Persist every peer's fragment keyed by peer id (one JSON file)."""
    payload = {
        "version": _FORMAT_VERSION,
        "mode": network.mode,
        "fragments": {str(peer.peer_id):
                      fragment_to_dict(peer.fragment)
                      for peer in network.peers()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_network_index(network: "AlvisNetwork", path: str) -> int:
    """Restore fragments into an existing network.

    Peers present in the file but absent from the network are skipped
    (they may have churned out); returns the number of fragments
    restored.  The network's ``mode`` is restored as well.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version {payload.get('version')!r}")
    restored = 0
    live = set(network.peer_ids())
    for peer_text, fragment_data in payload["fragments"].items():
        peer_id = int(peer_text)
        if peer_id not in live:
            continue
        network.peer(peer_id).fragment = fragment_from_dict(fragment_data)
        restored += 1
    network.mode = payload.get("mode")
    return restored

"""Globally aggregated collection statistics (Layer 4 substrate).

The ranking layer "might use global document frequencies, average document
length, term frequencies and other statistical information, which are
stored in the P2P network" (Section 3).  Concretely:

* each term's **global document frequency** is aggregated at the peer
  responsible for the single-term key (contributions arrive batched in
  ``DfPublish`` messages and are read back with ``DfGet``);
* the **collection totals** (document count, total term count) are
  aggregated at the peer responsible for a reserved key, and give BM25 its
  N and average document length.

Client peers cache what they fetch; the cache also doubles as the
``document_frequencies`` callable of
:class:`~repro.ir.scoring.CollectionStatistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dht.hashing import hash_string
from repro.ir.scoring import CollectionStatistics

__all__ = ["COLLECTION_KEY", "COLLECTION_KEY_ID", "CollectionTotals",
           "StatsStore", "GlobalStatsCache"]

#: Reserved DHT key under which collection totals are aggregated.
COLLECTION_KEY = "__alvis_collection__"
COLLECTION_KEY_ID = hash_string(COLLECTION_KEY)


@dataclass
class CollectionTotals:
    """Aggregated collection-level numbers."""

    num_documents: int = 0
    total_terms: int = 0
    num_peers: int = 0

    @property
    def average_document_length(self) -> float:
        if self.num_documents == 0:
            return 0.0
        return self.total_terms / self.num_documents

    def fold(self, num_documents: int, total_terms: int) -> None:
        """Fold one peer's contribution into the totals."""
        if num_documents < 0 or total_terms < 0:
            raise ValueError("contributions must be non-negative")
        self.num_documents += num_documents
        self.total_terms += total_terms
        self.num_peers += 1


class StatsStore:
    """Server side: the statistics a peer is *responsible* for."""

    def __init__(self):
        self._df: Dict[str, int] = {}
        #: peer id -> (docs, terms) so re-publishing is idempotent.
        self._collection_reports: Dict[int, tuple] = {}
        # Running sums kept in lock-step with the reports so reading the
        # totals is O(1) instead of O(peers) — the statistics phase reads
        # them once per peer, which used to cost O(peers^2) overall.
        self._sum_documents = 0
        self._sum_terms = 0

    # Term dfs ----------------------------------------------------------

    def fold_dfs(self, contributions: Dict[str, int]) -> None:
        """Accumulate a batch of local-df contributions.

        Contributions may be negative *deltas* (document retraction);
        the aggregate is floored at zero so out-of-order deltas cannot
        drive a df negative.
        """
        for term, local_df in contributions.items():
            self._df[term] = max(0, self._df.get(term, 0) + local_df)

    def df(self, term: str) -> int:
        """Aggregated global df of ``term`` (0 when unknown)."""
        return self._df.get(term, 0)

    def dfs(self, terms: Iterable[str]) -> Dict[str, int]:
        """Batch df lookup."""
        return {term: self._df.get(term, 0) for term in terms}

    def terms_stored(self) -> int:
        return len(self._df)

    # Collection totals ---------------------------------------------------

    def fold_collection(self, peer_id: int, num_documents: int,
                        total_terms: int) -> None:
        """Record one peer's collection report (idempotent per peer)."""
        if num_documents < 0 or total_terms < 0:
            raise ValueError("contributions must be non-negative")
        old = self._collection_reports.get(peer_id)
        if old is not None:
            self._sum_documents -= old[0]
            self._sum_terms -= old[1]
        self._collection_reports[peer_id] = (num_documents, total_terms)
        self._sum_documents += num_documents
        self._sum_terms += total_terms

    def collection_totals(self) -> CollectionTotals:
        return CollectionTotals(
            num_documents=self._sum_documents,
            total_terms=self._sum_terms,
            num_peers=len(self._collection_reports))


class GlobalStatsCache:
    """Client side: cached global statistics at one peer."""

    def __init__(self):
        self._df: Dict[str, int] = {}
        self._totals: Optional[CollectionTotals] = None

    def store_dfs(self, dfs: Dict[str, int]) -> None:
        self._df.update(dfs)

    def store_totals(self, totals: CollectionTotals) -> None:
        self._totals = totals

    def df(self, term: str) -> int:
        """Cached global df (0 when never fetched)."""
        return self._df.get(term, 0)

    def has_df(self, term: str) -> bool:
        return term in self._df

    def missing_terms(self, terms: Iterable[str]) -> List[str]:
        """The subset of ``terms`` not yet cached."""
        return [term for term in terms if term not in self._df]

    @property
    def totals(self) -> Optional[CollectionTotals]:
        return self._totals

    def statistics(self) -> CollectionStatistics:
        """A BM25-ready view over the cached global numbers."""
        if self._totals is None:
            raise RuntimeError(
                "collection totals not fetched; run the statistics phase")
        return CollectionStatistics(
            num_documents=self._totals.num_documents,
            average_document_length=self._totals.average_document_length,
            document_frequencies=self.df,
        )

"""Query-lattice exploration — the algorithm of Figure 1.

"As soon as a peer receives a new query, it starts to explore the lattice
of query term combinations in decreasing combination size order, starting
with the query itself.  For each node in the query lattice, the querying
peer requests the posting list associated with the term combination from
the peer responsible for it.  If the term combination is indeed present in
the global index, the requested posting list is sent back to the querying
peer, and if this list is not truncated, the part of the query lattice
dominated by the term combination is excluded from further lattice
exploration."

The optional approximation ("pruning the part of the lattice dominated by
a key associated with a truncated posting list") is the
``prune_on_truncated`` flag; it trades a marginal precision loss for load
balance (experiments E1 and E6).

The explorer is pure: probing is delegated to a callback, so the same
algorithm is unit-testable offline and drives real network probes in
:mod:`repro.core.retrieval`.  Two extensions serve the batched/cached
query engine (:mod:`repro.core.query_engine`):

* a *level* probe callback (``probe_level``) receives every unexcluded
  key of one lattice level at once, so the caller can batch the frontier's
  DHT lookups and probe requests — semantically identical to sequential
  probing because domination-based exclusions only ever affect strictly
  smaller keys (later levels);
* an early-termination hook (``should_stop``), consulted between levels
  with the keys still to be probed; when it fires, the remaining lattice
  is recorded as :attr:`ProbeStatus.PRUNED` without any network traffic
  (top-k threshold termination à la Akbarinia et al.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.keys import Key
from repro.ir.postings import PostingList

__all__ = ["ProbeStatus", "ProbeRecord", "ExplorationOutcome",
           "LatticeExplorer"]

#: The probe callback: Key -> (found, posting list or None).  A probe
#: lost to churn may report itself with a third element: (False, None,
#: True) records the node as :attr:`ProbeStatus.DROPPED`.
ProbeFn = Callable[[Key], Tuple[bool, Optional[PostingList]]]

#: The batched probe callback: one lattice level's unexcluded keys ->
#: per-key (found, posting list or None[, dropped]), in the same order.
ProbeLevelFn = Callable[[List[Key]],
                        Sequence[Tuple[bool, Optional[PostingList]]]]

#: Early-termination hook: (outcome so far, keys still to be probed) ->
#: True to prune the rest of the lattice.
StopFn = Callable[["ExplorationOutcome", List[Key]], bool]


class ProbeStatus(enum.Enum):
    """What happened at one lattice node (the legend of Figure 1)."""

    UNTRUNCATED = "untruncated"   #: indexed, complete list retrieved
    TRUNCATED = "truncated"       #: indexed, truncated list retrieved
    MISSING = "missing"           #: probed but not in the global index
    SKIPPED = "skipped"           #: excluded by a dominating key
    PRUNED = "pruned"             #: cut off by top-k early termination
    DROPPED = "dropped"           #: probe lost to churn (owner departed)


@dataclass
class ProbeRecord:
    """One lattice node's outcome."""

    key: Key
    status: ProbeStatus
    postings: Optional[PostingList] = None


@dataclass
class ExplorationOutcome:
    """Everything the exploration produced."""

    query: Key
    records: List[ProbeRecord] = field(default_factory=list)

    @property
    def retrieved(self) -> Dict[Key, PostingList]:
        """Keys whose posting lists were actually fetched."""
        return {record.key: record.postings
                for record in self.records
                if record.postings is not None}

    def with_status(self, status: ProbeStatus) -> List[Key]:
        """Keys that ended in ``status``."""
        return [record.key for record in self.records
                if record.status == status]

    @property
    def probed_count(self) -> int:
        """Nodes that caused a network probe (neither skipped nor
        pruned)."""
        return sum(1 for record in self.records
                   if record.status not in (ProbeStatus.SKIPPED,
                                            ProbeStatus.PRUNED))

    @property
    def skipped_count(self) -> int:
        return sum(1 for record in self.records
                   if record.status == ProbeStatus.SKIPPED)

    @property
    def pruned_count(self) -> int:
        """Nodes cut off by top-k early termination."""
        return sum(1 for record in self.records
                   if record.status == ProbeStatus.PRUNED)

    def missing_keys(self) -> List[Key]:
        """Probed-but-absent combinations (QDI's indexing candidates)."""
        return self.with_status(ProbeStatus.MISSING)

    def covered_by_untruncated(self, key: Key) -> bool:
        """True if some retrieved *untruncated* key dominates or equals
        ``key`` — then indexing ``key`` would be redundant (QDI)."""
        for record in self.records:
            if record.status != ProbeStatus.UNTRUNCATED:
                continue
            if record.key == key or record.key.dominates(key):
                return True
        return False


class LatticeExplorer:
    """Top-down exploration with domination-based pruning."""

    def __init__(self, prune_on_truncated: bool = True,
                 max_lattice_terms: int = 8):
        #: Queries longer than this are truncated to their first
        #: ``max_lattice_terms`` terms — the lattice has 2^q - 1 nodes, so
        #: unbounded q would be pathological (real engines bound query
        #: length the same way).
        if max_lattice_terms < 1:
            raise ValueError("max_lattice_terms must be >= 1")
        self.prune_on_truncated = prune_on_truncated
        self.max_lattice_terms = max_lattice_terms

    def explore(self, query_terms: Iterable[str],
                probe: Optional[ProbeFn] = None,
                probe_level: Optional[ProbeLevelFn] = None,
                should_stop: Optional[StopFn] = None
                ) -> ExplorationOutcome:
        """Explore the lattice of ``query_terms``.

        Exactly one of ``probe`` (per-key, the compatibility path) and
        ``probe_level`` (per-frontier, the batched path) must be given;
        both yield identical outcomes for the same underlying index.
        ``should_stop`` is consulted after every level and terminates the
        exploration when it returns True, marking all remaining
        unexcluded keys :attr:`ProbeStatus.PRUNED`.

        Returns the full exploration record, in the deterministic order in
        which nodes were visited (by decreasing size, then term order).
        """
        if (probe is None) == (probe_level is None):
            raise ValueError(
                "exactly one of probe and probe_level is required")
        terms = list(dict.fromkeys(query_terms))[: self.max_lattice_terms]
        if not terms:
            raise ValueError("query has no terms")
        query = Key(terms)
        outcome = ExplorationOutcome(query=query)
        excluded: set = set()
        levels = Key.lattice_levels(terms)
        for depth, level in enumerate(levels):
            if probe is not None:
                self._explore_level_sequential(level, probe, outcome,
                                               excluded)
            else:
                assert probe_level is not None
                self._explore_level_batched(level, probe_level, outcome,
                                            excluded)
            if should_stop is None:
                continue
            remaining = self.remaining_after(levels, depth, excluded)
            if remaining and should_stop(outcome, remaining):
                self.prune_remaining(levels, depth, outcome, excluded)
                break
        return outcome

    # ------------------------------------------------------------------
    # Per-level building blocks (shared with the async runtime)
    # ------------------------------------------------------------------

    def record_level(self, level: Sequence[Key],
                     results_by_key: Dict[Key, Tuple],
                     outcome: ExplorationOutcome, excluded: set) -> None:
        """Classify one level's probe results in level order.

        Keys absent from ``results_by_key`` are recorded as
        :attr:`ProbeStatus.SKIPPED`; present keys are classified through
        the exclusion-updating rules, honoring an optional third
        "dropped" tuple element.  This is the single source of truth for
        per-level record semantics — the synchronous batched path and
        the async runtime both go through it.
        """
        for key in level:
            if key not in results_by_key:
                outcome.records.append(
                    ProbeRecord(key, ProbeStatus.SKIPPED))
                continue
            result = results_by_key[key]
            found, postings = result[0], result[1]
            dropped = len(result) > 2 and bool(result[2])
            self._record_result(key, found, postings, outcome, excluded,
                                dropped=dropped)

    @staticmethod
    def remaining_after(levels: Sequence[Sequence[Key]], depth: int,
                        excluded: set) -> List[Key]:
        """Unexcluded keys of every level below ``depth`` (the
        ``should_stop`` hook's second argument)."""
        return [key
                for later in levels[depth + 1:]
                for key in later
                if key not in excluded]

    @staticmethod
    def prune_remaining(levels: Sequence[Sequence[Key]], depth: int,
                        outcome: ExplorationOutcome,
                        excluded: set) -> None:
        """Record every level below ``depth`` as PRUNED (or SKIPPED when
        already excluded) after early termination fired."""
        for later in levels[depth + 1:]:
            for key in later:
                status = (ProbeStatus.SKIPPED
                          if key in excluded
                          else ProbeStatus.PRUNED)
                outcome.records.append(ProbeRecord(key, status))

    # ------------------------------------------------------------------

    def _record_result(self, key: Key, found: bool,
                       postings: Optional[PostingList],
                       outcome: ExplorationOutcome,
                       excluded: set,
                       dropped: bool = False) -> ProbeRecord:
        """Classify one probe result and update the exclusion set."""
        if dropped:
            # The probe was lost to churn: the owner never saw it, so it
            # is neither "missing" (QDI must not count it as an indexing
            # candidate) nor an exclusion source.
            record = ProbeRecord(key, ProbeStatus.DROPPED)
        elif not found or postings is None:
            record = ProbeRecord(key, ProbeStatus.MISSING)
        elif postings.truncated:
            record = ProbeRecord(key, ProbeStatus.TRUNCATED, postings)
            if self.prune_on_truncated:
                excluded.update(key.proper_subsets())
        else:
            record = ProbeRecord(key, ProbeStatus.UNTRUNCATED, postings)
            excluded.update(key.proper_subsets())
        outcome.records.append(record)
        return record

    def _explore_level_sequential(self, level: List[Key], probe: ProbeFn,
                                  outcome: ExplorationOutcome,
                                  excluded: set) -> None:
        for key in level:
            if key in excluded:
                outcome.records.append(
                    ProbeRecord(key, ProbeStatus.SKIPPED))
                continue
            result = probe(key)
            found, postings = result[0], result[1]
            dropped = len(result) > 2 and bool(result[2])
            self._record_result(key, found, postings, outcome, excluded,
                                dropped=dropped)

    def _explore_level_batched(self, level: List[Key],
                               probe_level: ProbeLevelFn,
                               outcome: ExplorationOutcome,
                               excluded: set) -> None:
        # Exclusions only ever cover *strictly smaller* keys, so results
        # from this level cannot exclude its own siblings — probing the
        # whole frontier at once is equivalent to probing it in order.
        frontier = [key for key in level if key not in excluded]
        results = probe_level(frontier) if frontier else []
        if len(results) != len(frontier):
            raise ValueError(
                f"probe_level returned {len(results)} results for "
                f"{len(frontier)} keys")
        self.record_level(level, dict(zip(frontier, results)), outcome,
                          excluded)

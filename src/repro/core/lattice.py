"""Query-lattice exploration — the algorithm of Figure 1.

"As soon as a peer receives a new query, it starts to explore the lattice
of query term combinations in decreasing combination size order, starting
with the query itself.  For each node in the query lattice, the querying
peer requests the posting list associated with the term combination from
the peer responsible for it.  If the term combination is indeed present in
the global index, the requested posting list is sent back to the querying
peer, and if this list is not truncated, the part of the query lattice
dominated by the term combination is excluded from further lattice
exploration."

The optional approximation ("pruning the part of the lattice dominated by
a key associated with a truncated posting list") is the
``prune_on_truncated`` flag; it trades a marginal precision loss for load
balance (experiments E1 and E6).

The explorer is pure: probing is delegated to a callback, so the same
algorithm is unit-testable offline and drives real network probes in
:mod:`repro.core.retrieval`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.keys import Key
from repro.ir.postings import PostingList

__all__ = ["ProbeStatus", "ProbeRecord", "ExplorationOutcome",
           "LatticeExplorer"]

#: The probe callback: Key -> (found, posting list or None).
ProbeFn = Callable[[Key], Tuple[bool, Optional[PostingList]]]


class ProbeStatus(enum.Enum):
    """What happened at one lattice node (the legend of Figure 1)."""

    UNTRUNCATED = "untruncated"   #: indexed, complete list retrieved
    TRUNCATED = "truncated"       #: indexed, truncated list retrieved
    MISSING = "missing"           #: probed but not in the global index
    SKIPPED = "skipped"           #: excluded by a dominating key


@dataclass
class ProbeRecord:
    """One lattice node's outcome."""

    key: Key
    status: ProbeStatus
    postings: Optional[PostingList] = None


@dataclass
class ExplorationOutcome:
    """Everything the exploration produced."""

    query: Key
    records: List[ProbeRecord] = field(default_factory=list)

    @property
    def retrieved(self) -> Dict[Key, PostingList]:
        """Keys whose posting lists were actually fetched."""
        return {record.key: record.postings
                for record in self.records
                if record.postings is not None}

    def with_status(self, status: ProbeStatus) -> List[Key]:
        """Keys that ended in ``status``."""
        return [record.key for record in self.records
                if record.status == status]

    @property
    def probed_count(self) -> int:
        """Nodes that caused a network probe (everything but SKIPPED)."""
        return sum(1 for record in self.records
                   if record.status != ProbeStatus.SKIPPED)

    @property
    def skipped_count(self) -> int:
        return sum(1 for record in self.records
                   if record.status == ProbeStatus.SKIPPED)

    def missing_keys(self) -> List[Key]:
        """Probed-but-absent combinations (QDI's indexing candidates)."""
        return self.with_status(ProbeStatus.MISSING)

    def covered_by_untruncated(self, key: Key) -> bool:
        """True if some retrieved *untruncated* key dominates or equals
        ``key`` — then indexing ``key`` would be redundant (QDI)."""
        for record in self.records:
            if record.status != ProbeStatus.UNTRUNCATED:
                continue
            if record.key == key or record.key.dominates(key):
                return True
        return False


class LatticeExplorer:
    """Top-down exploration with domination-based pruning."""

    def __init__(self, prune_on_truncated: bool = True,
                 max_lattice_terms: int = 8):
        #: Queries longer than this are truncated to their first
        #: ``max_lattice_terms`` terms — the lattice has 2^q - 1 nodes, so
        #: unbounded q would be pathological (real engines bound query
        #: length the same way).
        if max_lattice_terms < 1:
            raise ValueError("max_lattice_terms must be >= 1")
        self.prune_on_truncated = prune_on_truncated
        self.max_lattice_terms = max_lattice_terms

    def explore(self, query_terms: Iterable[str],
                probe: ProbeFn) -> ExplorationOutcome:
        """Explore the lattice of ``query_terms``, probing via ``probe``.

        Returns the full exploration record, in the deterministic order in
        which nodes were visited (by decreasing size, then term order).
        """
        terms = list(dict.fromkeys(query_terms))[: self.max_lattice_terms]
        if not terms:
            raise ValueError("query has no terms")
        query = Key(terms)
        outcome = ExplorationOutcome(query=query)
        excluded: set = set()
        for level in Key.lattice_levels(terms):
            for key in level:
                if key in excluded:
                    outcome.records.append(
                        ProbeRecord(key, ProbeStatus.SKIPPED))
                    continue
                found, postings = probe(key)
                if not found or postings is None:
                    outcome.records.append(
                        ProbeRecord(key, ProbeStatus.MISSING))
                    continue
                if postings.truncated:
                    outcome.records.append(
                        ProbeRecord(key, ProbeStatus.TRUNCATED, postings))
                    if self.prune_on_truncated:
                        excluded.update(key.proper_subsets())
                else:
                    outcome.records.append(
                        ProbeRecord(key, ProbeStatus.UNTRUNCATED, postings))
                    excluded.update(key.proper_subsets())
        return outcome

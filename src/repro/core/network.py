"""The AlvisP2P network facade.

Owns the simulation substrate (event kernel, transport, DHT ring), the
peer population, and the orchestration of the global phases:

1. :meth:`run_statistics_phase` — aggregate global dfs and collection
   totals through the DHT, then let every peer prefetch the statistics it
   needs for publish-time scoring;
2. :meth:`build_index` — construct the global index with the chosen
   strategy (``"hdk"``, ``"qdi"`` or ``"single"``);
3. :meth:`query` — multi-keyword retrieval from any peer;
4. churn (:meth:`churn`) with byte-accounted index handover.

This is the class the examples and benchmarks drive; see
``examples/quickstart.py`` for the canonical usage.

RNG discipline: every stochastic subsystem draws from its own
``make_rng(seed, label)`` stream ("latency" for the transport, "peer-ids"
for identifier placement, "churn"/"churn-N" per churn process) and no
module-level ``random`` state is ever touched.  Deterministic features
that change *how much* traffic flows — probe caching, frontier batching,
early termination — therefore cannot perturb churn decisions or any other
subsystem's random sequence under a fixed seed
(``tests/test_core_network.py`` asserts this trace equality).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import protocol
from repro.core.access import AccessPolicy
from repro.core.config import AlvisConfig
from repro.core.global_index import PackedKeyEntry
from repro.core.global_stats import COLLECTION_KEY_ID
from repro.core.hdk import HDKIndexer, HDKStats
from repro.core.keys import Key
from repro.core.peer import AlvisPeer
from repro.core.ranking import RankedDocument
from repro.core.faults import FaultInjector
from repro.core.retrieval import QueryTrace, RetrievalComponent
from repro.core.runtime import AsyncQueryRuntime, QueryJob
from repro.core.workload import (PoissonArrivals, RoundRobinOrigins,
                                 UniformOrigins, Workload)
from repro.dht.churn import ChurnProcess
from repro.dht.hashing import hash_string
from repro.dht.ring import DHTRing
from repro.dht.routing import FingerTableStrategy, HopSpaceFingers, uniform_ids
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.postings import PackedPostings, set_legacy_construction
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, set_legacy_sizing
from repro.net.transport import SimTransport, TransportBackend
from repro.sim.events import LegacyEventQueue, Simulator
from repro.util.rng import make_rng

__all__ = ["AlvisNetwork"]


class AlvisNetwork:
    """A simulated AlvisP2P network of ``num_peers`` peers."""

    def __init__(self, num_peers: int,
                 config: Optional[AlvisConfig] = None,
                 seed: int = 0,
                 strategy: Optional[FingerTableStrategy] = None,
                 latency: Optional[LatencyModel] = None,
                 peer_ids: Optional[Sequence[int]] = None,
                 account_lookups: bool = True,
                 analyzer: Optional[Analyzer] = None,
                 virtual_nodes: int = 1,
                 kernel_profile: str = "fast"):
        if num_peers <= 0:
            raise ValueError(f"num_peers must be positive, got {num_peers}")
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        if kernel_profile not in ("fast", "legacy"):
            raise ValueError(
                f"kernel_profile must be 'fast' or 'legacy', "
                f"got {kernel_profile!r}")
        self.config = config if config is not None else AlvisConfig()
        self.seed = seed
        self.account_lookups = account_lookups
        #: ``"fast"`` (default) runs the optimised event kernel and
        #: churn-local lazy ring maintenance; ``"legacy"`` pins the
        #: pre-optimisation kernel (dataclass events, eager full table
        #: rebuilds) for A/B benchmarking.  Both profiles are
        #: trace-equivalent — bench_scale asserts it.
        self.kernel_profile = kernel_profile
        # Pin (or unpin) the module-level CPU paths the profiles A/B:
        # payload sizing and posting-list construction.  Both settings
        # are semantics-identical (same bytes, same lists) and
        # process-wide — the most recently constructed network wins,
        # which is what the one-leg-per-subprocess benchmarks rely on.
        set_legacy_sizing(kernel_profile == "legacy")
        set_legacy_construction(kernel_profile == "legacy")
        #: Virtual ring positions per peer (classic DHT load balancing:
        #: more positions -> each peer owns several small key ranges, so
        #: per-peer storage evens out).  Values > 1 are incompatible with
        #: churn/crash in this implementation (see :meth:`churn`).
        self.virtual_nodes = virtual_nodes
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        if kernel_profile == "legacy":
            self.simulator = Simulator(queue=LegacyEventQueue())
        else:
            self.simulator = Simulator()
        self.transport = SimTransport(
            self.simulator,
            latency if latency is not None else ConstantLatency(0.02),
            make_rng(seed, "latency"))
        if self.config.service_rate > 0:
            # Bounded per-endpoint service queues (congestion model):
            # async deliveries pay queueing delay and can overflow.
            self.transport.configure_service_model(
                self.config.service_rate, self.config.queue_capacity,
                self.config.service_reject_cost)
        self.ring = DHTRing(
            strategy if strategy is not None else HopSpaceFingers(),
            self.transport,
            lazy_tables=(kernel_profile != "legacy"),
            fast_hops=(kernel_profile != "legacy"),
            compact_nodes=(kernel_profile != "legacy"))
        if peer_ids is None:
            peer_ids = uniform_ids(make_rng(seed, "peer-ids"), num_peers)
        elif len(set(peer_ids)) != num_peers:
            raise ValueError("peer_ids must be distinct and match num_peers")
        self._peers: Dict[int, AlvisPeer] = {}
        #: ring position -> owning peer (identity for primary positions).
        self._virtual_to_peer: Dict[int, int] = {}
        for peer_id in peer_ids:
            self._add_peer(peer_id)
        self.ring.maintain()
        self._doc_ids = itertools.count(1)
        self._doc_owner: Dict[int, int] = {}
        self.mode: Optional[str] = None
        self.retrieval = RetrievalComponent(self)
        #: The async query runtime (event-kernel execution of the L3/L4
        #: path); active when ``config.async_queries`` is set, but always
        #: constructed so the monitor can report its counters.
        self.runtime = AsyncQueryRuntime(self)
        self._workload_streams = 0
        self._statistics_done = False
        #: origin peer -> (membership epoch, {key_id: owner}).
        self._lookup_caches: Dict[int, Tuple[int, Dict[int, int]]] = {}
        #: Bumped on every global-index mutation (publish, retract,
        #: handover, on-demand indexing); probe caches pair it with the
        #: ring's membership epoch as their validity tag.
        self.index_version = 0
        #: Churn processes handed out so far — each gets its own derived
        #: RNG stream, so a second process never replays the first one's
        #: join/leave sequence.
        self._churn_streams = 0
        #: The unified membership-fault surface: ``faults.churn()``,
        #: ``faults.crash()``, ``faults.graceful_depart()``,
        #: ``faults.partition()``/``heal()``, ``faults.degrade()``.
        self.faults = FaultInjector(self)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _add_peer(self, peer_id: int) -> AlvisPeer:
        peer = AlvisPeer(peer_id, self.config, self.analyzer)
        peer.services = self
        self._peers[peer_id] = peer
        self.transport.register(peer_id, peer)
        self.ring.add_node(peer_id)
        self._virtual_to_peer[peer_id] = peer_id
        for index in range(1, self.virtual_nodes):
            virtual_id = hash_string(f"vnode/{peer_id}/{index}")
            while (self.ring.contains(virtual_id)
                   or virtual_id in self._virtual_to_peer):
                virtual_id = hash_string(f"vnode/{peer_id}/{index}/retry")
            self.ring.add_node(virtual_id)
            self._virtual_to_peer[virtual_id] = peer_id
            # Route traffic addressed to the virtual position to the
            # owning peer's endpoint (LookupHop accounting needs this).
            self.transport.register(virtual_id, peer)
        return peer

    def peer_of_ring_node(self, node_id: int) -> int:
        """Map a ring position (possibly virtual) to its owning peer."""
        return self._virtual_to_peer.get(node_id, node_id)

    def owner_peer_of_key(self, key_id: int) -> int:
        """The peer responsible for ``key_id`` (through virtual nodes)."""
        return self.peer_of_ring_node(self.ring.successor_of(key_id))

    @property
    def num_peers(self) -> int:
        return len(self._peers)

    def peer(self, peer_id: int) -> AlvisPeer:
        """The peer object for ``peer_id`` (KeyError if absent)."""
        return self._peers[peer_id]

    def peers(self) -> List[AlvisPeer]:
        """All live peers, in id order (deterministic iteration)."""
        return [self._peers[peer_id]
                for peer_id in sorted(self._peers)]

    def peer_ids(self) -> List[int]:
        return sorted(self._peers)

    # ------------------------------------------------------------------
    # NetworkServices implementation (used by peers and components)
    # ------------------------------------------------------------------

    def lookup_owner(self, origin: int, key_id: int) -> Tuple[int, int]:
        """Resolve the responsible peer; routing traffic optionally
        accounted as ``LookupHop`` messages.

        With ``config.cache_lookups`` the resolution is cached at the
        origin peer (0 hops on a hit); the cache self-invalidates on any
        ring membership change via the ring's membership epoch.
        """
        if self.config.cache_lookups:
            cache = self._fresh_lookup_cache(origin)
            cached_owner = cache.get(key_id)
            if cached_owner is not None:
                return cached_owner, 0
            result = self.ring.lookup(origin, key_id,
                                      account=self.account_lookups)
            owner = self.peer_of_ring_node(result.owner)
            if len(cache) < self.config.lookup_cache_size:
                cache[key_id] = owner
            return owner, result.hops
        result = self.ring.lookup(origin, key_id,
                                  account=self.account_lookups)
        return self.peer_of_ring_node(result.owner), result.hops

    def _fresh_lookup_cache(self, origin: int) -> Dict[int, int]:
        """The origin's key->owner cache, reset on membership change."""
        epoch, cache = self._lookup_caches.get(origin, (-1, None))
        if epoch != self.ring.membership_epoch or cache is None:
            cache = {}
            self._lookup_caches[origin] = (self.ring.membership_epoch,
                                           cache)
        return cache

    def lookup_owners(self, origin: int,
                      key_ids: Sequence[int]) -> Tuple[Dict[int, int], int]:
        """Resolve the responsible peers for a *batch* of keys.

        All keys of the batch are routed in one shared round
        (:meth:`~repro.dht.ring.DHTRing.lookup_many`): keys taking the
        same hop share one ``LookupHop`` message, so the returned message
        count — the amortized hop cost — is typically far below the sum
        of the individual hop counts.  Honors ``config.cache_lookups``
        exactly like :meth:`lookup_owner`.  Returns ``({key_id: owner
        peer}, routed hop messages)``.
        """
        unique = list(dict.fromkeys(key_ids))
        owners: Dict[int, int] = {}
        cache: Optional[Dict[int, int]] = None
        if self.config.cache_lookups:
            cache = self._fresh_lookup_cache(origin)
            for key_id in unique:
                cached_owner = cache.get(key_id)
                if cached_owner is not None:
                    owners[key_id] = cached_owner
        misses = [key_id for key_id in unique if key_id not in owners]
        messages = 0
        if misses:
            result = self.ring.lookup_many(origin, misses,
                                           account=self.account_lookups)
            messages = result.messages
            for key_id in misses:
                owner = self.peer_of_ring_node(result.owners[key_id])
                owners[key_id] = owner
                if cache is not None and \
                        len(cache) < self.config.lookup_cache_size:
                    cache[key_id] = owner
        return owners, messages

    def note_index_update(self) -> None:
        """Record a global-index mutation.

        Advances the version tag that probe caches pair with the ring's
        membership epoch, so every peer's cached postings for the old
        index state are dropped lazily on its next query.
        """
        self.index_version += 1

    def send(self, origin: int, dst: int, kind: str,
             payload: Dict[str, Any]
             ) -> Tuple[Optional[Dict[str, Any]], float]:
        """Deliver one request; self-addressed messages short-circuit
        in memory (no bytes, no latency), as in the deployed system."""
        message = Message(src=origin, dst=dst, kind=kind, payload=payload)
        if dst == origin:
            reply = self.transport.send_local(message)
            return (dict(reply.payload) if reply is not None else None, 0.0)
        reply, rtt = self.transport.request(message)
        return (dict(reply.payload) if reply is not None else None, rtt)

    # ------------------------------------------------------------------
    # Document placement
    # ------------------------------------------------------------------

    def publish_documents(self, peer_id: int,
                          documents: Iterable[Document],
                          policy: Optional[AccessPolicy] = None) -> List[int]:
        """Add documents to one peer's shared directory.

        Document ids are (re)assigned by the network so they are globally
        unique; returns the assigned ids.
        """
        peer = self.peer(peer_id)
        assigned = []
        for document in documents:
            document.doc_id = next(self._doc_ids)
            peer.publish_document(document, policy=policy)
            self._doc_owner[document.doc_id] = peer_id
            assigned.append(document.doc_id)
        return assigned

    def distribute_documents(self, documents: Sequence[Document],
                             assignment: str = "round_robin") -> None:
        """Spread a collection over all peers.

        ``"round_robin"`` interleaves documents; ``"contiguous"`` gives
        each peer a consecutive slice (topical locality when the corpus is
        topic-ordered — the digital-library scenario).
        """
        ids = self.peer_ids()
        if assignment == "round_robin":
            for index, document in enumerate(documents):
                self.publish_documents(ids[index % len(ids)], [document])
        elif assignment == "contiguous":
            per_peer = max(1, (len(documents) + len(ids) - 1) // len(ids))
            for index, document in enumerate(documents):
                owner = ids[min(index // per_peer, len(ids) - 1)]
                self.publish_documents(owner, [document])
        else:
            raise ValueError(f"unknown assignment {assignment!r}")

    def doc_owner(self, doc_id: int) -> Optional[int]:
        """The peer holding ``doc_id`` (None for unknown/departed docs)."""
        owner = self._doc_owner.get(doc_id)
        if owner is None or owner not in self._peers:
            return None
        return owner

    def total_documents(self) -> int:
        return sum(peer.engine.num_documents for peer in self.peers())

    # ------------------------------------------------------------------
    # Phase 1: global statistics
    # ------------------------------------------------------------------

    def run_statistics_phase(self) -> None:
        """Aggregate and prefetch the global BM25 statistics.

        Four sub-steps, all through the DHT with byte accounting:
        collection totals publish, per-term df publish (batched by owner),
        collection totals fetch, and per-peer df prefetch for the local
        vocabulary (needed to score publishable postings globally).
        """
        collection_owner = {}
        for peer in self.peers():
            owner, _hops = self.lookup_owner(peer.peer_id,
                                             COLLECTION_KEY_ID)
            collection_owner[peer.peer_id] = owner
            docs, terms = peer.collection_report()
            self.send(peer.peer_id, owner, protocol.COLLECTION_PUBLISH,
                      {"peer": peer.peer_id, "docs": docs, "terms": terms})
        for peer in self.peers():
            contributions = peer.local_df_contributions()
            for owner, batch in self._batch_by_owner(
                    peer.peer_id, contributions).items():
                self.send(peer.peer_id, owner, protocol.DF_PUBLISH,
                          {"dfs": batch})
        for peer in self.peers():
            reply, _rtt = self.send(peer.peer_id,
                                    collection_owner[peer.peer_id],
                                    protocol.COLLECTION_GET, {})
            assert reply is not None
            from repro.core.global_stats import CollectionTotals
            totals = CollectionTotals(num_documents=int(reply["docs"]),
                                      total_terms=int(reply["terms"]),
                                      num_peers=int(reply["peers"]))
            peer.stats_cache.store_totals(totals)
        for peer in self.peers():
            vocabulary = peer.engine.index.vocabulary()
            for owner, batch in self._batch_by_owner(
                    peer.peer_id,
                    {term: 0 for term in vocabulary}).items():
                reply, _rtt = self.send(peer.peer_id, owner,
                                        protocol.DF_GET,
                                        {"terms": sorted(batch)})
                if reply is not None:
                    peer.stats_cache.store_dfs(dict(reply["dfs"]))
        self._statistics_done = True

    def _batch_by_owner(self, origin: int,
                        per_term: Dict[str, int]) -> Dict[int, Dict[str, int]]:
        """Group a per-term mapping by the owner of each term's key.

        With ``config.batch_index_lookups`` all term keys are resolved in
        one shared ``lookup_many`` round (same greedy routes, hence the
        same owners; fewer ``LookupHop`` messages) instead of one lookup
        per term.
        """
        batches: Dict[int, Dict[str, int]] = {}
        if self.config.batch_index_lookups:
            key_ids = {term: Key([term]).key_id for term in per_term}
            owners, _messages = self.lookup_owners(
                origin, list(key_ids.values()))
            for term, value in per_term.items():
                batches.setdefault(owners[key_ids[term]], {})[term] = value
            return batches
        for term, value in per_term.items():
            owner, _hops = self.lookup_owner(origin, Key([term]).key_id)
            batches.setdefault(owner, {})[term] = value
        return batches

    # ------------------------------------------------------------------
    # Phase 2: index construction
    # ------------------------------------------------------------------

    def build_index(self, mode: str = "hdk") -> HDKStats:
        """Construct the global index.

        ``"hdk"`` — full HDK rounds; ``"qdi"`` — single-term base plus
        query-driven managers at every peer; ``"single"`` — single-term
        base only (the unscalable-baseline comparison uses
        :mod:`repro.baselines.single_term` instead, which keeps *full*
        lists).
        """
        if not self._statistics_done:
            self.run_statistics_phase()
        indexer = HDKIndexer(self)
        if mode == "hdk":
            stats = indexer.build()
        elif mode == "qdi":
            stats = indexer.build_single_term_only()
            for peer in self.peers():
                peer.enable_qdi()
        elif mode == "single":
            stats = indexer.build_single_term_only()
        else:
            raise ValueError(f"unknown index mode {mode!r}")
        self.mode = mode
        self.note_index_update()
        return stats

    def publish_incremental(self, peer_id: int, document: Document,
                            policy: Optional[AccessPolicy] = None) -> int:
        """Publish one new document after the index was built.

        Updates the peer's local engine, pushes df deltas and the
        document's single-term postings into the global index — the
        steady-state "index some new documents" flow of the demo.
        """
        doc_id = self.publish_documents(peer_id, [document], policy)[0]
        self.note_index_update()
        peer = self.peer(peer_id)
        terms = sorted(set(self.analyzer.analyze(document.text)))
        for owner, batch in self._batch_by_owner(
                peer_id, {term: 1 for term in terms}).items():
            self.send(peer_id, owner, protocol.DF_PUBLISH, {"dfs": batch})
        stats = (peer.stats_cache.statistics()
                 if peer.stats_cache.totals is not None else None)
        owners_map: Optional[Dict[int, int]] = None
        if self.config.batch_index_lookups:
            owners_map, _messages = self.lookup_owners(
                peer_id, [Key([term]).key_id for term in terms])
        for term in terms:
            key = Key([term])
            postings = peer.engine.top_k_for_key(
                [term], self.config.truncation_k, stats=stats)
            local_df = postings.global_df
            if self.config.packed_postings:
                postings = PackedPostings.from_list(postings)
            if owners_map is not None:
                owner = owners_map[key.key_id]
            else:
                owner, _hops = self.lookup_owner(peer_id, key.key_id)
            payload = {"contributor": peer_id,
                       "items": [{"key_terms": [term],
                                  "postings": postings,
                                  "local_df": local_df}]}
            self.send(peer_id, owner, protocol.PUBLISH_KEY, payload)
        return doc_id

    def unpublish(self, peer_id: int, doc_id: int) -> None:
        """Remove a shared document and retract it from the global index.

        The holder removes the document locally, pushes negative df
        deltas to the term owners, and sends ``RetractDoc`` to the
        responsible peer of each of the document's single-term keys.
        Combination keys that still reference the document are cleaned
        lazily: the retrieval path drops results whose document no
        longer resolves to a live owner.
        """
        peer = self.peer(peer_id)
        document = peer.engine.store.get(doc_id)
        if document is None:
            raise KeyError(f"peer {peer_id} does not hold doc {doc_id}")
        terms = sorted(set(self.analyzer.analyze(document.text)))
        peer.unpublish_document(doc_id)
        self._doc_owner.pop(doc_id, None)
        self.note_index_update()
        for owner, batch in self._batch_by_owner(
                peer_id, {term: -1 for term in terms}).items():
            self.send(peer_id, owner, protocol.DF_PUBLISH,
                      {"dfs": batch})
        for term in terms:
            key = Key([term])
            owner, _hops = self.lookup_owner(peer_id, key.key_id)
            payload = {"key_terms": [term], "doc_id": doc_id,
                       "contributor": peer_id,
                       "new_local_df":
                       peer.engine.index.document_frequency(term)}
            self.send(peer_id, owner, protocol.RETRACT_DOC, payload)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(self, origin: int, query: Union[str, Sequence[str]],
              refine: Optional[bool] = None
              ) -> Tuple[List[RankedDocument], QueryTrace]:
        """Run one multi-keyword query from peer ``origin``."""
        return self.retrieval.query(origin, query, refine=refine)

    def submit_workload(self, workload: Workload,
                        refine: Optional[bool] = None,
                        start: float = 0.0) -> List[QueryJob]:
        """Schedule a :class:`~repro.core.workload.Workload` without
        driving the simulator.

        Arrivals are compiled immediately — two derived RNG streams per
        call, one for interarrival gaps and one for origin selection, so
        the arrival schedule is identical whatever the origin policy
        draws — and each submission is scheduled ``start`` + its arrival
        time from now.  The returned list fills with one
        :class:`QueryJob` per query *as the simulator runs*; callers
        overlap several workloads (scenario timelines) on one
        ``simulator.run()``.
        """
        if not self.config.async_queries:
            raise ValueError(
                "run_queries requires config.async_queries; the "
                "synchronous path cannot overlap queries")
        stream = self._workload_streams
        self._workload_streams += 1
        arrival_rng = make_rng(self.seed, "workload", stream, "arrivals")
        origin_rng = make_rng(self.seed, "workload", stream, "origins")
        submissions = workload.compile(arrival_rng, origin_rng,
                                       self.peer_ids(), start=start)
        jobs: List[QueryJob] = []
        for submission in submissions:
            self.simulator.schedule(
                submission.at,
                lambda origin=submission.origin, query=submission.query:
                    jobs.append(self.runtime.submit(origin, query,
                                                    refine=refine)))
        return jobs

    def run_workload(self, workload: Workload,
                     refine: Optional[bool] = None) -> List[QueryJob]:
        """Open-workload driver: run a declarative :class:`Workload`.

        Requires ``config.async_queries``.  Submits every query of the
        workload (arrival process + origin policy, see
        :mod:`repro.core.workload`) and drives the simulator until all
        of them completed.  Returns the jobs in arrival order — each
        carries its results and a trace whose ``latency`` is the
        clock-measured response time under the overlapping load.
        """
        jobs = self.submit_workload(workload, refine=refine)
        self.simulator.run()
        return jobs

    def run_queries(self, queries: Sequence[Union[str, Sequence[str]]],
                    origins: Optional[Sequence[int]] = None,
                    arrival_rate: float = 50.0,
                    refine: Optional[bool] = None) -> List[QueryJob]:
        """Open-workload driver: Poisson arrivals of concurrent queries.

        Compatibility shim over :meth:`run_workload`: builds a
        :class:`~repro.core.workload.Workload` with
        :class:`~repro.core.workload.PoissonArrivals` at
        ``arrival_rate`` and a
        :class:`~repro.core.workload.RoundRobinOrigins` policy over
        ``origins`` (or :class:`~repro.core.workload.UniformOrigins`
        when omitted).  ``tests/test_core_workload.py`` pins the two
        call forms trace-identical.
        """
        origin_policy = (RoundRobinOrigins(tuple(origins))
                         if origins is not None else UniformOrigins())
        return self.run_workload(
            Workload(queries=tuple(queries),
                     arrival=PoissonArrivals(arrival_rate),
                     origins=origin_policy),
            refine=refine)

    def fetch_document(self, origin: int, doc_id: int,
                       credentials: Optional[Tuple[str, str]] = None,
                       terms: Sequence[str] = ()) -> Dict[str, Any]:
        """Fetch result presentation data (title, URL, snippet) from the
        document's holder, subject to its access policy."""
        owner = self.doc_owner(doc_id)
        if owner is None:
            return {"ok": False, "error": "owner-departed"}
        payload = {"doc_id": doc_id,
                   "credentials": list(credentials) if credentials else None,
                   "terms": list(terms)}
        reply, _rtt = self.send(origin, owner, protocol.DOC_FETCH, payload)
        return reply if reply is not None else {"ok": False,
                                                "error": "no-reply"}

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def churn(self) -> ChurnProcess:
        """A churn process wired for index handover on this network.

        Delegates to :meth:`FaultInjector.churn` (``self.faults``) — the
        unified membership-fault surface, which also exposes targeted
        crashes, graceful departures, partitions and peer degradation.
        """
        return self.faults.churn()

    def fail_peer(self, peer_id: int) -> None:
        """Crash a peer: no handover, no goodbye.

        Delegates to :meth:`FaultInjector.crash` (``self.faults``); see
        there for the failure semantics and
        :class:`repro.core.replication.ReplicationManager` for making
        the global index survive crashes.
        """
        self.faults.crash(peer_id)

    def _handover(self, from_peer: int, to_peer: int,
                  range_lo: int, range_hi: int) -> None:
        """Move the index entries of a key range between peers."""
        self.note_index_update()
        if from_peer == to_peer:
            return
        source = self._peers.get(from_peer)
        if source is None:
            return
        target = self._peers.get(to_peer)
        if target is None:
            # Joining node: create the peer before receiving its range.
            target = self._add_peer_object_only(to_peer)
        entries = source.fragment.extract_range(range_lo, range_hi)
        if entries:
            if self.config.packed_postings:
                entries = [PackedKeyEntry.pack(entry) for entry in entries]
            self.send(from_peer, to_peer, protocol.HANDOVER,
                      {"entries": entries})
        if not self.ring.contains(from_peer):
            # Graceful departure: detach the endpoint after handover.
            self.transport.unregister(from_peer)
            del self._peers[from_peer]

    def _add_peer_object_only(self, peer_id: int) -> AlvisPeer:
        """Create and register a peer whose ring node already exists
        (ChurnProcess adds the ring node itself)."""
        peer = AlvisPeer(peer_id, self.config, self.analyzer)
        peer.services = self
        if self.mode == "qdi":
            peer.enable_qdi()
        self._peers[peer_id] = peer
        self.transport.register(peer_id, peer)
        return peer

    # ------------------------------------------------------------------
    # Transport backend seam
    # ------------------------------------------------------------------

    def attach_transport(self,
                         transport: TransportBackend) -> TransportBackend:
        """Swap the network onto a different transport backend.

        Rewires every component that holds the transport (the ring's
        lookup path and the network's own send path) and returns the
        previous backend.  Endpoint registration is deliberately left to
        the caller: a cluster driver registers only the peers its process
        owns and routes the rest (see :mod:`repro.cluster`), which is
        exactly the split a blanket re-registration would get wrong.
        """
        previous = self.transport
        self.transport = transport
        self.ring.transport = transport
        return previous

    # ------------------------------------------------------------------
    # Accounting helpers (used by repro.eval and the benchmarks)
    # ------------------------------------------------------------------

    def bytes_sent_total(self) -> float:
        return self.simulator.metrics.counter_value("net.bytes.sent")

    def bytes_by_kind(self) -> Dict[str, float]:
        prefix = "net.bytes.sent."
        return {name[len(prefix):]: value
                for name, value in self.simulator.metrics
                .counters_with_prefix(prefix).items()}

    def messages_sent_total(self) -> float:
        return self.simulator.metrics.counter_value("net.msgs.sent")

    def reset_traffic(self) -> None:
        """Zero all traffic counters (between experiment phases)."""
        self.simulator.metrics.reset()
        self.transport.reset_load_counters()

    def per_peer_index_storage(self) -> Dict[int, int]:
        """Bytes of global-index state per peer (experiment E3/E6)."""
        return {peer.peer_id: peer.fragment.storage_bytes()
                for peer in self.peers()}

    def per_peer_postings(self) -> Dict[int, int]:
        """Stored posting entries per peer."""
        return {peer.peer_id: peer.fragment.postings_stored()
                for peer in self.peers()}

    def per_peer_messages_in(self) -> Dict[int, int]:
        """Inbound messages per *peer*, aggregating virtual positions."""
        totals: Dict[int, int] = {peer_id: 0
                                  for peer_id in self._peers}
        for node_id, count in self.transport.msgs_in.items():
            peer_id = self.peer_of_ring_node(node_id)
            if peer_id in totals:
                totals[peer_id] += count
        return totals

    def total_keys(self) -> int:
        """Number of (key, owner) entries in the global index."""
        return sum(len(peer.fragment) for peer in self.peers())

    def __repr__(self) -> str:
        return (f"AlvisNetwork(peers={self.num_peers}, "
                f"docs={self.total_documents()}, mode={self.mode})")

"""Document access rights (Section 4, "Document access").

"As local documents always remain at the peer that holds them, the
document owner can define specific access rights for them.  For example,
the user can choose that a document can be freely accessible or has a
limited access controlled by a username and a password."

Access control is enforced at the owning peer when a remote peer fetches
the document body (``DocFetch``); the global index only ever carries
document references, so protected *content* never leaves its peer without
credentials.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["AccessControlError", "AccessPolicy", "AccessManager"]


class AccessControlError(Exception):
    """Raised when a fetch violates the document's access policy."""


def _digest(username: str, password: str) -> str:
    """Salted credential digest; peers never store plaintext passwords."""
    material = f"alvis:{username}:{password}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()


@dataclass(frozen=True)
class AccessPolicy:
    """Either free access or username/password protection."""

    protected: bool = False
    credential_digest: Optional[str] = None

    @staticmethod
    def public() -> "AccessPolicy":
        """Freely accessible (the default)."""
        return AccessPolicy(protected=False)

    @staticmethod
    def password(username: str, password: str) -> "AccessPolicy":
        """Protected by a username/password pair."""
        if not username or not password:
            raise ValueError("username and password must be non-empty")
        return AccessPolicy(protected=True,
                            credential_digest=_digest(username, password))

    def permits(self, credentials: Optional[Tuple[str, str]]) -> bool:
        """True when ``credentials`` satisfy the policy."""
        if not self.protected:
            return True
        if credentials is None:
            return False
        username, password = credentials
        return _digest(username, password) == self.credential_digest


class AccessManager:
    """Per-peer registry of document policies."""

    def __init__(self):
        self._policies: Dict[int, AccessPolicy] = {}

    def set_policy(self, doc_id: int, policy: AccessPolicy) -> None:
        """Attach a policy to a document."""
        self._policies[doc_id] = policy

    def policy(self, doc_id: int) -> AccessPolicy:
        """The document's policy (public when never set)."""
        return self._policies.get(doc_id, AccessPolicy.public())

    def check(self, doc_id: int,
              credentials: Optional[Tuple[str, str]] = None) -> None:
        """Raise :class:`AccessControlError` unless access is permitted."""
        if not self.policy(doc_id).permits(credentials):
            raise AccessControlError(
                f"access to document {doc_id} denied")

    def remove(self, doc_id: int) -> None:
        """Drop a document's policy (when the document is unshared)."""
        self._policies.pop(doc_id, None)

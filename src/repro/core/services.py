"""The narrow interface peers and protocol components use to reach the
network.

Keeping this a :class:`typing.Protocol` breaks the import cycle between
:mod:`repro.core.peer` (which needs to *initiate* traffic for QDI's
on-demand indexing) and :mod:`repro.core.network` (which owns transport
and ring) — and lets unit tests substitute an in-memory fake.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Sequence, Tuple

from repro.core.config import AlvisConfig

__all__ = ["NetworkServices"]


class NetworkServices(Protocol):
    """What a peer may ask of the network."""

    config: AlvisConfig

    def lookup_owner(self, origin: int, key_id: int) -> Tuple[int, int]:
        """Resolve the peer responsible for ``key_id``.

        Returns ``(owner_peer_id, hops)``; routing traffic is accounted by
        the implementation.
        """
        ...

    def lookup_owners(self, origin: int,
                      key_ids: Sequence[int]) -> Tuple[Dict[int, int], int]:
        """Resolve a batch of keys in one shared routed round.

        Returns ``({key_id: owner_peer_id}, routed hop messages)`` — the
        message count is amortized across keys sharing hops.
        """
        ...

    def send(self, origin: int, dst: int, kind: str,
             payload: Dict[str, Any]
             ) -> Tuple[Optional[Dict[str, Any]], float]:
        """Send one request and return ``(reply payload or None, rtt)``."""
        ...

    def note_index_update(self) -> None:
        """Record a global-index mutation (invalidates probe caches).

        Called by peers when they change the index outside the network
        facade's own flows — e.g. QDI's on-demand indexing/eviction.
        """
        ...

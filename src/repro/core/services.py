"""The narrow interface peers and protocol components use to reach the
network.

Keeping this a :class:`typing.Protocol` breaks the import cycle between
:mod:`repro.core.peer` (which needs to *initiate* traffic for QDI's
on-demand indexing) and :mod:`repro.core.network` (which owns transport
and ring) — and lets unit tests substitute an in-memory fake.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Tuple

from repro.core.config import AlvisConfig

__all__ = ["NetworkServices"]


class NetworkServices(Protocol):
    """What a peer may ask of the network."""

    config: AlvisConfig

    def lookup_owner(self, origin: int, key_id: int) -> Tuple[int, int]:
        """Resolve the peer responsible for ``key_id``.

        Returns ``(owner_peer_id, hops)``; routing traffic is accounted by
        the implementation.
        """
        ...

    def send(self, origin: int, dst: int, kind: str,
             payload: Dict[str, Any]
             ) -> Tuple[Optional[Dict[str, Any]], float]:
        """Send one request and return ``(reply payload or None, rtt)``."""
        ...

"""The fragment of the global distributed index held by one peer.

Each peer stores, for every key the DHT assigns to it:

* the (possibly truncated) globally merged posting list,
* the aggregated global document frequency,
* the set of contributor peers with their local dfs (needed by QDI's
  on-demand indexing to know whom to harvest from), and
* query-popularity statistics (the decentralized monitoring of Section 2).

The fragment also answers storage-accounting questions for experiment E3
and supports key-range extraction for churn handover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterator, List, Optional, Tuple

from repro.core.keys import Key
from repro.dht.idspace import clockwise_distance
from repro.ir.postings import PackedPostings, PostingList

__all__ = ["KeyEntry", "PackedKeyEntry", "GlobalIndexFragment"]


@dataclass
class KeyEntry:
    """Everything stored for one key."""

    key: Key
    postings: PostingList
    #: Aggregated global df: sum of contributors' local dfs.  An upper
    #: bound on the true global df (a document counted once per owner) —
    #: and exact here, since every document lives at exactly one peer.
    global_df: int = 0
    #: contributor peer id -> local df it reported.
    contributors: Dict[int, int] = field(default_factory=dict)
    #: Decayed query-popularity counter (QDI).
    popularity: float = 0.0
    #: True for keys created by QDI on-demand indexing (evictable).
    on_demand: bool = False

    def storage_bytes(self) -> int:
        """Approximate storage footprint of this entry."""
        return (self.key.wire_size() + self.postings.wire_size()
                + 16 * len(self.contributors) + 24)

    def wire_size(self) -> int:
        """Bytes to ship this entry during churn handover."""
        return self.storage_bytes()


class PackedKeyEntry:
    """A :class:`KeyEntry` with its postings in packed wire form.

    The handover payload under ``config.packed_postings``: the posting
    list travels as one flat byte string instead of per-entry objects.
    The packed layout *is* the wire layout, so :meth:`wire_size` equals
    the equivalent :class:`KeyEntry`'s — shipping packed entries is
    byte-identical on the wire.
    """

    __slots__ = ("key", "packed", "global_df", "contributors",
                 "popularity", "on_demand")

    def __init__(self, key: Key, packed: PackedPostings, global_df: int,
                 contributors: Dict[int, int], popularity: float,
                 on_demand: bool):
        self.key = key
        self.packed = packed
        self.global_df = global_df
        self.contributors = contributors
        self.popularity = popularity
        self.on_demand = on_demand

    @classmethod
    def pack(cls, entry: KeyEntry) -> "PackedKeyEntry":
        return cls(key=entry.key,
                   packed=PackedPostings.from_list(entry.postings),
                   global_df=entry.global_df,
                   contributors=dict(entry.contributors),
                   popularity=entry.popularity,
                   on_demand=entry.on_demand)

    def to_entry(self) -> KeyEntry:
        """Rebuild the object-form entry (receiver side of handover)."""
        return KeyEntry(key=self.key,
                        postings=self.packed.to_posting_list(),
                        global_df=self.global_df,
                        contributors=dict(self.contributors),
                        popularity=self.popularity,
                        on_demand=self.on_demand)

    def wire_size(self) -> int:
        return (self.key.wire_size() + self.packed.wire_size()
                + 16 * len(self.contributors) + 24)

    def __repr__(self) -> str:
        return (f"PackedKeyEntry(key={self.key!r}, "
                f"postings={len(self.packed)})")


class GlobalIndexFragment:
    """Key -> entry store with truncation discipline."""

    def __init__(self, truncation_k: int):
        if truncation_k <= 0:
            raise ValueError(f"truncation_k must be positive, got "
                             f"{truncation_k}")
        self.truncation_k = truncation_k
        self._entries: Dict[Key, KeyEntry] = {}

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[KeyEntry]:
        return iter(self._entries.values())

    def get(self, key: Key) -> Optional[KeyEntry]:
        """The entry for ``key``, or ``None``."""
        return self._entries.get(key)

    def keys(self) -> List[Key]:
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------

    def publish(self, key: Key, postings: PostingList, local_df: int,
                contributor: int, on_demand: bool = False) -> KeyEntry:
        """Fold one contributor's postings into the entry for ``key``.

        Idempotent per contributor: re-publishing replaces the previous
        contribution's df in the aggregate (the merged posting list keeps
        max-score entries, so re-publishing the same postings is harmless).
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = KeyEntry(key=key, postings=PostingList(),
                             on_demand=on_demand)
            self._entries[key] = entry
        previous = entry.contributors.get(contributor, 0)
        entry.contributors[contributor] = local_df
        entry.global_df += local_df - previous
        merged = entry.postings.merge(postings)
        bounded = (merged.truncate(self.truncation_k)
                   if len(merged) > self.truncation_k else merged)
        # The merge only sees truncated inputs; the aggregated df is the
        # authoritative result-set size.  ``bounded`` came out of
        # merge/truncate, so its entries are already canonical.
        entry.postings = PostingList._from_canonical(
            bounded.entries,
            max(entry.global_df, len(bounded.entries)))
        return entry

    def install(self, entry: KeyEntry) -> None:
        """Install a fully formed entry (handover / on-demand indexing)."""
        self._entries[entry.key] = entry

    def remove(self, key: Key) -> KeyEntry:
        """Remove and return an entry (KeyError if absent)."""
        return self._entries.pop(key)

    # ------------------------------------------------------------------
    # Popularity statistics (QDI)
    # ------------------------------------------------------------------

    def record_popularity(self, key: Key, weight: float = 1.0) -> float:
        """Bump the popularity of ``key``; creates a shadow entry if absent.

        Missing keys are tracked too ("each contacted peer also updates
        the usage statistics for the requested term combination"): a
        shadow entry has an empty posting list and no contributors.
        Returns the new popularity.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = KeyEntry(key=key, postings=PostingList())
            self._entries[key] = entry
        entry.popularity += weight
        return entry.popularity

    def decay_popularity(self, factor: float,
                         protect: Optional[AbstractSet[Key]] = None) -> None:
        """Multiply every popularity counter by ``factor``.

        Keys in ``protect`` keep their popularity unchanged this round.
        A maintenance round is record→decay→evict: feedback recorded
        *since the last round* must not be halved (and then possibly
        evicted) by the very round it arrived in, so the caller passes
        the keys it bumped as the protect set (see
        :meth:`repro.core.qdi.QDIManager.run_maintenance`).
        """
        if not 0 <= factor <= 1:
            raise ValueError(f"factor must be in [0, 1], got {factor}")
        for key, entry in self._entries.items():
            if protect is not None and key in protect:
                continue
            entry.popularity *= factor

    def evict_below(self, threshold: float,
                    protect: Optional[AbstractSet[Key]] = None) -> List[Key]:
        """Drop evictable entries with popularity below ``threshold``.

        Only on-demand (QDI-created) multi-term keys and empty shadow
        entries are evictable; single-term entries and HDK keys stay (they
        are the index's backbone).  Keys in ``protect`` — bumped since the
        last maintenance round — are never evicted in this round, however
        low their counter.  Returns the evicted keys.
        """
        victims = []
        for key, entry in self._entries.items():
            if entry.popularity >= threshold:
                continue
            if protect is not None and key in protect:
                continue
            is_shadow = not entry.postings and not entry.contributors
            if is_shadow or (entry.on_demand and len(key) > 1):
                victims.append(key)
        for key in victims:
            del self._entries[key]
        return victims

    # ------------------------------------------------------------------
    # Accounting and handover
    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Total bytes of index state held by this peer (experiment E3)."""
        return sum(entry.storage_bytes()
                   for entry in self._entries.values())

    def postings_stored(self) -> int:
        """Total posting entries held (the HDK paper's storage unit)."""
        return sum(len(entry.postings)
                   for entry in self._entries.values())

    def entries_in_range(self, range_lo: int,
                         range_hi: int) -> List[KeyEntry]:
        """Entries whose key id lies in the clockwise interval
        ``(range_lo, range_hi]`` — the unit of churn handover."""
        interval = clockwise_distance(range_lo, range_hi)
        result = []
        for key, entry in self._entries.items():
            offset = clockwise_distance(range_lo, key.key_id)
            if 0 < offset <= interval:
                result.append(entry)
        return result

    def extract_range(self, range_lo: int, range_hi: int) -> List[KeyEntry]:
        """Remove and return all entries in the interval (for handover)."""
        moving = self.entries_in_range(range_lo, range_hi)
        for entry in moving:
            del self._entries[entry.key]
        return moving

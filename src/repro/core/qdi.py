"""Query-Driven Indexing (QDI).

From Section 2: "the index is populated only with frequently queried and
non-redundant term combinations, and indexing is performed in parallel
with retrieval.  [It] uses decentralized monitoring of query statistics to
detect and index new popular keys, as well as to remove obsolete keys from
the index. ... The peer responsible for this key acquires a new posting
list containing a bounded number of top-ranked document references."

Mechanics implemented here (one manager per peer, governing the keys that
peer is responsible for):

* **Monitoring** — every probe and every post-query feedback message bumps
  a per-key popularity counter (misses are tracked via shadow entries).
* **Activation** — when a missing multi-term key's popularity reaches
  ``qdi_activation_threshold`` and the key is not *redundant* (covered by
  an indexed untruncated sub-combination), the responsible peer indexes it
  on demand.
* **On-demand indexing (harvest)** — the responsible peer asks the owner
  of the key's globally rarest term for that term's contributor set, then
  requests local top-k postings for the full combination from the top
  contributors, merges them and installs the truncated result.
* **Maintenance** — popularity decays geometrically every
  ``qdi_maintenance_interval`` probes; evictable keys (on-demand
  multi-term keys and shadow entries) below ``qdi_eviction_threshold``
  are dropped, keeping the index adaptive to the current query
  distribution.

Substitution note: the Infoscale'07 paper acquires postings through a
broadcast tree over document holders; contacting the rarest term's top
contributors exercises the same code path (bounded scatter/gather to the
peers that can contribute) with the same bounded traffic, which is the
property the demo paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.core import protocol
from repro.core.config import AlvisConfig
from repro.core.global_index import GlobalIndexFragment, KeyEntry
from repro.core.keys import Key
from repro.ir.postings import PostingList

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.peer import AlvisPeer

__all__ = ["QDIStats", "QDIManager"]


@dataclass
class QDIStats:
    """Counters reported by experiment E5."""

    probes_seen: int = 0
    activations: int = 0
    harvest_messages: int = 0
    evictions: int = 0
    redundant_suppressed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "probes_seen": self.probes_seen,
            "activations": self.activations,
            "harvest_messages": self.harvest_messages,
            "evictions": self.evictions,
            "redundant_suppressed": self.redundant_suppressed,
        }


class QDIManager:
    """Per-peer query-driven indexing logic."""

    def __init__(self, peer: "AlvisPeer", config: AlvisConfig):
        self.peer = peer
        self.config = config
        self.stats = QDIStats()
        self._probes_since_maintenance = 0
        #: Keys whose popularity was recorded since the last maintenance
        #: round; protected from that round's decay and eviction so
        #: same-round feedback can never be wiped out by maintenance.
        self._bumped_since_maintenance: Set[Key] = set()

    # ------------------------------------------------------------------
    # Monitoring hooks (called from the peer's message handlers)
    # ------------------------------------------------------------------

    def on_probe(self, key: Key, found: bool) -> None:
        """A remote peer probed ``key`` at this (responsible) peer."""
        self.stats.probes_seen += 1
        self.peer.fragment.record_popularity(key)
        self._bumped_since_maintenance.add(key)
        self._probes_since_maintenance += 1
        if self._probes_since_maintenance >= \
                self.config.qdi_maintenance_interval:
            self.run_maintenance()

    def on_feedback(self, key: Key, redundant: bool) -> None:
        """Post-query feedback for a missing-but-useful combination.

        ``redundant`` means the querying peer found an untruncated indexed
        combination that already covers ``key``; such keys are never
        activated (indexing them would add storage without adding recall).
        """
        if redundant:
            self.stats.redundant_suppressed += 1
            return
        popularity = self.peer.fragment.record_popularity(key)
        self._bumped_since_maintenance.add(key)
        entry = self.peer.fragment.get(key)
        already_indexed = entry is not None and bool(entry.postings)
        if (len(key) > 1 and not already_indexed
                and popularity >= self.config.qdi_activation_threshold):
            self.activate(key)

    # ------------------------------------------------------------------
    # On-demand indexing
    # ------------------------------------------------------------------

    def activate(self, key: Key) -> Optional[KeyEntry]:
        """Acquire and install a posting list for ``key``.

        Returns the new entry, or ``None`` when no contributor could be
        found (e.g. the key matches no documents anywhere).
        """
        services = self.peer.services
        if services is None:
            raise RuntimeError("peer has no network services attached")
        rarest = self._rarest_term(key)
        contributors = self._fetch_contributors(rarest)
        if not contributors:
            return None
        ranked = sorted(contributors.items(),
                        key=lambda item: (-item[1], item[0]))
        fanout = ranked[: self.config.qdi_harvest_fanout]
        merged = PostingList()
        aggregated_df = 0
        for contributor_id, _local_df in fanout:
            payload = {"key_terms": list(key.terms),
                       "k": self.config.truncation_k}
            reply, _rtt = services.send(self.peer.peer_id, contributor_id,
                                        protocol.HARVEST_KEY, payload)
            self.stats.harvest_messages += 1
            if reply is None:
                continue
            postings: PostingList = reply["postings"]
            aggregated_df += int(reply["local_df"])
            merged = merged.merge(postings)
        if not merged and aggregated_df == 0:
            return None
        bounded = (merged.truncate(self.config.truncation_k)
                   if len(merged) > self.config.truncation_k else merged)
        previous = self.peer.fragment.get(key)
        entry = KeyEntry(
            key=key,
            postings=PostingList(bounded.entries,
                                 global_df=max(aggregated_df,
                                               len(bounded.entries))),
            global_df=aggregated_df,
            contributors={peer_id: df for peer_id, df in fanout},
            popularity=previous.popularity if previous else 0.0,
            on_demand=True,
        )
        self.peer.fragment.install(entry)
        self.stats.activations += 1
        self._note_index_update()
        return entry

    def _rarest_term(self, key: Key) -> str:
        """The key's term with the smallest cached global df.

        Terms with unknown df are assumed rare (df 0 sorts first), which
        errs toward smaller contributor sets — the cheap direction.
        """
        cache = self.peer.stats_cache
        return min(key.terms, key=lambda term: (cache.df(term), term))

    def _fetch_contributors(self, term: str) -> Dict[int, int]:
        """Ask the single-term key's owner for its contributor set."""
        services = self.peer.services
        term_key = Key([term])
        owner, _hops = services.lookup_owner(self.peer.peer_id,
                                             term_key.key_id)
        payload = {"term": term}
        reply, _rtt = services.send(self.peer.peer_id, owner,
                                    protocol.CONTRIBUTORS_GET, payload)
        if reply is None:
            return {}
        return dict(reply["contributors"])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def run_maintenance(self) -> List[Key]:
        """Decay popularity and evict obsolete keys; returns evictions.

        The ordering contract is explicit: popularity *recorded* since
        the last round is settled first — those keys are handed to decay
        and eviction as a protect set, so a combination that just
        received feedback is neither halved nor dropped by the very
        round its feedback arrived in.  From the next round on it ages
        normally.
        """
        self._probes_since_maintenance = 0
        protect = self._bumped_since_maintenance
        self._bumped_since_maintenance = set()
        fragment: GlobalIndexFragment = self.peer.fragment
        fragment.decay_popularity(self.config.qdi_decay, protect=protect)
        evicted = fragment.evict_below(self.config.qdi_eviction_threshold,
                                       protect=protect)
        self.stats.evictions += len(evicted)
        if evicted:
            # Evicted keys change probe outcomes; stale cached postings
            # at querying peers must not outlive them.
            self._note_index_update()
        return evicted

    def _note_index_update(self) -> None:
        """Tell the network the global index changed (cache validity)."""
        notify = getattr(self.peer.services, "note_index_update", None)
        if notify is not None:
            notify()

"""Result merging and distributed ranking (Layer 4).

"Once the lattice exploration process terminates and all available posting
lists relevant to the original query have been retrieved, the querying
peer produces their union, ranks all the documents w.r.t the original
query, and presents the top-ranked results to the user."

Each retrieved posting carries the BM25 score of its document *for that
key's terms*, computed against global collection statistics at publish
time.  To rank a document with respect to the full query, the merger
combines scores from a **greedy disjoint cover** of the query terms:
score contributions are only summed across keys that share no terms, so no
query term is counted twice.  For the paper's canonical example (query
``abc`` answered from keys ``bc`` and ``a``) this reproduces the exact
BM25 decomposition score(abc) = score(bc) + score(a).

The optional second step ("refinement") re-scores the first-step
candidates exactly at the peers that hold the documents; see
:mod:`repro.core.retrieval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.keys import Key
from repro.ir.postings import PostingList

__all__ = ["RankedDocument", "merge_and_rank", "rank_with_margin"]


@dataclass
class RankedDocument:
    """A merged candidate with its combined score and provenance."""

    doc_id: int
    score: float
    covering_keys: Tuple[Key, ...]

    @property
    def terms_covered(self) -> frozenset:
        covered: frozenset = frozenset()
        for key in self.covering_keys:
            covered |= key.term_set
        return covered


def merge_and_rank(retrieved: Mapping[Key, PostingList],
                   query: Key, k: int) -> List[RankedDocument]:
    """Union the retrieved lists and rank documents for the query.

    For every document, the available (key, score) pairs are combined
    greedily: keys are considered in descending score order and a key's
    score is added only when it is term-disjoint from every key already
    counted for that document.  Documents are then ranked by combined
    score (ties broken by doc id for determinism) and the top ``k``
    returned.

    For the query engine's top-k early termination, use
    :func:`rank_with_margin`, which additionally exposes the threshold
    scores the termination test needs.
    """
    return _rank_all(retrieved, k)[:k]


def rank_with_margin(retrieved: Mapping[Key, PostingList],
                     query: Key, k: int
                     ) -> Tuple[List[RankedDocument], float, float]:
    """Rank like :func:`merge_and_rank`, exposing the top-k margin.

    Returns ``(top_k, kth_score, runner_up_score)`` where ``kth_score``
    is the score of the k-th ranked document (0.0 when fewer than ``k``
    candidates exist) and ``runner_up_score`` is the best score *outside*
    the top k (0.0 when none).  Early termination is sound when no
    unprobed key can lift a runner-up (or an unseen document, whose
    current score is 0) above ``kth_score``.
    """
    ranked = _rank_all(retrieved, k)
    top = ranked[:k]
    kth = top[-1].score if len(top) == k else 0.0
    runner_up = ranked[k].score if len(ranked) > k else 0.0
    return top, kth, runner_up


def _rank_all(retrieved: Mapping[Key, PostingList],
              k: int) -> List[RankedDocument]:
    """The full greedy-disjoint-cover ranking, all candidates sorted."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    per_document: Dict[int, List[Tuple[float, Key]]] = {}
    for key, postings in retrieved.items():
        for posting in postings:
            per_document.setdefault(posting.doc_id, []).append(
                (posting.score, key))
    ranked: List[RankedDocument] = []
    for doc_id, contributions in per_document.items():
        # Deterministic greedy order: best score first, then smaller keys
        # (a high-scoring large key should win over its own sub-keys).
        contributions.sort(key=lambda pair: (-pair[0], len(pair[1]),
                                             pair[1].terms))
        chosen: List[Key] = []
        covered: frozenset = frozenset()
        total = 0.0
        for score, key in contributions:
            if covered & key.term_set:
                continue
            chosen.append(key)
            covered |= key.term_set
            total += score
        ranked.append(RankedDocument(doc_id=doc_id, score=total,
                                     covering_keys=tuple(chosen)))
    ranked.sort(key=lambda document: (-document.score, document.doc_id))
    return ranked

"""Configuration shared by the distributed indexing/retrieval components.

The defaults are scaled for laptop-size collections (hundreds to a few
thousand documents); the benchmarks sweep the parameters the paper's
companion evaluations sweep (truncation bound, DF_max, key size).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AlvisConfig"]


@dataclass(frozen=True)
class AlvisConfig:
    """All tunables of layers 3 and 4."""

    # ------------------------------------------------------------------
    # Posting-list truncation (both strategies)
    # ------------------------------------------------------------------

    #: Bound on stored/transmitted posting-list length ("the transmitted
    #: posting lists never exceed a constant size").
    truncation_k: int = 20

    # ------------------------------------------------------------------
    # HDK (Highly Discriminative Keys)
    # ------------------------------------------------------------------

    #: A key is *discriminative* when its global df is at most this bound;
    #: above it, the key is expanded with additional terms.
    df_max: int = 40

    #: Maximum key size (number of terms); expansions stop here.
    s_max: int = 3

    #: Proximity window (in index-term positions) within which an
    #: expansion term must co-occur with the key being expanded.
    proximity_window: int = 12

    #: Cap on expansion candidates taken per non-discriminative key at one
    #: peer (most locally frequent first); keeps the candidate explosion
    #: polynomial, as the HDK paper's pruning rules do.
    max_expansions_per_key: int = 20

    #: Rare-combination filter: an expansion candidate must co-occur with
    #: the key (within the proximity window) in at least this many local
    #: documents.  The HDK paper prunes such rare combinations — they are
    #: already served by their sub-keys, so indexing them would only
    #: inflate the key vocabulary.
    expansion_min_df: int = 2

    # ------------------------------------------------------------------
    # QDI (Query-Driven Indexing)
    # ------------------------------------------------------------------

    #: Popularity count at which a missing key is indexed on demand.
    qdi_activation_threshold: int = 3

    #: Multiplicative popularity decay applied every maintenance round.
    qdi_decay: float = 0.5

    #: Indexed multi-term keys whose decayed popularity falls below this
    #: are evicted.
    qdi_eviction_threshold: float = 0.25

    #: Queries between two maintenance (decay + eviction) rounds at a peer.
    qdi_maintenance_interval: int = 50

    #: Maximum number of contributor peers contacted during on-demand
    #: indexing (highest local df first).
    qdi_harvest_fanout: int = 16

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    #: Results returned to the user.
    result_k: int = 10

    #: Also prune sub-lattices dominated by a *truncated* list (the
    #: approximation of Section 2, trading marginal precision for load
    #: balance).  Untruncated-list pruning is always on (it is lossless).
    prune_on_truncated: bool = True

    #: Latency model for lattice probes: the deployed client issues all
    #: probes of one lattice level concurrently, so a level costs the
    #: *maximum* of its probe round-trips rather than their sum.  Bytes
    #: and message counts are unaffected.
    parallel_probes: bool = True

    #: Cache key->responsible-peer resolutions at the querying peer.
    #: Repeated queries then skip the O(log n) lookup; the cache is
    #: invalidated wholesale on any membership change (off by default so
    #: traffic measurements reflect cold routing).
    cache_lookups: bool = False

    #: Bound on cached resolutions per peer.
    lookup_cache_size: int = 4096

    # ------------------------------------------------------------------
    # Query engine (batched + cached execution)
    # ------------------------------------------------------------------

    #: Byte budget of the per-peer probe-result cache (key -> posting
    #: list, LRU with byte-accounted eviction).  0 disables caching.
    #: Cached entries are invalidated wholesale on churn and index
    #: republication (the network's index version tag), and individually
    #: expired after ``cache_ttl`` queries; on a Zipf-skewed query stream
    #: a modest budget absorbs most repeated lattice probes together
    #: with their DHT lookups.  Ignored in QDI mode, whose popularity
    #: monitoring requires responsible peers to see every probe.  Off by
    #: default so traffic measurements reflect the paper's cold query
    #: path.
    cache_bytes: int = 0

    #: Logical TTL of cached probe results, measured in queries executed
    #: at the caching peer (0 = no expiry).  A backstop bound on
    #: staleness for deployments where invalidation signals can be
    #: missed; version invalidation on churn/republication stays active
    #: either way.
    cache_ttl: int = 0

    #: Batch the probes of one lattice frontier: all DHT lookups of a
    #: level travel in one shared routed round (``DHTRing.lookup_many``)
    #: and probes to the same responsible peer share one ``ProbeBatch``
    #: message.  Resolved owners, probe outcomes and ranking are
    #: identical to the per-probe path; only message counts (and their
    #: header bytes) shrink.  Off by default for seed-comparable traces.
    batch_lookups: bool = False

    #: Stop lattice exploration early once the BM25 score ceiling of the
    #: still-unprobed keys cannot lift any document into the current
    #: top-``result_k`` (Akbarinia-style threshold termination).  The
    #: ceiling combines cached global dfs with the dfs learned from
    #: retrieved keys, so the stop is conservative; it is an
    #: approximation nonetheless (skipped probes can no longer adjust
    #: scores of already-ranked documents) and therefore off by default.
    topk_early_stop: bool = False

    # ------------------------------------------------------------------
    # Async query runtime (event-kernel execution of the L3/L4 path)
    # ------------------------------------------------------------------

    #: Execute queries as processes on the discrete-event kernel
    #: (:mod:`repro.core.runtime`): every ``LookupHop``/``ProbeBatch``
    #: travels through :meth:`Transport.request_async`, so concurrent
    #: queries genuinely interleave in virtual time and per-query
    #: *latency* is measured from the clock (``QueryTrace.latency``)
    #: instead of estimated (``rtt_estimate``).  The async path always
    #: runs frontier-batched (it implies the ``batch_lookups`` wire
    #: format); for a single query it issues byte-for-byte the traffic
    #: of the synchronous batched path.  Off by default: the synchronous
    #: path remains the compatibility mode.
    async_queries: bool = False

    #: Virtual seconds the per-origin dispatch queue waits before
    #: flushing accumulated lookups/probes, coalescing same-destination
    #: traffic across *concurrent queries* (server-side cross-query
    #: batching).  0 still coalesces requests issued at the same virtual
    #: instant; larger windows trade per-probe latency for fewer,
    #: larger messages under load.  Only meaningful with
    #: ``async_queries``.
    dispatch_window: float = 0.0

    #: Pipeline lattice levels: launch level N+1's DHT lookups while
    #: level N's probe replies are still in flight.  Cuts query latency
    #: by roughly one lookup round per level, at the cost of
    #: *speculative* lookups for keys a level-N result later excludes
    #: (top-k results are unaffected; only routing traffic can grow).
    #: Only meaningful with ``async_queries``.
    pipeline_levels: bool = False

    #: Timeout (virtual seconds) for async requests; 0 disables.  A
    #: timed-out probe is recorded as a dropped probe, like a churn
    #: drop.
    request_timeout: float = 0.0

    # ------------------------------------------------------------------
    # Indexing-phase scale-out (statistics + HDK build)
    # ------------------------------------------------------------------

    #: Ship posting lists through the publish/handover pipeline as
    #: packed flat byte arrays (:class:`repro.ir.postings.PackedPostings`)
    #: instead of per-entry ``Posting`` objects.  The packed layout is
    #: the wire layout, so every message size is *byte-identical* to the
    #: object form — only CPU and Python-object memory change.  Off by
    #: default: the object path remains the compatibility mode.
    packed_postings: bool = False

    #: Batch the per-key DHT owner lookups of the statistics and
    #: HDK-publish phases into one ``lookup_many`` round per peer
    #: (same greedy route, one batched ``LookupHop`` payload per hop —
    #: the ``ProbeBatch`` pattern applied to indexing).  Resolved owners
    #: are identical; only ``LookupHop`` traffic shrinks, so this knob
    #: *changes measured routing bytes* and stays off by default.
    batch_index_lookups: bool = False

    # ------------------------------------------------------------------
    # Congestion-aware dispatch (AIMD flow control on the query path)
    # ------------------------------------------------------------------

    #: Put a per-origin AIMD congestion window (the NCA'06 controller of
    #: ``repro.dht.congestion``, validated by E8) between each origin's
    #: dispatch queue and the transport: the window bounds how many
    #: lookup rounds / probe batches may be outstanding, acks open it
    #: additively, and any non-ok outcome (queue overflow, churn drop,
    #: timeout) halves it — at most once per RTT.  Excess flushed work
    #: queues at the dispatcher and drains as the window opens; overflow
    #: drops are retransmitted through the window, and a window's worth
    #: of pending work triggers an early dispatch flush (size-triggered,
    #: not only after ``dispatch_window``).  Only meaningful with
    #: ``async_queries``; off by default so the async path's traffic is
    #: byte-identical to the unthrottled runtime.
    congestion_control: bool = False

    #: AIMD initial window (outstanding dispatcher sends) per origin.
    congestion_initial_window: float = 4.0

    #: AIMD window cap per origin.
    congestion_max_window: float = 64.0

    #: Retransmission budget for a probe batch dropped by a full service
    #: queue; once exhausted the probes resolve as dropped.  0 disables
    #: retransmission entirely.
    congestion_max_retransmits: int = 20

    #: Blind-retransmission delay (virtual seconds) used for overflow
    #: drops when ``congestion_control`` is *off* — the open-loop
    #: behaviour whose collapse E8/E15 measure.  With the AIMD window on,
    #: retransmissions are paced by the window instead.
    congestion_retransmit_timeout: float = 0.25

    #: Per-endpoint service rate (messages/second) of the bounded
    #: service queue the transport models for async delivery — hot
    #: owners then exhibit real queueing delay and overflow drops
    #: instead of infinite instantaneous capacity.  0 (the default)
    #: disables the queueing model entirely.
    service_rate: float = 0.0

    #: Per-endpoint service-queue bound; arrivals beyond it are dropped
    #: (surfaced to async senders as ``"overflow"`` outcomes).  Only
    #: meaningful with ``service_rate > 0``.
    queue_capacity: int = 64

    #: Fraction of one service time a saturated endpoint spends
    #: *shedding* each overflow arrival (receiving the message off the
    #: wire and generating the rejection) — wasted work competing with
    #: useful service.  This is what lets an open-loop retransmission
    #: storm genuinely collapse goodput instead of being shed for free.
    #: 0 keeps the cost-free drops of the E8 toy model.
    service_reject_cost: float = 0.5

    # ------------------------------------------------------------------

    #: Perform the second "refinement" step: forward the query to the
    #: local engines of peers holding the first-step results.
    refine_with_local_engines: bool = False

    #: Refinement re-scores a candidate pool of ``result_k *
    #: refine_pool_factor`` first-step documents, then returns the top
    #: ``result_k`` — a larger pool lets exact scoring recover documents
    #: the approximate first step under-ranked.
    refine_pool_factor: int = 3

    # ------------------------------------------------------------------

    def __post_init__(self):
        if self.truncation_k <= 0:
            raise ValueError("truncation_k must be positive")
        if self.df_max <= 0:
            raise ValueError("df_max must be positive")
        if self.s_max < 1:
            raise ValueError("s_max must be >= 1")
        if self.proximity_window < 1:
            raise ValueError("proximity_window must be >= 1")
        if self.max_expansions_per_key < 1:
            raise ValueError("max_expansions_per_key must be >= 1")
        if self.expansion_min_df < 1:
            raise ValueError("expansion_min_df must be >= 1")
        if self.qdi_activation_threshold < 1:
            raise ValueError("qdi_activation_threshold must be >= 1")
        if not 0 < self.qdi_decay <= 1:
            raise ValueError("qdi_decay must be in (0, 1]")
        if self.qdi_eviction_threshold < 0:
            raise ValueError("qdi_eviction_threshold must be >= 0")
        if self.qdi_maintenance_interval < 1:
            raise ValueError("qdi_maintenance_interval must be >= 1")
        if self.qdi_harvest_fanout < 1:
            raise ValueError("qdi_harvest_fanout must be >= 1")
        if self.result_k <= 0:
            raise ValueError("result_k must be positive")
        if self.refine_pool_factor < 1:
            raise ValueError("refine_pool_factor must be >= 1")
        if self.lookup_cache_size < 1:
            raise ValueError("lookup_cache_size must be >= 1")
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        if self.cache_ttl < 0:
            raise ValueError("cache_ttl must be >= 0")
        if self.dispatch_window < 0:
            raise ValueError("dispatch_window must be >= 0")
        if self.request_timeout < 0:
            raise ValueError("request_timeout must be >= 0")
        if self.congestion_initial_window < 1:
            raise ValueError("congestion_initial_window must be >= 1")
        if self.congestion_max_window < self.congestion_initial_window:
            raise ValueError("congestion_max_window must be >= "
                             "congestion_initial_window")
        if self.congestion_max_retransmits < 0:
            raise ValueError("congestion_max_retransmits must be >= 0")
        if self.congestion_retransmit_timeout <= 0:
            raise ValueError("congestion_retransmit_timeout must be > 0")
        if self.service_rate < 0:
            raise ValueError("service_rate must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.service_reject_cost < 0:
            raise ValueError("service_reject_cost must be >= 0")

    def with_overrides(self, **kwargs) -> "AlvisConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

"""Digest of the retrieval-relevant state of a built network.

Canonical home of :func:`state_fingerprint` — used by the cluster join
handshake (two processes must have built identical twin networks), the
scale-sweep legs (``repro.eval.scale``: fast and legacy profiles must
build identical indexes), and the differential indexing tests
(``tests/test_index_equivalence.py``).
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.network import AlvisNetwork

__all__ = ["state_fingerprint"]


def state_fingerprint(network: "AlvisNetwork") -> str:
    """Digest of the retrieval-relevant state of a built network.

    Covers membership, each peer's document store and its global-index
    fragment (keys, postings, dfs) — enough that any divergence between
    two processes' builds (library-version drift, nondeterminism) flips
    the digest and aborts the join handshake instead of silently
    answering probes from different state.
    """
    digest = hashlib.sha1()
    for peer_id in sorted(network.peer_ids()):
        peer = network.peer(peer_id)
        digest.update(struct.pack(">Q", peer_id))
        for doc_id in sorted(document.doc_id
                             for document in peer.engine.store):
            digest.update(struct.pack(">Q", doc_id))
        for key in sorted(peer.fragment.keys(),
                          key=lambda key: key.terms):
            entry = peer.fragment.get(key)
            digest.update(" ".join(key.terms).encode("utf-8"))
            digest.update(struct.pack(">QI", entry.global_df,
                                      len(entry.postings.entries)))
            for posting in entry.postings.entries:
                digest.update(struct.pack(">Qd", posting.doc_id,
                                          posting.score))
    return digest.hexdigest()

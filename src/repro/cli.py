"""Command-line interface: the AlvisP2P client, headless.

Section 4 describes the peer client software (standalone or Web mode);
this CLI is its offline equivalent, driving a simulated network::

    python -m repro demo                          # end-to-end demo
    python -m repro query "peer retrieval" --mode qdi --peers 12
    python -m repro query "truncation" --docs ./my_texts
    python -m repro monitor --queries 20          # dashboard snapshot

All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.loader import load_directory, sample_documents
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.eval.monitor import NetworkMonitor
from repro.eval.reporting import format_table
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.util.rng import make_rng

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AlvisP2P reproduction — simulated P2P text "
                    "retrieval client")
    parser.add_argument("--peers", type=int, default=8,
                        help="number of peers in the network")
    parser.add_argument("--seed", type=int, default=42,
                        help="deterministic seed")
    parser.add_argument("--mode", choices=("hdk", "qdi"), default="hdk",
                        help="distributed indexing strategy")
    parser.add_argument("--docs", metavar="DIR", default=None,
                        help="directory of .txt documents to index "
                             "(default: built-in sample collection)")
    parser.add_argument("--k", type=int, default=5,
                        help="results to display")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="build a network and run showcase queries")
    demo.add_argument("--queries", type=int, default=3,
                      help="number of showcase queries")

    query = subparsers.add_parser(
        "query", help="run one multi-keyword query")
    query.add_argument("text", help="the query string")
    query.add_argument("--refine", action="store_true",
                       help="two-step retrieval (refine at holders)")

    monitor = subparsers.add_parser(
        "monitor", help="print the network-state dashboard")
    monitor.add_argument("--queries", type=int, default=10,
                         help="queries to run before the snapshot")

    cluster = subparsers.add_parser(
        "cluster", help="run queries over a real localhost UDP cluster "
                        "(multi-process)")
    cluster.add_argument("--hosts", type=int, default=2,
                         help="number of OS processes hosting peers")
    cluster.add_argument("--queries", type=int, default=3,
                         help="number of showcase queries")
    cluster.add_argument("--timeout", type=float, default=5.0,
                         help="per-request UDP timeout in seconds")
    # Internal: how the driver re-invokes this CLI as a peer host.
    cluster.add_argument("--serve-host", type=int, default=None,
                         help=argparse.SUPPRESS)
    cluster.add_argument("--driver", default=None,
                         help=argparse.SUPPRESS)
    cluster.add_argument("--spec", default=None,
                         help=argparse.SUPPRESS)

    lint = subparsers.add_parser(
        "lint", help="run the repo's AST invariant checkers "
                     "(determinism, wire-schema sync, layering, ...)")
    add_lint_arguments(lint)

    scenario = subparsers.add_parser(
        "scenario", help="run a named adversarial scenario from the "
                         "atlas (churn storms, flash crowds, "
                         "partitions, ...)")
    scenario.add_argument("action", choices=("run", "list"),
                          help="'run' a named scenario or 'list' the "
                               "atlas")
    scenario.add_argument("name", nargs="?", default=None,
                          help="scenario name (see `repro scenario "
                               "list`)")
    # Distinct dests so the scenario spec's own sizing wins unless the
    # user explicitly overrides it after the subcommand.
    scenario.add_argument("--seed", type=int, default=None,
                          dest="scenario_seed",
                          help="deterministic seed (default: the "
                               "global --seed)")
    scenario.add_argument("--peers", type=int, default=None,
                          dest="scenario_peers",
                          help="override the scenario's network size")
    scenario.add_argument("--queries", type=int, default=None,
                          dest="scenario_queries",
                          help="override the scenario's base query "
                               "count")
    scenario.add_argument("--json", metavar="PATH", default=None,
                          dest="scenario_json",
                          help="write the ScenarioReport JSON to PATH "
                               "('-' for stdout)")
    return parser


def _build_network(args) -> AlvisNetwork:
    network = AlvisNetwork(num_peers=args.peers, config=AlvisConfig(),
                           seed=args.seed)
    if args.docs is not None:
        documents = load_directory(args.docs)
        if not documents:
            raise SystemExit(f"no documents found under {args.docs}")
    else:
        documents = sample_documents()
    network.distribute_documents(documents)
    network.build_index(mode=args.mode)
    return network


def _print_results(network, origin, results, trace, k, out) -> None:
    rows = []
    for document in results[:k]:
        details = network.fetch_document(origin, document.doc_id,
                                         terms=trace.query.terms)
        title = details.get("title") if details.get("ok") else \
            f"<{details.get('error')}>"
        url = details.get("url", "")
        rows.append([document.doc_id, f"{document.score:.3f}",
                     title, url])
    print(format_table(["doc", "score", "title", "url"], rows),
          file=out)
    print(f"[{trace.probed_count} keys probed, "
          f"{trace.skipped_count} skipped, {trace.bytes_sent} bytes, "
          f"{trace.lookup_hops} hops]", file=out)


def _command_demo(args, out) -> int:
    network = _build_network(args)
    print(f"{network}", file=out)
    workload = QueryWorkload.from_documents(
        list(_all_documents(network)),
        QueryWorkloadConfig(pool_size=max(args.queries, 1),
                            seed=args.seed))
    origin = network.peer_ids()[0]
    rng = make_rng(args.seed, "cli-demo")
    for index in range(args.queries):
        query_terms = list(workload.sample(rng))
        print(f"\nquery: {' '.join(query_terms)}", file=out)
        results, trace = network.query(origin, query_terms)
        _print_results(network, origin, results, trace, args.k, out)
    return 0


def _command_query(args, out) -> int:
    network = _build_network(args)
    origin = network.peer_ids()[0]
    try:
        results, trace = network.query(origin, args.text,
                                       refine=args.refine)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not results:
        print("no results", file=out)
        return 1
    _print_results(network, origin, results, trace, args.k, out)
    return 0


def _command_monitor(args, out) -> int:
    network = _build_network(args)
    workload = QueryWorkload.from_documents(
        list(_all_documents(network)),
        QueryWorkloadConfig(pool_size=max(args.queries, 1),
                            seed=args.seed))
    rng = make_rng(args.seed, "cli-monitor")
    origins = network.peer_ids()
    for index in range(args.queries):
        network.query(origins[index % len(origins)],
                      list(workload.sample(rng)))
    print(NetworkMonitor(network).render(), file=out)
    return 0


def _command_cluster(args, out) -> int:
    # Imported lazily: the cluster layer pulls in asyncio/subprocess
    # machinery the simulated commands never need.
    from repro.cluster import ClusterDriver, ClusterSpec, PeerProcessHost

    if args.serve_host is not None:
        # Internal entry point: this process is a peer host spawned by a
        # ClusterDriver; --driver/--spec carry the rendezvous details.
        if not args.driver or not args.spec:
            raise SystemExit("--serve-host requires --driver and --spec")
        host, _, port = args.driver.rpartition(":")
        return PeerProcessHost(ClusterSpec.from_json(args.spec),
                               args.serve_host,
                               (host, int(port))).serve()
    spec = ClusterSpec(num_peers=args.peers, num_hosts=args.hosts,
                       seed=args.seed, mode=args.mode,
                       request_timeout=args.timeout)
    with ClusterDriver(spec) as driver:
        network = driver.network
        print(f"UDP cluster: {network} across {args.hosts} processes, "
              f"driver at {driver.transport.local_address[0]}:"
              f"{driver.transport.local_address[1]}", file=out)
        workload = QueryWorkload.from_documents(
            list(_all_documents(network)),
            QueryWorkloadConfig(pool_size=max(args.queries, 1),
                                seed=args.seed))
        origin = sorted(network.peer_ids())[0]
        rng = make_rng(args.seed, "cli-cluster")
        for _index in range(args.queries):
            query_terms = list(workload.sample(rng))
            print(f"\nquery: {' '.join(query_terms)}", file=out)
            results, trace = driver.run_query(origin, query_terms)
            _print_results(network, origin, results, trace, args.k, out)
        print(f"\n[{driver.transport.datagrams_sent} datagrams out, "
              f"{driver.transport.datagrams_received} in, "
              f"{driver.transport.wire_bytes_sent} wire bytes out]",
              file=out)
    return 0


def _command_scenario(args, out) -> int:
    # Imported lazily: the scenario layer is only needed here.
    from repro.scenarios import ScenarioRunner, get_scenario, \
        scenario_names
    from repro.scenarios.registry import SCENARIOS

    if args.action == "list":
        rows = [[name,
                 str(SCENARIOS[name].num_peers),
                 str(SCENARIOS[name].workload.queries),
                 SCENARIOS[name].description]
                for name in scenario_names()]
        print(format_table(["scenario", "peers", "queries",
                            "description"], rows), file=out)
        return 0
    if args.name is None:
        print("error: `repro scenario run` needs a scenario name "
              "(see `repro scenario list`)", file=sys.stderr)
        return 2
    try:
        scenario = get_scenario(args.name)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scenario = scenario.scaled(num_peers=args.scenario_peers,
                               queries=args.scenario_queries)
    seed = (args.scenario_seed if args.scenario_seed is not None
            else args.seed)
    report = ScenarioRunner(scenario, seed=seed).run()
    print(report.render(), file=out)
    if args.scenario_json == "-":
        print(report.to_json(), file=out)
    elif args.scenario_json is not None:
        with open(args.scenario_json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    return 0 if report.passed else 1


def _all_documents(network):
    for peer in network.peers():
        yield from peer.engine.store


_COMMANDS = {
    "demo": _command_demo,
    "query": _command_query,
    "monitor": _command_monitor,
    "cluster": _command_cluster,
    "lint": run_lint_command,
    "scenario": _command_scenario,
}


def main(argv: Optional[Sequence[str]] = None,
         out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
